// Package analysistest runs a single analyzer over golden packages under
// a testdata directory and checks its diagnostics against // want
// comments, in the style of golang.org/x/tools/go/analysis/analysistest.
//
// Layout mirrors a GOPATH: testdata/src/<import/path>/*.go. Imports are
// resolved testdata-first — so golden packages can import small fakes of
// repository packages (e.g. "repro/internal/throttle") without depending
// on the real ones — and fall back to the standard library via compiled
// export data obtained from `go list -export`.
//
// A want comment asserts diagnostics on its own line:
//
//	act.Pause(ids) // want `bypasses the actuation ledger`
//
// Every quoted or backquoted pattern must match (as an unanchored regexp)
// a diagnostic reported on that line, and every diagnostic must be
// claimed by some pattern.
package analysistest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Run analyzes each golden package (an import path under testdata/src)
// with a and reports mismatches against its want comments through t.
// It returns the loaded packages so callers can run further checks (e.g.
// suppression handling) over the same trees.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) []*load.Package {
	t.Helper()
	r := &resolver{
		root:  filepath.Join(testdata, "src"),
		fset:  token.NewFileSet(),
		cache: make(map[string]*load.Package),
	}
	var out []*load.Package
	for _, path := range pkgPaths {
		pkg, err := r.load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		out = append(out, pkg)
		check(t, a, pkg)
	}
	return out
}

// Load loads golden packages without running any analyzer or checking
// want comments. Use it to feed testdata trees to lint.Run directly,
// e.g. for suppression-directive integration tests.
func Load(t *testing.T, testdata string, pkgPaths ...string) []*load.Package {
	t.Helper()
	r := &resolver{
		root:  filepath.Join(testdata, "src"),
		fset:  token.NewFileSet(),
		cache: make(map[string]*load.Package),
	}
	var out []*load.Package
	for _, path := range pkgPaths {
		pkg, err := r.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		out = append(out, pkg)
	}
	return out
}

// check runs the analyzer raw (no suppression filtering) and diffs the
// diagnostics against the package's want comments.
func check(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer error: %v", pkg.PkgPath, err)
		return
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	wantSrc := make(map[key][]string)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, err := wantPatterns(c.Text)
				if err != nil {
					t.Errorf("%s: %v", pkg.Fset.Position(c.Pos()), err)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, p, err)
						continue
					}
					wants[k] = append(wants[k], rx)
					wantSrc[k] = append(wantSrc[k], p)
				}
			}
		}
	}

	matched := make(map[key][]bool)
	for k, rxs := range wants {
		matched[k] = make([]bool, len(rxs))
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		claimed := false
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				matched[k][i] = true
				claimed = true
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for i, ok := range matched[k] {
			if !ok {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, wantSrc[k][i])
			}
		}
	}
}

// wantPatterns extracts the regexp literals from a "// want ..." comment.
// Both Go-quoted and backquoted forms are accepted.
func wantPatterns(comment string) ([]string, error) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	rest := strings.TrimSpace(text[len("want "):])
	var out []string
	for rest != "" {
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern: %s", rest)
			}
			s, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %s: %v", rest[:end+1], err)
			}
			out = append(out, s)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern: %s", rest)
			}
			out = append(out, rest[1:end+1])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted: %s", rest)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}

// resolver loads golden packages, resolving imports testdata-first with a
// standard-library fallback through compiled export data.
type resolver struct {
	root    string
	fset    *token.FileSet
	cache   map[string]*load.Package
	exports load.ExportIndex
	// std is the one gc importer for all non-testdata imports: a single
	// instance is essential so that a package imported both directly and
	// transitively resolves to one *types.Package identity.
	std types.Importer
}

var _ types.Importer = (*resolver)(nil)

func (r *resolver) Import(path string) (*types.Package, error) {
	dir := filepath.Join(r.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := r.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return r.importStd(path)
}

// load type-checks the golden package at testdata/src/<path>.
func (r *resolver) load(path string) (*load.Package, error) {
	if pkg, ok := r.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(r.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: no .go files in %s", dir)
	}
	sort.Strings(files)
	pkg, err := load.Check(r.fset, r, path, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	r.cache[path] = pkg
	return pkg, nil
}

// importStd resolves a non-testdata import from the real build, fetching
// export data (and that of its transitive dependencies) on first use.
func (r *resolver) importStd(path string) (*types.Package, error) {
	if r.exports == nil {
		r.exports = make(load.ExportIndex)
		// The importer's lookup closure reads r.exports live, so export
		// data added by later GoList calls is visible to it.
		r.std = r.exports.Importer(r.fset)
	}
	if _, ok := r.exports[path]; !ok {
		listed, err := load.GoList(r.root, path)
		if err != nil {
			return nil, err
		}
		for p, e := range load.Index(listed) {
			r.exports[p] = e
		}
	}
	return r.std.Import(path)
}
