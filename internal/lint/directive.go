package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// DirectivePrefix introduces a suppression comment. The full grammar is
//
//	//lint:stayaway-ignore <analyzer> <reason>
//
// where <analyzer> names a registered analyzer and <reason> is mandatory
// free text explaining why the invariant is deliberately bypassed at this
// site. A directive suppresses that analyzer's diagnostics on its own
// line and, when it stands alone on a line, on the line directly below —
// so it can trail the offending statement or precede it.
//
// Malformed directives (unknown analyzer, missing reason, missing
// analyzer) are themselves diagnostics: a suppression that silently never
// matches would be worse than the finding it was meant to acknowledge.
const DirectivePrefix = "//lint:stayaway-ignore"

// Suppression is one parsed, well-formed directive.
type Suppression struct {
	// File is the file name as recorded in the token.FileSet.
	File string
	// Line is the line the directive comment starts on.
	Line int
	// Analyzer is the analyzer being suppressed.
	Analyzer string
	// Reason is the mandatory justification text.
	Reason string
}

// Covers reports whether a diagnostic from analyzer at (file, line) is
// silenced by this suppression.
func (s Suppression) Covers(analyzer, file string, line int) bool {
	return s.Analyzer == analyzer && s.File == file &&
		(line == s.Line || line == s.Line+1)
}

// SuppressionAudit is one parsed directive plus its liveness: whether it
// still silences at least one diagnostic in the current tree.
type SuppressionAudit struct {
	Suppression
	// Used reports whether any analyzer diagnostic in this run fell under
	// the directive. A false here means the code the directive acknowledged
	// has changed shape — the suppression is dead weight and should be
	// deleted before it silently swallows a future, different finding.
	Used bool
}

// AuditSuppressions parses every well-formed directive in pkgs and re-runs
// the analyzers with suppression disabled, marking each directive that
// still covers a diagnostic. The result, sorted by file and line, is the
// CI audit artifact that keeps acknowledged debt from outliving the code
// it acknowledged. Malformed directives are ignored here; Run reports
// them as findings.
func AuditSuppressions(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]SuppressionAudit, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var audits []SuppressionAudit
	for _, pkg := range pkgs {
		var sups []Suppression
		for _, f := range pkg.Syntax {
			sups = append(sups, fileSuppressions(pkg.Fset, f, known, func(analysis.Diagnostic) {})...)
		}
		if len(sups) == 0 {
			continue
		}
		used := make([]bool, len(sups))
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				for i, s := range sups {
					if s.Covers(a.Name, pos.Filename, pos.Line) {
						used[i] = true
					}
				}
			}
			if _, err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		for i, s := range sups {
			audits = append(audits, SuppressionAudit{Suppression: s, Used: used[i]})
		}
	}
	sort.Slice(audits, func(i, j int) bool {
		if audits[i].File != audits[j].File {
			return audits[i].File < audits[j].File
		}
		return audits[i].Line < audits[j].Line
	})
	return audits, nil
}

// parseDirective splits one comment's text. ok is false when the comment
// is not a stayaway-ignore directive at all; a directive that is present
// but malformed returns ok=true with a non-empty problem string.
func parseDirective(text string) (analyzer, reason, problem string, ok bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return "", "", "", false
	}
	rest := text[len(DirectivePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //lint:stayaway-ignoreX — some other (unknown) directive.
		return "", "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", "missing analyzer name and reason", true
	}
	analyzer = fields[0]
	if len(fields) == 1 {
		return analyzer, "", "missing reason (a justification is mandatory)", true
	}
	return analyzer, strings.Join(fields[1:], " "), "", true
}

// fileSuppressions extracts every directive in f. Well-formed directives
// naming a registered analyzer become Suppressions; everything else in
// directive form is reported through report (positioned at the comment).
func fileSuppressions(fset *token.FileSet, f *ast.File, known map[string]bool, report func(analysis.Diagnostic)) []Suppression {
	var out []Suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			analyzer, reason, problem, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			if problem != "" {
				report(analysis.Diagnostic{Pos: c.Pos(), Message: "malformed " + DirectivePrefix + " directive: " + problem})
				continue
			}
			if !known[analyzer] {
				report(analysis.Diagnostic{Pos: c.Pos(), Message: fmt.Sprintf("malformed %s directive: unknown analyzer %q", DirectivePrefix, analyzer)})
				continue
			}
			pos := fset.Position(c.Pos())
			out = append(out, Suppression{
				File:     pos.Filename,
				Line:     pos.Line,
				Analyzer: analyzer,
				Reason:   reason,
			})
		}
	}
	return out
}
