package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
)

// GoroutineLeakAnalyzer guards the streaming/daemon/fleet layers against
// goroutine leaks: every `go` statement there must have a reachable stop
// signal on all paths. Concretely, the spawned body's CFG must be able
// to reach an exit (return or panic) from every reachable block — a
// loop with no conditional way out (`for { work() }`, or a select whose
// every case loops back) runs until process death, which under lane
// reloads and fleet churn accumulates one stuck goroutine per cycle.
//
// Shapes that pass: a select case on ctx.Done()/a done channel that
// returns, `for range ch` (channel close is the stop signal), bounded
// loops, and bodies that simply run to completion. Only goroutine bodies
// visible to the analysis are checked: function literals and
// same-package functions/methods; spawning an external function is out
// of scope.
var GoroutineLeakAnalyzer = &analysis.Analyzer{
	Name: "goroutineleak",
	Doc:  "go statements in internal/{stream,daemon,fleet} must have a reachable stop signal (context, done channel, channel close) on all paths",
	Run:  runGoroutineLeak,
}

var goroutineLeakPkgs = []string{
	"internal/stream",
	"internal/daemon",
	"internal/fleet",
}

func runGoroutineLeak(pass *analysis.Pass) (any, error) {
	if !pkgMatches(pass.Pkg.Path(), goroutineLeakPkgs...) {
		return nil, nil
	}
	decls := flow.DeclIndex(pass.Files, pass.TypesInfo)
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoroutineBody(pass, decls, g)
			return true
		})
	}
	return nil, nil
}

// goroutineBody resolves the block the go statement will run: a literal's
// body, or the body of a same-package function or method.
func goroutineBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return nil
	}
	if decl, ok := decls[fn]; ok {
		return decl.Body
	}
	return nil
}

// checkGoroutineBody flags the spawn when some reachable block of the
// body has no path to any exit: once control enters it, the goroutine
// can never stop.
func checkGoroutineBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) {
	body := goroutineBody(pass, decls, g.Call)
	if body == nil {
		return
	}
	bg := cfg.New(body)
	reach := bg.Reachable()
	for _, b := range bg.Blocks {
		if !reach[b] {
			continue
		}
		if bg.CanReach(b, bg.Exit) || bg.CanReach(b, bg.Panic) {
			continue
		}
		pos := b.Pos()
		loc := ""
		if pos.IsValid() {
			loc = " (unstoppable loop near line " + strconv.Itoa(pass.Fset.Position(pos).Line) + ")"
		}
		pass.Reportf(g.Pos(),
			"goroutine has no reachable stop signal on some path%s; add a context/done-channel case that returns, range over a closable channel, or bound the loop",
			loc)
		return
	}
}
