// Package analysis is a deliberately small, dependency-free subset of
// golang.org/x/tools/go/analysis: enough surface for stayawaylint's
// analyzers to be written in the standard shape, so that a future move
// onto the real framework (once the module is vendorable in this build
// environment) is a mechanical import swap rather than a rewrite.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. Run inspects a single
// type-checked package via the Pass and reports findings through
// Pass.Report; it must not retain the Pass after returning.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags and
	// //lint:stayaway-ignore directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph help text: first line is a summary, the
	// rest explains the invariant the analyzer enforces.
	Doc string
	// Run performs the analysis. The returned value is unused by this
	// driver (it exists for x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files are the package's parsed source files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds Uses, Defs, Types and Selections for the package.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position. SuggestedFixes, when
// present, carry machine-applicable rewrites that would resolve the
// finding; drivers surface them (e.g. in JSON output) but never apply
// them automatically.
type Diagnostic struct {
	Pos            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained rewrite that resolves a
// diagnostic. Its edits must be applied together or not at all, and
// must not overlap.
type SuggestedFix struct {
	// Message describes the rewrite ("replace with epsilon comparison").
	Message string
	// TextEdits are the concrete replacements.
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
