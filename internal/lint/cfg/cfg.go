// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies for the stayawaylint flow-sensitive analyzers. It is a
// deliberately small, stdlib-only sibling of golang.org/x/tools/go/cfg,
// with two extensions that package omits because the repository's
// invariants need them:
//
//   - an explicit Panic exit block: `panic(x)` statements edge there
//     instead of falling through, so "released on every exit path"
//     checks can distinguish the unwinding path (where only deferred
//     calls run) from normal returns;
//   - defer statements kept as ordinary block nodes, so a dataflow
//     transfer function can record "a release is now registered" at the
//     point the defer executes, not where its call eventually runs.
//
// The graph is syntactic: one node per statement (or per evaluated
// sub-statement such as an if condition), successor edges for every
// branch, loop, switch, select, goto and labeled break/continue.
// Unreachable statements produce blocks with no predecessors; analyzers
// iterate only what Entry reaches.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every block, Entry first. Order is deterministic
	// (construction order) but only Entry's position is meaningful.
	Blocks []*Block
	// Entry is where execution starts.
	Entry *Block
	// Exit is the single normal-return block: every return statement and
	// the fall-off-the-end path edge here. It carries no nodes.
	Exit *Block
	// Panic is the unwinding exit: explicit panic(...) statements edge
	// here. Deferred calls still run on this path; nothing else does.
	Panic *Block
}

// Block is one basic block: nodes that execute consecutively, then a
// branch to one of Succs.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Kind labels the construct that created the block ("entry", "exit",
	// "panic", "if.then", "for.head", ...) for debugging and traces.
	Kind string
	// Nodes are the statements and evaluated expressions, in execution
	// order. An if/for condition appears as its ast.Expr; everything else
	// as the ast.Stmt.
	Nodes []ast.Node
	// Succs and Preds are the flow edges.
	Succs []*Block
	Preds []*Block
}

// Pos returns the position of the block's first node, or token.NoPos for
// synthetic blocks (entry/exit/join).
func (b *Block) Pos() token.Pos {
	for _, n := range b.Nodes {
		if p := n.Pos(); p.IsValid() {
			return p
		}
	}
	return token.NoPos
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// New builds the CFG of one function body. body must be non-nil.
func New(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &builder{g: g, labels: make(map[string]*Block)}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	g.Panic = b.newBlock("panic")
	b.cur = g.Entry
	b.stmtList(body.List)
	// Falling off the end of the body is a normal return.
	b.jump(g.Exit)
	return g
}

// Reachable returns the set of blocks reachable from Entry.
func (g *CFG) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// CanReach reports whether to is reachable from from (inclusive).
func (g *CFG) CanReach(from, to *Block) bool {
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// String renders the graph for debugging and tests.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%s ->", b)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " %s", s)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label string
	brk   *Block   // break target; nil when the frame is label-only
	cont  *Block   // continue target; nil for switch/select
	next  []*Block // clause chain for fallthrough, aligned with idx
	idx   int
}

type builder struct {
	g      *CFG
	cur    *Block // nil after a terminator until the next block starts
	frames []*frame
	labels map[string]*Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target; the builder is left
// without a current block.
func (b *builder) jump(target *Block) {
	if b.cur != nil {
		edge(b.cur, target)
	}
	b.cur = nil
}

// startBlock begins kind as the new current block, linking from the old
// one when it is still open.
func (b *builder) startBlock(kind string) *Block {
	blk := b.newBlock(kind)
	if b.cur != nil {
		edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

// add appends a node to the current block, opening a fresh (unreachable)
// one if a terminator just closed it — that is exactly dead code.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(lb)
		b.cur = lb
		b.labeledStmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		b.cur = nil
		then := b.newBlock("if.then")
		edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		thenEnd := b.cur
		b.cur = nil
		var elseEnd *Block
		if s.Else != nil {
			els := b.newBlock("if.else")
			edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			elseEnd = b.cur
			b.cur = nil
		}
		join := b.newBlock("if.join")
		if s.Else == nil {
			edge(cond, join)
		}
		if thenEnd != nil {
			edge(thenEnd, join)
		}
		if elseEnd != nil {
			edge(elseEnd, join)
		}
		b.cur = join

	case *ast.ForStmt:
		b.forStmt(s, "")

	case *ast.RangeStmt:
		b.rangeStmt(s, "")

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, "switch", "")

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, s.Assign, s.Body, "typeswitch", "")

	case *ast.SelectStmt:
		b.selectStmt(s, "")

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.jump(b.g.Panic)
		}

	default:
		// Defer, go, assignments, declarations, sends, inc/dec, empty:
		// straight-line nodes.
		b.add(s)
	}
}

// labeledStmt builds the statement a label is attached to, making the
// label available to break/continue inside it.
func (b *builder) labeledStmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, "switch", label)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, s.Assign, s.Body, "typeswitch", label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	default:
		// Label on a plain statement: only a goto target.
		b.stmt(s)
	}
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.startBlock("for.head")
	if s.Cond != nil {
		b.add(s.Cond)
	}
	after := b.newBlock("for.after")
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		edge(post, head)
		cont = post
	}
	body := b.newBlock("for.body")
	edge(head, body)
	if s.Cond != nil {
		edge(head, after)
	}
	b.frames = append(b.frames, &frame{label: label, brk: after, cont: cont})
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(cont)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.startBlock("range.head")
	head.Nodes = append(head.Nodes, s)
	after := b.newBlock("range.after")
	body := b.newBlock("range.body")
	edge(head, body)
	// A range loop always has a normal exit: the iterated value runs dry
	// (or, for channels, is closed).
	edge(head, after)
	b.frames = append(b.frames, &frame{label: label, brk: after, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) switchStmt(init ast.Stmt, tag ast.Node, body *ast.BlockStmt, kind, label string) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock("dead")
		b.cur = head
	}
	b.cur = nil
	after := b.newBlock(kind + ".after")

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock(kind + ".case")
		edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		edge(head, after)
	}
	fr := &frame{label: label, brk: after, next: blocks}
	b.frames = append(b.frames, fr)
	for i, cc := range clauses {
		fr.idx = i
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		b.jump(after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock("dead")
	}
	b.cur = nil
	after := b.newBlock("select.after")
	var comms []*ast.CommClause
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok {
			comms = append(comms, cc)
		}
	}
	// select{} blocks forever: head keeps no successors and everything
	// after it is unreachable.
	fr := &frame{label: label, brk: after}
	b.frames = append(b.frames, fr)
	for _, cc := range comms {
		blk := b.newBlock("select.case")
		edge(head, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		b.stmtList(cc.Body)
		b.jump(after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			fr := b.frames[i]
			if fr.brk == nil {
				continue
			}
			if s.Label == nil || fr.label == s.Label.Name {
				b.jump(fr.brk)
				return
			}
		}
		b.cur = nil // malformed program; sever the edge
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			fr := b.frames[i]
			if fr.cont == nil {
				continue
			}
			if s.Label == nil || fr.label == s.Label.Name {
				b.jump(fr.cont)
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil {
			b.jump(b.labelBlock(s.Label.Name))
			return
		}
		b.cur = nil
	case token.FALLTHROUGH:
		for i := len(b.frames) - 1; i >= 0; i-- {
			fr := b.frames[i]
			if fr.next == nil {
				continue
			}
			if fr.idx+1 < len(fr.next) {
				b.jump(fr.next[fr.idx+1])
			} else {
				b.cur = nil
			}
			return
		}
		b.cur = nil
	}
}

// labelBlock returns (creating on first use, so forward gotos resolve)
// the block a label names.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

// isPanicCall reports whether e is a call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
