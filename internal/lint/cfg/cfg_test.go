package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src as the body of a function and returns its CFG. src is
// the function body without braces.
func build(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// blocksWith returns the reachable blocks whose Kind matches.
func blocksWith(g *CFG, kind string) []*Block {
	var out []*Block
	for b := range g.Reachable() {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

func TestStraightLineReachesExit(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	if !g.CanReach(g.Entry, g.Exit) {
		t.Fatalf("entry cannot reach exit:\n%s", g)
	}
	if g.Reachable()[g.Panic] {
		t.Errorf("panic block reachable without a panic statement:\n%s", g)
	}
	if len(g.Entry.Nodes) != 2 {
		t.Errorf("entry holds %d nodes, want 2", len(g.Entry.Nodes))
	}
}

func TestEarlyReturnBranches(t *testing.T) {
	g := build(t, `
if cond() {
	return
}
work()`)
	// Both the then-branch (via return) and the fall-through path must
	// reach exit; the then block must NOT reach the join.
	thens := blocksWith(g, "if.then")
	if len(thens) != 1 {
		t.Fatalf("want 1 reachable if.then, got %d:\n%s", len(thens), g)
	}
	joins := blocksWith(g, "if.join")
	if len(joins) != 1 {
		t.Fatalf("want 1 reachable if.join, got %d:\n%s", len(joins), g)
	}
	if g.CanReach(thens[0], joins[0]) {
		t.Errorf("then-branch with return still reaches join:\n%s", g)
	}
	if !g.CanReach(thens[0], g.Exit) {
		t.Errorf("then-branch return does not reach exit:\n%s", g)
	}
	if !g.CanReach(joins[0], g.Exit) {
		t.Errorf("fall-through does not reach exit:\n%s", g)
	}
}

func TestPanicEdge(t *testing.T) {
	g := build(t, `
if bad() {
	panic("corrupt")
}
work()`)
	if !g.Reachable()[g.Panic] {
		t.Fatalf("panic statement did not reach the panic block:\n%s", g)
	}
	// The panic path must not fall through to the join.
	thens := blocksWith(g, "if.then")
	if len(thens) != 1 {
		t.Fatalf("want 1 if.then, got %d", len(thens))
	}
	if g.CanReach(thens[0], g.Exit) {
		t.Errorf("panic path reaches the normal exit:\n%s", g)
	}
}

func TestForLoopEdges(t *testing.T) {
	g := build(t, `
for i := 0; i < 3; i++ {
	work()
}
done()`)
	heads := blocksWith(g, "for.head")
	if len(heads) != 1 {
		t.Fatalf("want 1 for.head, got %d:\n%s", len(heads), g)
	}
	head := heads[0]
	// Conditional loop: head branches to both body and after.
	if len(head.Succs) != 2 {
		t.Fatalf("for.head has %d successors, want 2:\n%s", len(head.Succs), g)
	}
	// Back edge: body reaches head again (through for.post).
	bodies := blocksWith(g, "for.body")
	if len(bodies) != 1 || !g.CanReach(bodies[0], head) {
		t.Errorf("loop body has no back edge to head:\n%s", g)
	}
	if !g.CanReach(g.Entry, g.Exit) {
		t.Errorf("bounded loop cannot reach exit:\n%s", g)
	}
}

func TestUnconditionalLoopHasNoExit(t *testing.T) {
	g := build(t, `
for {
	work()
}`)
	if g.CanReach(g.Entry, g.Exit) {
		t.Errorf("for{} without break reaches exit:\n%s", g)
	}
}

func TestUnconditionalLoopWithBreak(t *testing.T) {
	g := build(t, `
for {
	if done() {
		break
	}
	work()
}`)
	if !g.CanReach(g.Entry, g.Exit) {
		t.Errorf("break does not restore the exit path:\n%s", g)
	}
}

func TestRangeLoopAlwaysHasExit(t *testing.T) {
	// A range over a channel exits when the channel closes: the head must
	// have the after-edge even with no break.
	g := build(t, `
for v := range ch {
	use(v)
}`)
	if !g.CanReach(g.Entry, g.Exit) {
		t.Errorf("range loop cannot reach exit:\n%s", g)
	}
	heads := blocksWith(g, "range.head")
	if len(heads) != 1 || len(heads[0].Succs) != 2 {
		t.Errorf("range.head missing body/after successor pair:\n%s", g)
	}
}

func TestSelectWithoutExitCaseLoopsForever(t *testing.T) {
	g := build(t, `
for {
	select {
	case <-tick:
		work()
	}
}`)
	if g.CanReach(g.Entry, g.Exit) {
		t.Errorf("loop around exit-less select reaches exit:\n%s", g)
	}
}

func TestSelectWithReturnCase(t *testing.T) {
	g := build(t, `
for {
	select {
	case <-done:
		return
	case <-tick:
		work()
	}
}`)
	if !g.CanReach(g.Entry, g.Exit) {
		t.Errorf("select return case does not reach exit:\n%s", g)
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g := build(t, "select {}\nwork()")
	if g.CanReach(g.Entry, g.Exit) {
		t.Errorf("select{} falls through:\n%s", g)
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	g := build(t, `
switch mode {
case 0:
	a()
	fallthrough
case 1:
	b()
default:
	c()
}
done()`)
	if !g.CanReach(g.Entry, g.Exit) {
		t.Fatalf("switch cannot reach exit:\n%s", g)
	}
	// Fallthrough: the case-0 block's successor set includes the case-1
	// block directly.
	cases := blocksWith(g, "switch.case")
	if len(cases) != 3 {
		t.Fatalf("want 3 reachable cases, got %d:\n%s", len(cases), g)
	}
	caseToCase := 0
	for _, c := range cases {
		for _, s := range c.Succs {
			if s.Kind == "switch.case" {
				caseToCase++
			}
		}
	}
	if caseToCase != 1 {
		t.Errorf("want exactly 1 fallthrough edge between cases, got %d:\n%s", caseToCase, g)
	}
}

func TestSwitchWithoutDefaultFallsThrough(t *testing.T) {
	g := build(t, `
switch mode {
case 0:
	return
}
after()`)
	afters := blocksWith(g, "switch.after")
	if len(afters) != 1 {
		t.Fatalf("want reachable switch.after, got %d:\n%s", len(afters), g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, `
outer:
for {
	for {
		break outer
	}
}
done()`)
	if !g.CanReach(g.Entry, g.Exit) {
		t.Errorf("labeled break does not escape both loops:\n%s", g)
	}
}

func TestLabeledContinueStaysInLoop(t *testing.T) {
	g := build(t, `
outer:
for {
	for {
		continue outer
	}
}
done()`)
	if g.CanReach(g.Entry, g.Exit) {
		t.Errorf("continue outer must not create an exit path:\n%s", g)
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g := build(t, `
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	goto end
	unreachable()
end:
	done()`)
	if !g.CanReach(g.Entry, g.Exit) {
		t.Fatalf("goto end does not reach exit:\n%s", g)
	}
	// The statement after `goto end` is dead: its block has no preds.
	reach := g.Reachable()
	dead := 0
	for _, b := range g.Blocks {
		if !reach[b] && len(b.Nodes) > 0 {
			dead++
		}
	}
	if dead == 0 {
		t.Errorf("unreachable statement not isolated:\n%s", g)
	}
}

func TestDeferIsAnOrdinaryNode(t *testing.T) {
	g := build(t, "defer release()\nwork()")
	found := false
	for _, n := range g.Entry.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Errorf("defer statement missing from entry block nodes:\n%s", g)
	}
}

func TestReturnInsideLoopBody(t *testing.T) {
	g := build(t, `
for i := 0; i < 10; i++ {
	if err := work(); err != nil {
		return
	}
}`)
	// Two distinct paths to exit: the early return and loop completion.
	if !g.CanReach(g.Entry, g.Exit) {
		t.Fatalf("no exit path:\n%s", g)
	}
	exitPreds := len(g.Exit.Preds)
	if exitPreds < 2 {
		t.Errorf("exit has %d predecessors, want >= 2 (early return + loop end):\n%s", exitPreds, g)
	}
}
