package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/registry"
	"repro/internal/statespace"
)

// maxTemplateBytes bounds uploaded template bodies; a fleet template of a
// few thousand states is well under 1 MiB.
const maxTemplateBytes = 16 << 20

// revisionHeader carries an entry's revision on template GET/PUT replies.
const revisionHeader = "X-Stayaway-Revision"

// hostHeader identifies the uploading host on template PUTs.
const hostHeader = "X-Stayaway-Host"

// ServerConfig tunes the control-plane server.
type ServerConfig struct {
	// Registry is the backing template store. Required.
	Registry *registry.Registry
	// Now is the clock, injectable for tests; nil uses time.Now.
	Now func() time.Time
	// Logf, when non-nil, receives one line per rejected request.
	Logf func(format string, args ...any)
}

// Server is the fleet control plane. Safe for concurrent use.
type Server struct {
	cfg ServerConfig

	mu    sync.Mutex
	hosts map[string]HostStatus
}

// NewServer builds a control-plane server over the given registry.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("fleet: nil registry")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Server{cfg: cfg, hosts: make(map[string]HostStatus)}, nil
}

// Handler returns the HTTP routing table:
//
//	PUT  /v1/templates/{app}  upload a learned template (merged in)
//	GET  /v1/templates/{app}  download the consensus template
//	GET  /v1/templates        list every consensus template (scheduler feed)
//	POST /v1/heartbeat        report host liveness and throttle state
//	GET  /v1/status           fleet-wide host/template summary
//	GET  /healthz             liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/templates/{app}", s.putTemplate)
	mux.HandleFunc("GET /v1/templates/{app}", s.getTemplate)
	mux.HandleFunc("GET /v1/templates", s.listTemplates)
	mux.HandleFunc("POST /v1/heartbeat", s.postHeartbeat)
	mux.HandleFunc("GET /v1/status", s.getStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.logf("fleet: %d %s", code, msg)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) putTemplate(w http.ResponseWriter, r *http.Request) {
	app := r.PathValue("app")
	tpl, err := statespace.ReadTemplate(http.MaxBytesReader(w, r.Body, maxTemplateBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "parse template: %v", err)
		return
	}
	if tpl.SensitiveApp == "" {
		tpl.SensitiveApp = app
	}
	if tpl.SensitiveApp != app {
		s.writeError(w, http.StatusBadRequest,
			"template names app %q but was uploaded for %q", tpl.SensitiveApp, app)
		return
	}
	host := r.Header.Get(hostHeader)
	entry, err := s.cfg.Registry.Put(host, tpl)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, statespace.ErrSchemaMismatch) {
			code = http.StatusConflict
		}
		s.writeError(w, code, "store template: %v", err)
		return
	}
	w.Header().Set(revisionHeader, strconv.Itoa(entry.Revision))
	writeJSON(w, http.StatusOK, PutTemplateResponse{
		Revision:        entry.Revision,
		States:          len(entry.Template.States),
		ViolationStates: entry.Template.ViolationCount(),
		Hosts:           len(entry.Hosts),
	})
}

func (s *Server) getTemplate(w http.ResponseWriter, r *http.Request) {
	app := r.PathValue("app")
	entry, ok := s.cfg.Registry.Get(app, r.URL.Query().Get("schema"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "no template for app %q", app)
		return
	}
	w.Header().Set(revisionHeader, strconv.Itoa(entry.Revision))
	// Cheap freshness check: a client that already holds this revision
	// skips the body.
	if ifRev := r.URL.Query().Get("rev"); ifRev != "" {
		if rev, err := strconv.Atoi(ifRev); err == nil && rev == entry.Revision {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	var buf bytes.Buffer
	if _, err := entry.Template.WriteTo(&buf); err != nil {
		s.writeError(w, http.StatusInternalServerError, "encode template: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// listTemplates serves every stored consensus template with its metadata —
// the feed an interference-aware scheduler bootstraps from: it needs every
// sensitive application's map to score candidate co-locations, not one map
// at a time. Entries come back in deterministic key order. ?app= narrows to
// one application's entries (all schemas); ?meta=1 omits template bodies
// for cheap polling.
func (s *Server) listTemplates(w http.ResponseWriter, r *http.Request) {
	appFilter := r.URL.Query().Get("app")
	metaOnly := r.URL.Query().Get("meta") != ""
	resp := ListTemplatesResponse{Templates: []TemplateEntry{}}
	for _, e := range s.cfg.Registry.Entries() {
		if appFilter != "" && e.Key.App != appFilter {
			continue
		}
		te := TemplateEntry{
			App:             e.Key.App,
			Schema:          e.Key.Schema,
			Revision:        e.Revision,
			States:          len(e.Template.States),
			ViolationStates: e.Template.ViolationCount(),
			Hosts:           len(e.Hosts),
			UpdatedAt:       e.UpdatedAt,
		}
		if !metaOnly {
			te.Template = e.Template
		}
		resp.Templates = append(resp.Templates, te)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) postHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&hb); err != nil {
		s.writeError(w, http.StatusBadRequest, "parse heartbeat: %v", err)
		return
	}
	if hb.Host == "" {
		s.writeError(w, http.StatusBadRequest, "heartbeat without host")
		return
	}
	s.mu.Lock()
	s.hosts[hb.Host] = HostStatus{
		Host:             hb.Host,
		App:              hb.App,
		Periods:          hb.Periods,
		Violations:       hb.Violations,
		Throttled:        hb.Throttled,
		TemplateRevision: hb.TemplateRevision,
		LastSeen:         s.cfg.Now(),
	}
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) getStatus(w http.ResponseWriter, _ *http.Request) {
	var resp StatusResponse
	s.mu.Lock()
	for _, h := range s.hosts {
		resp.Hosts = append(resp.Hosts, h)
		if h.Throttled {
			resp.ThrottledHosts++
		}
	}
	s.mu.Unlock()
	sort.Slice(resp.Hosts, func(i, j int) bool { return resp.Hosts[i].Host < resp.Hosts[j].Host })
	for _, e := range s.cfg.Registry.Entries() {
		resp.Templates = append(resp.Templates, TemplateStatus{
			App:             e.Key.App,
			Schema:          e.Key.Schema,
			Revision:        e.Revision,
			States:          len(e.Template.States),
			ViolationStates: e.Template.ViolationCount(),
			Hosts:           len(e.Hosts),
			UpdatedAt:       e.UpdatedAt,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
