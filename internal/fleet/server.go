package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/registry"
	"repro/internal/statespace"
	"repro/internal/stream"
)

// maxTemplateBytes bounds uploaded template bodies; a fleet template of a
// few thousand states is well under 1 MiB.
const maxTemplateBytes = 16 << 20

// revisionHeader carries an entry's revision on template GET/PUT replies.
const revisionHeader = "X-Stayaway-Revision"

// hostHeader identifies the uploading host on template PUTs.
const hostHeader = "X-Stayaway-Host"

// Store is the template store the server fronts: a single
// *registry.Registry or a *registry.Sharded, which shard by sensitive-app
// key behind this one interface so the HTTP surface is routing-agnostic.
type Store interface {
	Put(host string, t *statespace.Template) (*registry.Entry, error)
	Get(app, schema string) (*registry.Entry, bool)
	DeltaSince(app, schema string, since int) (*statespace.TemplateDelta, bool)
	Entries() []*registry.Entry
	Len() int
}

// ServerConfig tunes the control-plane server.
type ServerConfig struct {
	// Registry is the backing template store. Required.
	Registry Store
	// Now is the clock, injectable for tests; nil uses time.Now.
	Now func() time.Time
	// Logf, when non-nil, receives one line per rejected request.
	Logf func(format string, args ...any)
	// Hub, when non-nil, enables the server-push event stream at
	// GET /v1/events. The registry's OnPut hook must publish into the
	// same hub (see PublishHook).
	Hub *stream.Hub
	// Metrics, when non-nil, is served at GET /metrics in Prometheus text
	// format and fed by the handlers (delta bytes served, active streams,
	// merge conflicts, template revisions).
	Metrics *stream.MetricSet
	// Key, when non-empty, requires every request (except /healthz and
	// /metrics) to carry a valid HMAC signature; see RequireSignature.
	Key []byte
	// StreamHeartbeat is the idle-stream heartbeat cadence; 0 means 15s.
	StreamHeartbeat time.Duration
}

// Server is the fleet control plane. Safe for concurrent use.
type Server struct {
	cfg ServerConfig

	mu    sync.Mutex
	hosts map[string]HostStatus
}

// NewServer builds a control-plane server over the given registry.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("fleet: nil registry")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.StreamHeartbeat <= 0 {
		cfg.StreamHeartbeat = 15 * time.Second
	}
	return &Server{cfg: cfg, hosts: make(map[string]HostStatus)}, nil
}

// Handler returns the HTTP routing table:
//
//	PUT  /v1/templates/{app}        upload a learned template (merged in)
//	GET  /v1/templates/{app}        download the consensus template
//	GET  /v1/templates/{app}/delta  download only states changed since ?since=rev
//	GET  /v1/templates              list every consensus template (scheduler feed)
//	GET  /v1/events                 server-push template stream (SSE; needs a Hub)
//	POST /v1/heartbeat              report host liveness and throttle state
//	GET  /v1/status                 fleet-wide host/template summary
//	GET  /metrics                   Prometheus text metrics (when configured)
//	GET  /healthz                   liveness probe
//
// With a Key configured, every route except /healthz and /metrics
// requires a valid request signature.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/templates/{app}", s.putTemplate)
	mux.HandleFunc("GET /v1/templates/{app}", s.getTemplate)
	mux.HandleFunc("GET /v1/templates/{app}/delta", s.getDelta)
	mux.HandleFunc("GET /v1/templates", s.listTemplates)
	mux.HandleFunc("GET /v1/events", s.getEvents)
	mux.HandleFunc("POST /v1/heartbeat", s.postHeartbeat)
	mux.HandleFunc("GET /v1/status", s.getStatus)
	if s.cfg.Metrics != nil {
		mux.HandleFunc("GET /metrics", s.getMetrics)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return RequireSignature(s.cfg.Key, s.cfg.Logf, mux, "/healthz", "/metrics")
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.logf("fleet: %d %s", code, msg)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) putTemplate(w http.ResponseWriter, r *http.Request) {
	app := r.PathValue("app")
	tpl, err := statespace.ReadTemplate(http.MaxBytesReader(w, r.Body, maxTemplateBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "parse template: %v", err)
		return
	}
	if tpl.SensitiveApp == "" {
		tpl.SensitiveApp = app
	}
	if tpl.SensitiveApp != app {
		s.writeError(w, http.StatusBadRequest,
			"template names app %q but was uploaded for %q", tpl.SensitiveApp, app)
		return
	}
	host := r.Header.Get(hostHeader)
	entry, err := s.cfg.Registry.Put(host, tpl)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, statespace.ErrSchemaMismatch) {
			code = http.StatusConflict
		}
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.Counter(metricMergeConflicts, helpMergeConflicts).Add(1)
		}
		s.writeError(w, code, "store template: %v", err)
		return
	}
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Counter(metricPuts, helpPuts).Add(1)
	}
	w.Header().Set(revisionHeader, strconv.Itoa(entry.Revision))
	writeJSON(w, http.StatusOK, PutTemplateResponse{
		Revision:        entry.Revision,
		States:          len(entry.Template.States),
		ViolationStates: entry.Template.ViolationCount(),
		Hosts:           len(entry.Hosts),
	})
}

func (s *Server) getTemplate(w http.ResponseWriter, r *http.Request) {
	app := r.PathValue("app")
	entry, ok := s.cfg.Registry.Get(app, r.URL.Query().Get("schema"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "no template for app %q", app)
		return
	}
	w.Header().Set(revisionHeader, strconv.Itoa(entry.Revision))
	// Cheap freshness check: a client that already holds this revision
	// skips the body.
	if ifRev := r.URL.Query().Get("rev"); ifRev != "" {
		if rev, err := strconv.Atoi(ifRev); err == nil && rev == entry.Revision {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	var buf bytes.Buffer
	if _, err := entry.Template.WriteTo(&buf); err != nil {
		s.writeError(w, http.StatusInternalServerError, "encode template: %v", err)
		return
	}
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Counter(metricTemplateBytes, helpTemplateBytes).Add(float64(buf.Len()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// listTemplates serves every stored consensus template with its metadata —
// the feed an interference-aware scheduler bootstraps from: it needs every
// sensitive application's map to score candidate co-locations, not one map
// at a time. Entries come back in deterministic key order. ?app= narrows to
// one application's entries (all schemas); ?meta=1 omits template bodies
// for cheap polling.
func (s *Server) listTemplates(w http.ResponseWriter, r *http.Request) {
	appFilter := r.URL.Query().Get("app")
	metaOnly := r.URL.Query().Get("meta") != ""
	resp := ListTemplatesResponse{Templates: []TemplateEntry{}}
	for _, e := range s.cfg.Registry.Entries() {
		if appFilter != "" && e.Key.App != appFilter {
			continue
		}
		te := TemplateEntry{
			App:             e.Key.App,
			Schema:          e.Key.Schema,
			Revision:        e.Revision,
			States:          len(e.Template.States),
			ViolationStates: e.Template.ViolationCount(),
			Hosts:           len(e.Hosts),
			UpdatedAt:       e.UpdatedAt,
		}
		if !metaOnly {
			te.Template = e.Template
		}
		resp.Templates = append(resp.Templates, te)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) postHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&hb); err != nil {
		s.writeError(w, http.StatusBadRequest, "parse heartbeat: %v", err)
		return
	}
	if hb.Host == "" {
		s.writeError(w, http.StatusBadRequest, "heartbeat without host")
		return
	}
	s.mu.Lock()
	s.hosts[hb.Host] = HostStatus{
		Host:             hb.Host,
		App:              hb.App,
		Periods:          hb.Periods,
		Violations:       hb.Violations,
		Throttled:        hb.Throttled,
		TemplateRevision: hb.TemplateRevision,
		LastSeen:         s.cfg.Now(),
	}
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) getStatus(w http.ResponseWriter, _ *http.Request) {
	var resp StatusResponse
	s.mu.Lock()
	for _, h := range s.hosts {
		resp.Hosts = append(resp.Hosts, h)
		if h.Throttled {
			resp.ThrottledHosts++
		}
	}
	s.mu.Unlock()
	sort.Slice(resp.Hosts, func(i, j int) bool { return resp.Hosts[i].Host < resp.Hosts[j].Host })
	for _, e := range s.cfg.Registry.Entries() {
		resp.Templates = append(resp.Templates, TemplateStatus{
			App:             e.Key.App,
			Schema:          e.Key.Schema,
			Revision:        e.Revision,
			States:          len(e.Template.States),
			ViolationStates: e.Template.ViolationCount(),
			Hosts:           len(e.Hosts),
			UpdatedAt:       e.UpdatedAt,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
