package fleet

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

// Shared-key request signing. A registry reachable by every host in the
// fleet is also reachable by everything else on the network; an HMAC over
// each request keeps a stray or malicious client from poisoning the
// consensus maps the whole fleet controls from. The key is symmetric and
// deployment-provided (-fleet-key on both ends); there is no identity or
// key rotation here, just "only things holding the fleet key may write or
// read templates".

// signatureHeader carries the request MAC.
const signatureHeader = "X-Stayaway-Signature"

// ResolveKey turns the CLI's two key flags into key bytes: the literal
// value, or the trimmed contents of a key file (which wins when both are
// given — a file does not leak through process listings). Both empty
// means "unsecured" and returns nil.
func ResolveKey(value, file string) ([]byte, error) {
	if file != "" {
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("fleet: read key file: %w", err)
		}
		key := []byte(strings.TrimSpace(string(raw)))
		if len(key) == 0 {
			return nil, fmt.Errorf("fleet: key file %s is empty", file)
		}
		return key, nil
	}
	if value != "" {
		return []byte(value), nil
	}
	return nil, nil
}

// maxSignedBodyBytes bounds how much body the verifying middleware will
// buffer; matches the template upload cap.
const maxSignedBodyBytes = maxTemplateBytes

// computeSignature MACs the parts of a request that matter to this API:
// method, escaped path, raw query, and a digest of the body. Headers are
// deliberately excluded — none of them carry authority here, and proxies
// rewrite them.
func computeSignature(key []byte, method, escapedPath, rawQuery string, body []byte) string {
	sum := sha256.Sum256(body)
	mac := hmac.New(sha256.New, key)
	io.WriteString(mac, method)
	mac.Write([]byte{'\n'})
	io.WriteString(mac, escapedPath)
	mac.Write([]byte{'\n'})
	io.WriteString(mac, rawQuery)
	mac.Write([]byte{'\n'})
	mac.Write(sum[:])
	return hex.EncodeToString(mac.Sum(nil))
}

// SignRequest attaches the fleet-key MAC to req. body must be the exact
// bytes the request will send (nil for body-less requests). A nil or
// empty key is a no-op, so unsecured deployments need no branching.
func SignRequest(key []byte, req *http.Request, body []byte) {
	if len(key) == 0 {
		return
	}
	req.Header.Set(signatureHeader,
		computeSignature(key, req.Method, req.URL.EscapedPath(), req.URL.RawQuery, body))
}

// RequireSignature wraps next so every request must carry a valid fleet
// MAC. Verification is constant-time; unsigned and mis-signed requests
// get 401 without reaching next. exempt paths (liveness probes, metrics
// scrapers — read-only surfaces that standard infrastructure cannot
// sign) bypass the check. A nil or empty key returns next unchanged.
func RequireSignature(key []byte, logf func(format string, args ...any), next http.Handler, exempt ...string) http.Handler {
	if len(key) == 0 {
		return next
	}
	exemptSet := make(map[string]bool, len(exempt))
	for _, p := range exempt {
		exemptSet[p] = true
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exemptSet[r.URL.Path] {
			next.ServeHTTP(w, r)
			return
		}
		got := r.Header.Get(signatureHeader)
		if got == "" {
			if logf != nil {
				logf("fleet: 401 unsigned %s %s", r.Method, r.URL.Path)
			}
			http.Error(w, `{"error":"missing request signature"}`, http.StatusUnauthorized)
			return
		}
		var body []byte
		if r.Body != nil && r.Body != http.NoBody {
			var err error
			body, err = io.ReadAll(io.LimitReader(r.Body, maxSignedBodyBytes+1))
			if err != nil {
				http.Error(w, `{"error":"read body"}`, http.StatusBadRequest)
				return
			}
			if len(body) > maxSignedBodyBytes {
				http.Error(w, `{"error":"body too large"}`, http.StatusRequestEntityTooLarge)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		want := computeSignature(key, r.Method, r.URL.EscapedPath(), r.URL.RawQuery, body)
		if !hmac.Equal([]byte(got), []byte(want)) {
			if logf != nil {
				logf("fleet: 401 bad signature %s %s", r.Method, r.URL.Path)
			}
			http.Error(w, `{"error":"bad request signature"}`, http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}
