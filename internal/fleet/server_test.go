package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/statespace"
)

func testMetricsList() []metrics.Metric {
	return []metrics.Metric{metrics.MetricCPU, metrics.MetricMemory}
}

// testTemplate builds a small valid template for app with one safe and one
// violation state.
func testTemplate(app string) *statespace.Template {
	return &statespace.Template{
		Version:       2,
		SensitiveApp:  app,
		Dim:           2,
		SchemaVMs:     []string{"sensitive"},
		SchemaMetrics: testMetricsList(),
		States: []statespace.TemplateState{
			{X: 0, Y: 0, Label: statespace.Safe.String(), Weight: 1, Vector: []float64{0.1, 0.1}},
			{X: 3, Y: 4, Label: statespace.Violation.String(), Weight: 2, Vector: []float64{0.9, 0.8}},
		},
		Ranges: map[metrics.Metric]metrics.Range{
			metrics.MetricCPU:    {Max: 400},
			metrics.MetricMemory: {Max: 4096, Adaptive: true},
		},
	}
}

func newTestServer(t *testing.T) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg, err := registry.Open(registry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Registry: reg, Now: func() time.Time { return time.Unix(1700000000, 0) }})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

func newTestClient(t *testing.T, baseURL string) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{
		BaseURL: baseURL,
		Retry:   RetryConfig{Attempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestServerTemplateRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	c := newTestClient(t, ts.URL)
	ctx := context.Background()

	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	// Pull before any push: not found.
	if _, _, err := c.PullTemplate(ctx, "vlc-stream", "", 0); err != ErrNotFound {
		t.Fatalf("cold pull err = %v, want ErrNotFound", err)
	}

	resp, err := c.PushTemplate(ctx, "host-a", "vlc-stream", testTemplate("vlc-stream"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Revision != 1 || resp.States != 2 || resp.ViolationStates != 1 || resp.Hosts != 1 {
		t.Fatalf("push response = %+v", resp)
	}

	tpl, rev, err := c.PullTemplate(ctx, "vlc-stream", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rev != 1 || len(tpl.States) != 2 || tpl.SensitiveApp != "vlc-stream" {
		t.Fatalf("pulled rev=%d tpl=%+v", rev, tpl)
	}
	// Freshness check: holding the current revision skips the body.
	cached, rev2, err := c.PullTemplate(ctx, "vlc-stream", "", rev)
	if err != nil {
		t.Fatal(err)
	}
	if cached != nil || rev2 != rev {
		t.Fatalf("fresh pull returned tpl=%v rev=%d", cached, rev2)
	}
	// Schema-narrowed pull.
	if _, _, err := c.PullTemplate(ctx, "vlc-stream", tpl.SchemaKey(), 0); err != nil {
		t.Fatalf("schema pull: %v", err)
	}
	if _, _, err := c.PullTemplate(ctx, "vlc-stream", "dim99", 0); err != ErrNotFound {
		t.Fatalf("wrong-schema pull err = %v, want ErrNotFound", err)
	}
}

func TestServerMergesSecondHost(t *testing.T) {
	ts, _ := newTestServer(t)
	c := newTestClient(t, ts.URL)
	ctx := context.Background()

	if _, err := c.PushTemplate(ctx, "host-a", "vlc-stream", testTemplate("vlc-stream")); err != nil {
		t.Fatal(err)
	}
	other := testTemplate("vlc-stream")
	other.States = append(other.States, statespace.TemplateState{
		X: -2, Y: 1, Label: statespace.Violation.String(), Weight: 1, Vector: []float64{0.2, 0.9},
	})
	resp, err := c.PushTemplate(ctx, "host-b", "vlc-stream", other)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Revision != 2 || resp.States != 3 || resp.ViolationStates != 2 || resp.Hosts != 2 {
		t.Fatalf("merged push response = %+v", resp)
	}
}

func TestServerRejectsBadUploads(t *testing.T) {
	ts, _ := newTestServer(t)
	ctx := context.Background()

	put := func(path, body string) *http.Response {
		req, _ := http.NewRequestWithContext(ctx, http.MethodPut, ts.URL+path, strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := put("/v1/templates/vlc", "{torn"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt body: status %d, want 400", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := testTemplate("other-app").WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if resp := put("/v1/templates/vlc", buf.String()); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("app mismatch: status %d, want 400", resp.StatusCode)
	}
	// Nameless template adopts the path's app.
	anon := testTemplate("")
	buf.Reset()
	if _, err := anon.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if resp := put("/v1/templates/vlc", buf.String()); resp.StatusCode != http.StatusOK {
		t.Errorf("nameless template: status %d, want 200", resp.StatusCode)
	}
	// Unknown paths 404.
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

func TestServerHeartbeatAndStatus(t *testing.T) {
	ts, _ := newTestServer(t)
	c := newTestClient(t, ts.URL)
	ctx := context.Background()

	if _, err := c.PushTemplate(ctx, "host-a", "vlc-stream", testTemplate("vlc-stream")); err != nil {
		t.Fatal(err)
	}
	beats := []Heartbeat{
		{Host: "host-a", App: "vlc-stream", Periods: 120, Violations: 4, Throttled: true, TemplateRevision: 1},
		{Host: "host-b", App: "vlc-stream", Periods: 40, Violations: 0, Throttled: false},
	}
	for _, hb := range beats {
		if err := c.SendHeartbeat(ctx, hb); err != nil {
			t.Fatal(err)
		}
	}
	status, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(status.Hosts) != 2 || status.ThrottledHosts != 1 {
		t.Fatalf("status hosts = %+v throttled = %d", status.Hosts, status.ThrottledHosts)
	}
	if status.Hosts[0].Host != "host-a" || status.Hosts[0].Periods != 120 || !status.Hosts[0].Throttled {
		t.Errorf("host-a status = %+v", status.Hosts[0])
	}
	if len(status.Templates) != 1 || status.Templates[0].Revision != 1 ||
		status.Templates[0].ViolationStates != 1 {
		t.Errorf("template status = %+v", status.Templates)
	}

	// Heartbeats without a host are rejected.
	body, _ := json.Marshal(Heartbeat{})
	resp, err := http.Post(ts.URL+"/v1/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("hostless heartbeat: status %d, want 400", resp.StatusCode)
	}
}
