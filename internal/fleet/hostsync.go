package fleet

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/stream"
)

// HostSyncer manages the fleet syncers of a multi-tenant host: one
// Syncer per protected application, all sharing one client and one host
// identity. Lanes come and go by application name; the aggregate
// degraded view is what a health endpoint or exit report wants — which
// applications are currently protecting from a stale local map.
type HostSyncer struct {
	client  *Client
	host    string
	timeout time.Duration

	mu      sync.Mutex
	lanes   map[string]*Syncer
	order   []string
	streams map[string]*StreamSyncer
	wg      sync.WaitGroup
}

// NewHostSyncer binds a shared client to one host's identity.
func NewHostSyncer(client *Client, host string) *HostSyncer {
	return &HostSyncer{
		client:  client,
		host:    host,
		lanes:   map[string]*Syncer{},
		streams: map[string]*StreamSyncer{},
	}
}

// SetTimeout overrides the per-operation deadline for every lane,
// existing and future.
func (h *HostSyncer) SetTimeout(d time.Duration) {
	if d <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.timeout = d
	for _, s := range h.lanes {
		s.SetTimeout(d)
	}
}

// Lane returns the application's syncer, creating it on first use. The
// same app always yields the same Syncer.
func (h *HostSyncer) Lane(app string) *Syncer {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s, ok := h.lanes[app]; ok {
		return s
	}
	s := NewSyncer(h.client, h.host, app)
	if h.timeout > 0 {
		s.SetTimeout(h.timeout)
	}
	h.lanes[app] = s
	h.order = append(h.order, app)
	return s
}

// Apps returns the lane applications in creation order.
func (h *HostSyncer) Apps() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.order...)
}

// Degraded returns the applications whose last sync attempt failed,
// with the error that failed it. An empty map means every lane is in
// sync with the registry.
func (h *HostSyncer) Degraded() map[string]error {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := map[string]error{}
	for app, s := range h.lanes {
		if degraded, err := s.Degraded(); degraded {
			out[app] = err
		}
	}
	return out
}

// StartStream launches a streaming syncer for one application lane and
// returns it; the same app returns the already-running syncer. cfg.Client
// defaults to the host's shared client and cfg.App to app. The stream
// goroutine runs until ctx is cancelled; Wait blocks until every started
// stream has exited.
func (h *HostSyncer) StartStream(ctx context.Context, app string, cfg StreamSyncerConfig) (*StreamSyncer, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ss, ok := h.streams[app]; ok {
		return ss, nil
	}
	if cfg.Client == nil {
		cfg.Client = h.client
	}
	if cfg.App == "" {
		cfg.App = app
	}
	ss, err := NewStreamSyncer(cfg)
	if err != nil {
		return nil, err
	}
	h.streams[app] = ss
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		ss.Run(ctx)
	}()
	return ss, nil
}

// Stream returns the application's streaming syncer, or nil when
// StartStream was never called for it.
func (h *HostSyncer) Stream(app string) *StreamSyncer {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.streams[app]
}

// Wait blocks until every stream goroutine started by StartStream has
// exited (their contexts must be cancelled first).
func (h *HostSyncer) Wait() { h.wg.Wait() }

// WriteMetrics renders the host's sync state — per-lane push/degraded
// counters and per-stream traffic — in Prometheus text format: the
// host-side half of the fleet observability story (the registry serves
// the other half at /metrics).
func (h *HostSyncer) WriteMetrics(w io.Writer) error {
	h.mu.Lock()
	apps := append([]string(nil), h.order...)
	lanes := make(map[string]*Syncer, len(h.lanes))
	for app, s := range h.lanes {
		lanes[app] = s
	}
	streams := make(map[string]*StreamSyncer, len(h.streams))
	for app, ss := range h.streams {
		streams[app] = ss
		if _, ok := lanes[app]; !ok {
			apps = append(apps, app)
		}
	}
	h.mu.Unlock()

	m := stream.NewMetricSet()
	for _, app := range apps {
		labels := []string{"app", app}
		if s, ok := lanes[app]; ok {
			pushes, failures := s.Stats()
			m.Counter("stayaway_host_sync_pushes_total", "Successful sync operations.", labels...).Set(float64(pushes))
			m.Counter("stayaway_host_sync_failures_total", "Failed sync operations.", labels...).Set(float64(failures))
			degraded := 0.0
			if d, _ := s.Degraded(); d {
				degraded = 1
			}
			m.Gauge("stayaway_host_sync_degraded", "1 while the lane protects from a stale local map.", labels...).Set(degraded)
			m.Gauge("stayaway_host_template_revision", "Registry revision the lane last synced.", labels...).Set(float64(s.LastRevision()))
		}
		if ss, ok := streams[app]; ok {
			st := ss.Stats()
			mode := 0.0
			if ss.Streaming() {
				mode = 1
			}
			m.Gauge("stayaway_host_stream_live", "1 while the push stream is connected.", labels...).Set(mode)
			m.Counter("stayaway_host_stream_events_total", "Delta events accepted from the stream.", labels...).Set(float64(st.Events))
			m.Counter("stayaway_host_stream_reconnects_total", "Stream reconnect attempts.", labels...).Set(float64(st.Reconnects))
			m.Counter("stayaway_host_stream_resets_total", "Server resets (lost resume position).", labels...).Set(float64(st.Resets))
			m.Counter("stayaway_host_stream_polls_total", "Fallback delta polls.", labels...).Set(float64(st.Polls))
		}
	}
	if _, err := m.WriteTo(w); err != nil {
		return fmt.Errorf("fleet: write host metrics: %w", err)
	}
	return nil
}
