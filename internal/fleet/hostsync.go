package fleet

import (
	"sync"
	"time"
)

// HostSyncer manages the fleet syncers of a multi-tenant host: one
// Syncer per protected application, all sharing one client and one host
// identity. Lanes come and go by application name; the aggregate
// degraded view is what a health endpoint or exit report wants — which
// applications are currently protecting from a stale local map.
type HostSyncer struct {
	client  *Client
	host    string
	timeout time.Duration

	mu    sync.Mutex
	lanes map[string]*Syncer
	order []string
}

// NewHostSyncer binds a shared client to one host's identity.
func NewHostSyncer(client *Client, host string) *HostSyncer {
	return &HostSyncer{client: client, host: host, lanes: map[string]*Syncer{}}
}

// SetTimeout overrides the per-operation deadline for every lane,
// existing and future.
func (h *HostSyncer) SetTimeout(d time.Duration) {
	if d <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.timeout = d
	for _, s := range h.lanes {
		s.SetTimeout(d)
	}
}

// Lane returns the application's syncer, creating it on first use. The
// same app always yields the same Syncer.
func (h *HostSyncer) Lane(app string) *Syncer {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s, ok := h.lanes[app]; ok {
		return s
	}
	s := NewSyncer(h.client, h.host, app)
	if h.timeout > 0 {
		s.SetTimeout(h.timeout)
	}
	h.lanes[app] = s
	h.order = append(h.order, app)
	return s
}

// Apps returns the lane applications in creation order.
func (h *HostSyncer) Apps() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.order...)
}

// Degraded returns the applications whose last sync attempt failed,
// with the error that failed it. An empty map means every lane is in
// sync with the registry.
func (h *HostSyncer) Degraded() map[string]error {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := map[string]error{}
	for app, s := range h.lanes {
		if degraded, err := s.Degraded(); degraded {
			out[app] = err
		}
	}
	return out
}
