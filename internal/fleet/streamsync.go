package fleet

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/statespace"
	"repro/internal/stream"
)

// StreamSyncer keeps one application's view of the fleet consensus map
// fresh by subscribing to the registry's push stream, with automatic
// fallback to conditional-GET delta polling whenever the stream is down.
// It is deliberately passive toward the control loop: received deltas are
// coalesced into a pending update the host *takes* at a period boundary
// (TakeUpdate) — the stream never mutates a live map mid-period.
type StreamSyncer struct {
	cfg StreamSyncerConfig

	mu        sync.Mutex
	lastRev   int    // revision the host has applied to its lane
	lastID    string // SSE resume token
	pending   *statespace.TemplateDelta
	streaming bool
	stats     StreamStats
}

// StreamStats counts one stream syncer's traffic for observability.
type StreamStats struct {
	// Events is delta events accepted from the stream; Stale is delta
	// events ignored because the host had already passed their revision.
	Events, Stale int
	// Heartbeats, Reconnects, Resets count stream liveness churn.
	Heartbeats, Reconnects, Resets int
	// Polls counts fallback delta polls; PollErrors the failed ones.
	Polls, PollErrors int
}

// StreamSyncerConfig tunes a StreamSyncer.
type StreamSyncerConfig struct {
	// Client is the fleet client; required.
	Client *Client
	// App is the sensitive application to follow; required. Schema, when
	// non-empty, ignores updates for other metric schemas.
	App    string
	Schema string
	// ReconnectMin/ReconnectMax bound the jittered exponential backoff
	// between stream connection attempts. Defaults: 1s and 30s.
	ReconnectMin, ReconnectMax time.Duration
	// PollTimeout bounds each fallback delta poll. Default 30s.
	PollTimeout time.Duration
	// HeartbeatTimeout kills a stream connection that has gone this long
	// without any event or heartbeat; the syncer then polls and
	// reconnects. Default 60s; negative disables the watchdog.
	HeartbeatTimeout time.Duration
	// JitterFrac spreads every reconnect delay uniformly within
	// ±JitterFrac of itself so a registry restart does not get the whole
	// fleet back in lockstep. Default 0.2; negative disables.
	JitterFrac float64
	// Rand yields uniform values in [0,1) for jitter; nil uses math/rand.
	Rand func() float64
	// Sleep waits between reconnects; injectable so tests never really
	// sleep. Nil uses a context-aware timer.
	Sleep func(ctx context.Context, d time.Duration) error
	// Logf, when non-nil, receives one line per mode change.
	Logf func(format string, args ...any)
}

func (cfg *StreamSyncerConfig) applyDefaults() {
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = time.Second
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 30 * time.Second
	}
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = 30 * time.Second
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 60 * time.Second
	}
	if cfg.JitterFrac == 0 {
		cfg.JitterFrac = 0.2
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
}

// NewStreamSyncer builds a syncer; Run starts it.
func NewStreamSyncer(cfg StreamSyncerConfig) (*StreamSyncer, error) {
	if cfg.Client == nil {
		return nil, errors.New("fleet: StreamSyncer needs a Client")
	}
	if cfg.App == "" {
		return nil, errors.New("fleet: StreamSyncer needs an App")
	}
	cfg.applyDefaults()
	return &StreamSyncer{cfg: cfg}, nil
}

// MarkApplied records that the host's lane now reflects revision rev —
// called after a bootstrap pull or after applying a taken update. Later
// stream events at or below rev are ignored as stale.
func (s *StreamSyncer) MarkApplied(rev int) {
	s.mu.Lock()
	if rev > s.lastRev {
		s.lastRev = rev
	}
	s.mu.Unlock()
}

// Revision reports the last applied revision.
func (s *StreamSyncer) Revision() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastRev
}

// Streaming reports whether the push stream is currently live (false
// means the syncer is in polling fallback between reconnect attempts).
func (s *StreamSyncer) Streaming() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streaming
}

// Stats snapshots the traffic counters.
func (s *StreamSyncer) Stats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TakeUpdate removes and returns the coalesced pending delta, or nil
// when the host is current. Callers apply it to their lane (at a period
// boundary) and then MarkApplied(delta.ToRevision).
func (s *StreamSyncer) TakeUpdate() *statespace.TemplateDelta {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.pending
	s.pending = nil
	return d
}

// Run drives the subscribe → consume → fall back → reconnect loop until
// ctx is cancelled; it always returns ctx's error. Each disconnect
// triggers one fallback delta poll (so updates keep flowing at reconnect
// cadence even when the stream endpoint is down for good) and a jittered,
// exponentially backed-off reconnect.
func (s *StreamSyncer) Run(ctx context.Context) error {
	backoff := s.cfg.ReconnectMin
	for {
		connected, err := s.streamOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		s.mu.Lock()
		s.streaming = false
		s.stats.Reconnects++
		s.mu.Unlock()
		if connected {
			backoff = s.cfg.ReconnectMin
		}
		if s.cfg.Logf != nil {
			s.cfg.Logf("fleet: %s: stream down (%v), polling until reconnect", s.cfg.App, err)
		}
		s.pollOnce(ctx)
		if err := s.cfg.Sleep(ctx, s.jitter(backoff)); err != nil {
			return err
		}
		backoff *= 2
		if backoff > s.cfg.ReconnectMax {
			backoff = s.cfg.ReconnectMax
		}
	}
}

// jitter spreads d uniformly within ±JitterFrac of itself.
func (s *StreamSyncer) jitter(d time.Duration) time.Duration {
	if s.cfg.JitterFrac <= 0 {
		return d
	}
	spread := 1 + s.cfg.JitterFrac*(2*s.cfg.Rand()-1)
	return time.Duration(float64(d) * spread)
}

// streamOnce holds one stream subscription until it breaks, reporting
// whether the connection ever became live (used to reset backoff).
func (s *StreamSyncer) streamOnce(ctx context.Context) (connected bool, err error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var watchdog *time.Timer
	if s.cfg.HeartbeatTimeout > 0 {
		watchdog = time.AfterFunc(s.cfg.HeartbeatTimeout, cancel)
		defer watchdog.Stop()
	}

	s.mu.Lock()
	lastID := s.lastID
	s.mu.Unlock()
	id, err := s.cfg.Client.StreamEvents(cctx, s.cfg.App, lastID,
		func(ev stream.Event, up *StreamUpdate) error {
			if watchdog != nil {
				watchdog.Reset(s.cfg.HeartbeatTimeout)
			}
			connected = true
			s.onEvent(ctx, ev, up)
			return nil
		})
	s.mu.Lock()
	s.lastID = id
	s.mu.Unlock()
	return connected, err
}

// onEvent folds one stream event into the syncer's state.
func (s *StreamSyncer) onEvent(ctx context.Context, ev stream.Event, up *StreamUpdate) {
	switch ev.Type {
	case stream.TypeHeartbeat:
		s.mu.Lock()
		s.streaming = true
		s.stats.Heartbeats++
		s.mu.Unlock()
	case stream.TypeReset:
		// Our resume position is gone; anything we missed must come from
		// the delta endpoint before later stream deltas can be trusted.
		s.mu.Lock()
		s.streaming = true
		s.stats.Resets++
		s.mu.Unlock()
		s.pollOnce(ctx)
	case stream.TypeDelta:
		if up == nil || up.Delta == nil || up.App != s.cfg.App {
			return
		}
		if s.cfg.Schema != "" && up.Schema != s.cfg.Schema {
			return
		}
		if !s.stash(up.Delta) {
			// The stream skipped revisions we never saw (queue overflow on
			// a previous incarnation, filtered schema churn, …): fetch the
			// authoritative gap instead of merging out of order.
			s.pollOnce(ctx)
		}
	}
}

// stash coalesces a streamed delta into pending, reporting false when the
// delta does not connect to what the host has (a gap the caller must fill
// by polling).
//
// Chained incremental patches may both carry a state whose label was
// upgraded twice; applying the concatenation folds the duplicates and
// double-counts that state's weight. Weights are advisory (they bias
// nothing but merge bookkeeping), so this is accepted in exchange for
// never blocking the stream on a network round-trip.
func (s *StreamSyncer) stash(d *statespace.TemplateDelta) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.streaming = true
	if d.ToRevision <= s.lastRev {
		s.stats.Stale++
		return true
	}
	s.stats.Events++
	switch {
	case s.pending == nil:
		if !d.Full && d.FromRevision > s.lastRev {
			return false
		}
		s.pending = d
	case d.Full:
		s.pending = d
	case d.FromRevision == s.pending.ToRevision:
		merged := *s.pending
		merged.Patch = statespace.CloneTemplate(s.pending.Patch)
		merged.Patch.States = append(merged.Patch.States, d.Patch.States...)
		merged.ToRevision = d.ToRevision
		s.pending = &merged
	case d.FromRevision <= s.lastRev:
		// The new delta alone spans everything pending covered.
		s.pending = d
	default:
		return false
	}
	return true
}

// pollOnce performs one conditional delta poll and stashes the result —
// the fallback path while the stream is down, and the gap-filler after a
// reset. Failures only bump a counter: the host keeps protecting from its
// local map, exactly like the push syncer's degraded mode.
func (s *StreamSyncer) pollOnce(ctx context.Context) {
	pctx, cancel := context.WithTimeout(ctx, s.cfg.PollTimeout)
	defer cancel()
	since := s.Revision()
	d, _, err := s.cfg.Client.PullDelta(pctx, s.cfg.App, s.cfg.Schema, since)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Polls++
	if err != nil {
		if !errors.Is(err, ErrNotFound) {
			s.stats.PollErrors++
		}
		return
	}
	if d == nil || d.ToRevision <= s.lastRev {
		return
	}
	// The poll is authoritative from since: it supersedes whatever was
	// pending (which covered at most the same span).
	s.pending = d
}
