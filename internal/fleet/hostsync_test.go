package fleet

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestHostSyncerLanesShareClientAndDegradeIndependently(t *testing.T) {
	ts, _ := newTestServer(t)
	gate := &gatedTransport{inner: http.DefaultTransport}
	c, err := NewClient(ClientConfig{
		BaseURL:   ts.URL,
		Transport: gate,
		Retry: RetryConfig{
			Attempts: 2,
			Sleep:    func(context.Context, time.Duration) error { return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHostSyncer(c, "host-a")
	h.SetTimeout(5 * time.Second)

	vlc := h.Lane("vlc")
	if h.Lane("vlc") != vlc {
		t.Fatal("same app must yield the same syncer")
	}
	kv := h.Lane("kv")
	if apps := h.Apps(); len(apps) != 2 || apps[0] != "vlc" || apps[1] != "kv" {
		t.Fatalf("Apps() = %v", apps)
	}

	// Both lanes sync fine: no degraded entries.
	if err := vlc.PushTemplate(testTemplate("vlc")); err != nil {
		t.Fatal(err)
	}
	if err := kv.PushTemplate(testTemplate("kv")); err != nil {
		t.Fatal(err)
	}
	if d := h.Degraded(); len(d) != 0 {
		t.Fatalf("Degraded() = %v after healthy pushes", d)
	}

	// One lane fails during an outage; only it shows up degraded.
	gate.setDown(true)
	if err := kv.PushTemplate(testTemplate("kv")); err == nil {
		t.Fatal("push during outage must error")
	}
	d := h.Degraded()
	if len(d) != 1 || d["kv"] == nil {
		t.Fatalf("Degraded() = %v, want only kv", d)
	}

	// Recovery heals the aggregate view.
	gate.setDown(false)
	if err := kv.PushTemplate(testTemplate("kv")); err != nil {
		t.Fatal(err)
	}
	if d := h.Degraded(); len(d) != 0 {
		t.Fatalf("Degraded() = %v after recovery", d)
	}
}

func TestHostSyncerWriteMetrics(t *testing.T) {
	ts, reg, _ := newHubServer(t, 1, nil)
	c := newTestClient(t, ts.URL)
	h := NewHostSyncer(c, "host-a")

	// One polling lane that has synced once, one streaming lane that has
	// accepted a delta.
	if err := h.Lane("vlc").PushTemplate(testTemplate("vlc")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ss, err := h.StartStream(ctx, "kv", StreamSyncerConfig{
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := h.StartStream(ctx, "kv", StreamSyncerConfig{}); err != nil || got != ss {
		t.Fatalf("second StartStream = %v, %v; want the running syncer", got, err)
	}
	if h.Stream("kv") != ss || h.Stream("nope") != nil {
		t.Fatal("Stream lookup broken")
	}
	// The first heartbeat confirms the subscription is live; only then is
	// the Put guaranteed to be published after our subscribe.
	deadline := time.After(10 * time.Second)
	for ss.Stats().Heartbeats == 0 {
		select {
		case <-deadline:
			t.Fatalf("stream never connected (stats %+v)", ss.Stats())
		case <-time.After(2 * time.Millisecond):
		}
	}
	if _, err := reg.Put("host-b", testTemplate("kv")); err != nil {
		t.Fatal(err)
	}
	for ss.TakeUpdate() == nil {
		select {
		case <-deadline:
			t.Fatalf("stream never delivered the kv delta (stats %+v)", ss.Stats())
		case <-time.After(2 * time.Millisecond):
		}
	}
	ss.MarkApplied(1)

	var buf bytes.Buffer
	if err := h.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`stayaway_host_sync_pushes_total{app="vlc"} 1`,
		`stayaway_host_sync_degraded{app="vlc"} 0`,
		`stayaway_host_template_revision{app="vlc"} 1`,
		`stayaway_host_stream_events_total{app="kv"} 1`,
		`# TYPE stayaway_host_stream_live gauge`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("host metrics missing %q:\n%s", want, out)
		}
	}

	cancel()
	h.Wait()
}
