package fleet

import (
	"context"
	"net/http"
	"testing"
	"time"
)

func TestHostSyncerLanesShareClientAndDegradeIndependently(t *testing.T) {
	ts, _ := newTestServer(t)
	gate := &gatedTransport{inner: http.DefaultTransport}
	c, err := NewClient(ClientConfig{
		BaseURL:   ts.URL,
		Transport: gate,
		Retry: RetryConfig{
			Attempts: 2,
			Sleep:    func(context.Context, time.Duration) error { return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHostSyncer(c, "host-a")
	h.SetTimeout(5 * time.Second)

	vlc := h.Lane("vlc")
	if h.Lane("vlc") != vlc {
		t.Fatal("same app must yield the same syncer")
	}
	kv := h.Lane("kv")
	if apps := h.Apps(); len(apps) != 2 || apps[0] != "vlc" || apps[1] != "kv" {
		t.Fatalf("Apps() = %v", apps)
	}

	// Both lanes sync fine: no degraded entries.
	if err := vlc.PushTemplate(testTemplate("vlc")); err != nil {
		t.Fatal(err)
	}
	if err := kv.PushTemplate(testTemplate("kv")); err != nil {
		t.Fatal(err)
	}
	if d := h.Degraded(); len(d) != 0 {
		t.Fatalf("Degraded() = %v after healthy pushes", d)
	}

	// One lane fails during an outage; only it shows up degraded.
	gate.setDown(true)
	if err := kv.PushTemplate(testTemplate("kv")); err == nil {
		t.Fatal("push during outage must error")
	}
	d := h.Degraded()
	if len(d) != 1 || d["kv"] == nil {
		t.Fatalf("Degraded() = %v, want only kv", d)
	}

	// Recovery heals the aggregate view.
	gate.setDown(false)
	if err := kv.PushTemplate(testTemplate("kv")); err != nil {
		t.Fatal(err)
	}
	if d := h.Degraded(); len(d) != 0 {
		t.Fatalf("Degraded() = %v after recovery", d)
	}
}
