package fleet

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestResolveKey(t *testing.T) {
	// Unsecured: both flags empty.
	key, err := ResolveKey("", "")
	if err != nil || key != nil {
		t.Fatalf("ResolveKey(\"\", \"\") = %q, %v; want nil, nil", key, err)
	}

	// Literal value.
	key, err = ResolveKey("s3cret", "")
	if err != nil || string(key) != "s3cret" {
		t.Fatalf("ResolveKey(value) = %q, %v", key, err)
	}

	// The file wins over the value (it does not leak via process
	// listings), and its contents are whitespace-trimmed.
	path := filepath.Join(t.TempDir(), "fleet.key")
	if err := os.WriteFile(path, []byte("  from-file\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	key, err = ResolveKey("ignored", path)
	if err != nil || string(key) != "from-file" {
		t.Fatalf("ResolveKey(file) = %q, %v", key, err)
	}

	// An empty key file is a misconfiguration, not "unsecured".
	empty := filepath.Join(t.TempDir(), "empty.key")
	if err := os.WriteFile(empty, []byte(" \n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveKey("", empty); err == nil {
		t.Error("empty key file accepted")
	}
	if _, err := ResolveKey("", filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing key file accepted")
	}
}

func TestSignedRequestsEndToEnd(t *testing.T) {
	key := []byte("fleet-shared-key")
	ts, reg, _ := newHubServer(t, 1, key)
	ctx := context.Background()
	if _, err := reg.Put("host-a", testTemplate("vlc")); err != nil {
		t.Fatal(err)
	}

	// Unsigned requests never reach a handler: 401 on reads and writes.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/templates/vlc"},
		{http.MethodGet, "/v1/templates"},
		{http.MethodGet, "/v1/events?app=vlc"},
		{http.MethodPut, "/v1/templates/vlc"},
	} {
		req, err := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("unsigned %s %s = %d, want 401", probe.method, probe.path, resp.StatusCode)
		}
	}

	// A client holding the fleet key reads and writes normally, body MAC
	// included.
	signed, err := NewClient(ClientConfig{BaseURL: ts.URL, Key: key, Retry: RetryConfig{Attempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := signed.PullTemplate(ctx, "vlc", "", 0); err != nil {
		t.Fatalf("signed pull: %v", err)
	}
	if _, err := signed.PushTemplate(ctx, "host-b", "kv", testTemplate("kv")); err != nil {
		t.Fatalf("signed push: %v", err)
	}

	// The wrong key is indistinguishable from no key: 401.
	wrong, err := NewClient(ClientConfig{BaseURL: ts.URL, Key: []byte("not-the-key"), Retry: RetryConfig{Attempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := wrong.PullTemplate(ctx, "vlc", "", 0); err == nil {
		t.Error("wrong-key pull accepted")
	}
	if _, err := wrong.PushTemplate(ctx, "host-x", "vlc", testTemplate("vlc")); err == nil {
		t.Error("wrong-key push accepted")
	}

	// Liveness probes and metrics scrapers cannot sign: exempt.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("unsigned GET %s = %d (%s), want 200", path, resp.StatusCode, body)
		}
	}
}

func TestSignatureCoversQueryAndBody(t *testing.T) {
	key := []byte("fleet-shared-key")
	ts, reg, _ := newHubServer(t, 1, key)
	if _, err := reg.Put("host-a", testTemplate("vlc")); err != nil {
		t.Fatal(err)
	}

	// Sign one request, then replay its MAC against a different query
	// string: the signature must not transfer.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/templates/vlc/delta?since=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	SignRequest(key, req, nil)
	tampered, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/templates/vlc/delta?since=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	tampered.Header.Set("X-Stayaway-Signature", req.Header.Get("X-Stayaway-Signature"))
	resp, err := http.DefaultClient.Do(tampered)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("replayed signature across queries = %d, want 401", resp.StatusCode)
	}

	// And the untampered signed request passes (304: the client is
	// already at the current revision — the handler ran).
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotModified {
		t.Errorf("signed request = %d, want 200/304", resp.StatusCode)
	}
}
