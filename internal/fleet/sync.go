package fleet

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/statespace"
)

// Syncer keeps one host's runtime and the fleet registry loosely coupled:
// pull-on-start bootstrap, periodic template pushes, heartbeats — and
// graceful degradation. A sync failure flips the syncer into degraded mode
// but never propagates into the control loop: the daemon keeps protecting
// from its local map, and the next periodic push resyncs automatically once
// the registry recovers.
//
// Syncer implements core.TemplateSink.
type Syncer struct {
	client *Client
	host   string
	app    string
	// timeout bounds each whole sync operation (all retries included).
	timeout time.Duration

	mu       sync.Mutex
	degraded bool
	lastErr  error
	lastRev  int
	pushes   int
	failures int
}

// NewSyncer binds a client to one host's identity.
func NewSyncer(client *Client, host, app string) *Syncer {
	return &Syncer{client: client, host: host, app: app, timeout: 30 * time.Second}
}

// SetTimeout overrides the per-operation deadline (default 30s).
func (s *Syncer) SetTimeout(d time.Duration) {
	if d > 0 {
		s.timeout = d
	}
}

func (s *Syncer) opContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), s.timeout)
}

// Bootstrap pulls the consensus template for the host's app, to seed the
// runtime before its first period. A registry with no template yet — a
// cold fleet — returns (nil, 0, nil); an unreachable registry returns the
// error so the caller can decide to start cold (and says so in its logs).
func (s *Syncer) Bootstrap(ctx context.Context) (*statespace.Template, int, error) {
	tpl, rev, err := s.client.PullTemplate(ctx, s.app, "", 0)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, 0, nil
		}
		s.record(0, err)
		return nil, 0, err
	}
	s.record(rev, nil)
	return tpl, rev, nil
}

// PushTemplate uploads the current learned map, bounded by the sync
// timeout. It returns the sync error for observability; callers that wire
// it as a core.TemplateSink treat errors as a degraded-mode signal, not a
// failure.
func (s *Syncer) PushTemplate(t *statespace.Template) error {
	ctx, cancel := s.opContext()
	defer cancel()
	resp, err := s.client.PushTemplate(ctx, s.host, s.app, t)
	if err != nil {
		s.record(0, err)
		return err
	}
	s.record(resp.Revision, nil)
	return nil
}

// Heartbeat reports liveness; like PushTemplate, failures only mark the
// syncer degraded.
func (s *Syncer) Heartbeat(hb Heartbeat) error {
	if hb.Host == "" {
		hb.Host = s.host
	}
	if hb.App == "" {
		hb.App = s.app
	}
	if hb.TemplateRevision == 0 {
		hb.TemplateRevision = s.LastRevision()
	}
	ctx, cancel := s.opContext()
	defer cancel()
	if err := s.client.SendHeartbeat(ctx, hb); err != nil {
		s.record(0, err)
		return err
	}
	s.recordSuccessOnly()
	return nil
}

func (s *Syncer) record(rev int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.degraded = true
		s.lastErr = err
		s.failures++
		return
	}
	s.degraded = false
	s.lastErr = nil
	s.pushes++
	if rev > 0 {
		s.lastRev = rev
	}
}

// recordSuccessOnly clears degraded state without counting a push.
func (s *Syncer) recordSuccessOnly() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.degraded = false
	s.lastErr = nil
}

// Degraded reports whether the last sync attempt failed, and with what.
func (s *Syncer) Degraded() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded, s.lastErr
}

// LastRevision returns the registry revision of the last successful sync
// (0 when the host has only its local map).
func (s *Syncer) LastRevision() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastRev
}

// Stats returns successful and failed sync-operation counts.
func (s *Syncer) Stats() (pushes, failures int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushes, s.failures
}
