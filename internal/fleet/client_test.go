package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptStep is one scripted transport outcome: a network error or an HTTP
// response.
type scriptStep struct {
	status int
	body   string
	err    error
}

// scriptedTransport replays a script of outcomes, one per request; the last
// step repeats. It is the "flaky network" — no real sockets, no sleeps.
type scriptedTransport struct {
	mu    sync.Mutex
	steps []scriptStep
	calls int
}

func (s *scriptedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	s.mu.Lock()
	i := s.calls
	if i >= len(s.steps) {
		i = len(s.steps) - 1
	}
	step := s.steps[i]
	s.calls++
	s.mu.Unlock()
	if step.err != nil {
		return nil, step.err
	}
	return &http.Response{
		StatusCode: step.status,
		Body:       io.NopCloser(strings.NewReader(step.body)),
		Header:     make(http.Header),
		Request:    req,
	}, nil
}

func (s *scriptedTransport) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// retryClient builds a client over a scripted transport with a recording,
// non-sleeping backoff clock and deterministic (centered) jitter.
func retryClient(t *testing.T, tr http.RoundTripper, attempts int, slept *[]time.Duration) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{
		BaseURL:   "http://registry.test",
		Transport: tr,
		Retry: RetryConfig{
			Attempts:  attempts,
			BaseDelay: 100 * time.Millisecond,
			MaxDelay:  time.Second,
			Sleep: func(_ context.Context, d time.Duration) error {
				*slept = append(*slept, d)
				return nil
			},
			Rand: func() float64 { return 0.5 }, // centered: jitter factor 1.0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientRetriesTransientFailures(t *testing.T) {
	// 500, then a network error, then success: the client must push
	// through both transient failures with exponentially growing delays.
	tr := &scriptedTransport{steps: []scriptStep{
		{status: 500, body: `{"error":"boom"}`},
		{err: fmt.Errorf("connection refused")},
		{status: 200, body: `{"revision":3,"states":2,"violation_states":1,"hosts":2}`},
	}}
	var slept []time.Duration
	c := retryClient(t, tr, 4, &slept)

	resp, err := c.PushTemplate(context.Background(), "host-a", "vlc", testTemplate("vlc"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Revision != 3 || resp.Hosts != 2 {
		t.Errorf("response = %+v", resp)
	}
	if tr.callCount() != 3 {
		t.Errorf("calls = %d, want 3", tr.callCount())
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("backoff delays = %v, want %v", slept, want)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	tr := &scriptedTransport{steps: []scriptStep{{status: 400, body: `{"error":"bad template"}`}}}
	var slept []time.Duration
	c := retryClient(t, tr, 4, &slept)

	_, err := c.PushTemplate(context.Background(), "host-a", "vlc", testTemplate("vlc"))
	if err == nil {
		t.Fatal("400 must fail")
	}
	if !strings.Contains(err.Error(), "bad template") {
		t.Errorf("error lost the server message: %v", err)
	}
	if tr.callCount() != 1 || len(slept) != 0 {
		t.Errorf("calls = %d slept = %v; 4xx must not retry", tr.callCount(), slept)
	}
}

func TestClientGivesUpAfterAttempts(t *testing.T) {
	tr := &scriptedTransport{steps: []scriptStep{{status: 503, body: `{"error":"overloaded"}`}}}
	var slept []time.Duration
	c := retryClient(t, tr, 3, &slept)

	err := c.SendHeartbeat(context.Background(), Heartbeat{Host: "h"})
	if err == nil {
		t.Fatal("exhausted retries must fail")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Errorf("error = %v", err)
	}
	if tr.callCount() != 3 || len(slept) != 2 {
		t.Errorf("calls = %d slept = %d, want 3 calls, 2 sleeps", tr.callCount(), len(slept))
	}
}

func TestClientStopsWhenBackoffContextCancelled(t *testing.T) {
	tr := &scriptedTransport{steps: []scriptStep{{err: fmt.Errorf("down")}}}
	c, err := NewClient(ClientConfig{
		BaseURL:   "http://registry.test",
		Transport: tr,
		Retry: RetryConfig{
			Attempts: 10,
			Sleep:    func(ctx context.Context, _ time.Duration) error { return context.Canceled },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendHeartbeat(context.Background(), Heartbeat{Host: "h"}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if tr.callCount() != 1 {
		t.Errorf("calls = %d, want 1 (cancelled during first backoff)", tr.callCount())
	}
}

func TestClientPullNotFoundIsTerminal(t *testing.T) {
	tr := &scriptedTransport{steps: []scriptStep{{status: 404, body: `{"error":"no template"}`}}}
	var slept []time.Duration
	c := retryClient(t, tr, 4, &slept)

	_, _, err := c.PullTemplate(context.Background(), "vlc", "", 0)
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if tr.callCount() != 1 || len(slept) != 0 {
		t.Errorf("404 must not retry: calls = %d slept = %v", tr.callCount(), slept)
	}
}

func TestClientRejectsCorruptPulledTemplate(t *testing.T) {
	tr := &scriptedTransport{steps: []scriptStep{{status: 200, body: `{"version":99}`}}}
	var slept []time.Duration
	c := retryClient(t, tr, 2, &slept)
	if _, _, err := c.PullTemplate(context.Background(), "vlc", "", 0); err == nil {
		t.Error("corrupt pulled template must fail")
	}
}

func TestBackoffDelayShape(t *testing.T) {
	rc := RetryConfig{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, JitterFrac: 0.2}
	rc.applyDefaults()

	rc.Rand = func() float64 { return 0.5 }
	for n, want := range []time.Duration{100, 200, 400, 800, 1000, 1000} {
		if got := rc.delay(n); got != want*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", n, got, want*time.Millisecond)
		}
	}
	// Jitter bounds: ±20% around the nominal delay.
	rc.Rand = func() float64 { return 0 }
	if got := rc.delay(0); got != 80*time.Millisecond {
		t.Errorf("low-jitter delay = %v, want 80ms", got)
	}
	rc.Rand = func() float64 { return 0.999999 }
	if got := rc.delay(0); got < 115*time.Millisecond || got > 120*time.Millisecond {
		t.Errorf("high-jitter delay = %v, want ≈120ms", got)
	}
}

// gatedTransport fails every request while down, and forwards to the real
// transport while up — a registry outage switch for degraded-mode tests.
type gatedTransport struct {
	mu    sync.Mutex
	down  bool
	inner http.RoundTripper
}

func (g *gatedTransport) setDown(down bool) {
	g.mu.Lock()
	g.down = down
	g.mu.Unlock()
}

func (g *gatedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	g.mu.Lock()
	down := g.down
	g.mu.Unlock()
	if down {
		return nil, fmt.Errorf("registry unreachable (simulated outage)")
	}
	return g.inner.RoundTrip(req)
}

func TestSyncerDegradesAndRecovers(t *testing.T) {
	ts, _ := newTestServer(t)
	gate := &gatedTransport{inner: http.DefaultTransport}
	c, err := NewClient(ClientConfig{
		BaseURL:   ts.URL,
		Transport: gate,
		Retry: RetryConfig{
			Attempts: 2,
			Sleep:    func(context.Context, time.Duration) error { return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSyncer(c, "host-a", "vlc")

	// Healthy push.
	if err := s.PushTemplate(testTemplate("vlc")); err != nil {
		t.Fatal(err)
	}
	if degraded, _ := s.Degraded(); degraded {
		t.Error("healthy push left syncer degraded")
	}
	if s.LastRevision() != 1 {
		t.Errorf("revision = %d, want 1", s.LastRevision())
	}

	// Outage: pushes fail, syncer flips to degraded, nothing panics.
	gate.setDown(true)
	if err := s.PushTemplate(testTemplate("vlc")); err == nil {
		t.Fatal("push during outage must error")
	}
	if degraded, lastErr := s.Degraded(); !degraded || lastErr == nil {
		t.Error("outage did not mark syncer degraded")
	}
	if err := s.Heartbeat(Heartbeat{Periods: 10}); err == nil {
		t.Fatal("heartbeat during outage must error")
	}

	// Recovery: the next periodic push resyncs and heals degraded mode.
	gate.setDown(false)
	if err := s.PushTemplate(testTemplate("vlc")); err != nil {
		t.Fatal(err)
	}
	if degraded, _ := s.Degraded(); degraded {
		t.Error("successful resync left syncer degraded")
	}
	if s.LastRevision() != 2 {
		t.Errorf("revision after resync = %d, want 2", s.LastRevision())
	}
	pushes, failures := s.Stats()
	if pushes != 2 || failures != 2 {
		t.Errorf("stats = %d pushes %d failures, want 2/2", pushes, failures)
	}
	// Heartbeat carries the synced revision.
	if err := s.Heartbeat(Heartbeat{Periods: 20}); err != nil {
		t.Fatal(err)
	}
	status, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(status.Hosts) != 1 || status.Hosts[0].TemplateRevision != 2 {
		t.Errorf("status hosts = %+v", status.Hosts)
	}
}
