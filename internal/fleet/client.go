package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/statespace"
)

// ErrNotFound marks a pull for an application the registry has no
// template for — a normal cold-fleet condition, not a failure.
var ErrNotFound = errors.New("fleet: template not found")

// RetryConfig shapes the client's exponential backoff. Transient failures
// (network errors, 5xx, 429) are retried; other HTTP errors are not.
type RetryConfig struct {
	// Attempts is the total number of tries per request (first try
	// included). Defaults to 4; 1 disables retries.
	Attempts int
	// BaseDelay is the delay before the first retry; each subsequent
	// retry doubles it. Defaults to 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the grown delay. Defaults to 5s.
	MaxDelay time.Duration
	// JitterFrac spreads each delay uniformly within ±JitterFrac of
	// itself so a fleet of clients doesn't retry in lockstep. Defaults
	// to 0.2; negative disables jitter.
	JitterFrac float64
	// Sleep waits between retries; injectable so tests never really
	// sleep. Nil uses a context-aware timer.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand yields uniform values in [0,1) for jitter; nil uses math/rand.
	Rand func() float64
}

func (rc *RetryConfig) applyDefaults() {
	if rc.Attempts <= 0 {
		rc.Attempts = 4
	}
	if rc.BaseDelay <= 0 {
		rc.BaseDelay = 100 * time.Millisecond
	}
	if rc.MaxDelay <= 0 {
		rc.MaxDelay = 5 * time.Second
	}
	if rc.JitterFrac == 0 {
		rc.JitterFrac = 0.2
	}
	if rc.Sleep == nil {
		rc.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	if rc.Rand == nil {
		rc.Rand = rand.Float64
	}
}

// delay computes the backoff before retry attempt n (0-based).
func (rc *RetryConfig) delay(n int) time.Duration {
	d := rc.BaseDelay << uint(n)
	if d > rc.MaxDelay || d <= 0 {
		d = rc.MaxDelay
	}
	if rc.JitterFrac > 0 {
		spread := 1 + rc.JitterFrac*(2*rc.Rand()-1)
		d = time.Duration(float64(d) * spread)
	}
	return d
}

// ClientConfig tunes a Client.
type ClientConfig struct {
	// BaseURL is the registry server root, e.g. "http://registry:7700".
	// Required.
	BaseURL string
	// Timeout bounds each individual HTTP attempt. Defaults to 5s.
	Timeout time.Duration
	// Transport overrides the HTTP transport; injectable for tests.
	// Nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// Retry shapes the backoff; zero values take defaults.
	Retry RetryConfig
	// Key, when non-empty, signs every request with the fleet HMAC so a
	// key-requiring server accepts them; see SignRequest.
	Key []byte
}

// Client talks to the fleet control plane. Safe for concurrent use.
type Client struct {
	base  *url.URL
	http  *http.Client
	retry RetryConfig
	key   []byte
	// streamHTTP has no overall timeout: it carries long-lived event
	// streams, whose liveness is policed by heartbeats, not a deadline.
	streamHTTP *http.Client
}

// NewClient builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("fleet: BaseURL required")
	}
	base, err := url.Parse(cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("fleet: parse BaseURL: %w", err)
	}
	if base.Scheme == "" || base.Host == "" {
		return nil, fmt.Errorf("fleet: BaseURL %q needs scheme and host", cfg.BaseURL)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	cfg.Retry.applyDefaults()
	return &Client{
		base:       base,
		http:       &http.Client{Timeout: cfg.Timeout, Transport: cfg.Transport},
		retry:      cfg.Retry,
		key:        append([]byte(nil), cfg.Key...),
		streamHTTP: &http.Client{Transport: cfg.Transport},
	}, nil
}

// sign attaches the fleet MAC when a key is configured; body must be the
// exact request body bytes (nil for body-less requests).
func (c *Client) sign(req *http.Request, body []byte) {
	SignRequest(c.key, req, body)
}

// transientStatus reports whether an HTTP status is worth retrying.
func transientStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// httpError is a non-2xx reply, carrying the server's error body.
type httpError struct {
	Status int
	Msg    string
}

func (e *httpError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("fleet: server returned %d: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("fleet: server returned %d", e.Status)
}

// do runs one request with retry/backoff. build constructs a fresh request
// per attempt (bodies cannot be reused); handle consumes a 2xx/304
// response. Non-transient HTTP errors abort the retry loop immediately.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error), handle func(*http.Response) error) error {
	var lastErr error
	for attempt := 0; attempt < c.retry.Attempts; attempt++ {
		if attempt > 0 {
			if err := c.retry.Sleep(ctx, c.retry.delay(attempt-1)); err != nil {
				return err
			}
		}
		req, err := build()
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req.WithContext(ctx))
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = fmt.Errorf("fleet: %s %s: %w", req.Method, req.URL.Path, err)
			continue
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 || resp.StatusCode == http.StatusNotModified {
			err := handle(resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return err
		}
		herr := &httpError{Status: resp.StatusCode}
		var body errorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body) == nil {
			herr.Msg = body.Error
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if !transientStatus(resp.StatusCode) {
			return herr
		}
		lastErr = herr
	}
	return fmt.Errorf("fleet: giving up after %d attempts: %w", c.retry.Attempts, lastErr)
}

func (c *Client) endpoint(parts ...string) string {
	u := *c.base
	u.Path = strings.TrimSuffix(u.Path, "/") + "/" + strings.Join(parts, "/")
	return u.String()
}

// PushTemplate uploads a learned template for app on behalf of host and
// returns the consensus revision the registry assigned.
func (c *Client) PushTemplate(ctx context.Context, host, app string, t *statespace.Template) (PutTemplateResponse, error) {
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		return PutTemplateResponse{}, err
	}
	body := buf.Bytes()
	var out PutTemplateResponse
	err := c.do(ctx,
		func() (*http.Request, error) {
			req, err := http.NewRequest(http.MethodPut,
				c.endpoint("v1", "templates", url.PathEscape(app)), bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(hostHeader, host)
			c.sign(req, body)
			return req, nil
		},
		func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&out)
		})
	return out, err
}

// PullTemplate downloads the consensus template for app. schema narrows to
// an exact schema fingerprint; haveRevision, when non-zero, turns the pull
// into a freshness check: if the registry still holds that revision the
// call returns (nil, haveRevision, nil) without transferring the body.
// A registry that has never seen the app returns ErrNotFound.
func (c *Client) PullTemplate(ctx context.Context, app, schema string, haveRevision int) (*statespace.Template, int, error) {
	var tpl *statespace.Template
	rev := 0
	err := c.do(ctx,
		func() (*http.Request, error) {
			u := c.endpoint("v1", "templates", url.PathEscape(app))
			q := url.Values{}
			if schema != "" {
				q.Set("schema", schema)
			}
			if haveRevision > 0 {
				q.Set("rev", strconv.Itoa(haveRevision))
			}
			if len(q) > 0 {
				u += "?" + q.Encode()
			}
			req, err := http.NewRequest(http.MethodGet, u, nil)
			if err != nil {
				return nil, err
			}
			c.sign(req, nil)
			return req, nil
		},
		func(resp *http.Response) error {
			rev, _ = strconv.Atoi(resp.Header.Get(revisionHeader))
			if resp.StatusCode == http.StatusNotModified {
				return nil
			}
			t, err := statespace.ReadTemplate(resp.Body)
			if err != nil {
				return fmt.Errorf("fleet: pulled template: %w", err)
			}
			tpl = t
			return nil
		})
	if err != nil {
		var herr *httpError
		if errors.As(err, &herr) && herr.Status == http.StatusNotFound {
			return nil, 0, ErrNotFound
		}
		return nil, 0, err
	}
	return tpl, rev, nil
}

// ListTemplates downloads every consensus template the registry holds —
// the scheduler's bootstrap feed. app, when non-empty, narrows to one
// application's entries; metaOnly skips template bodies (cheap freshness
// polling). Entries arrive in deterministic (app, schema) key order. An
// empty registry returns an empty slice, not an error. Each returned
// template is validated before use — a registry serving corrupt maps must
// not poison placement decisions.
func (c *Client) ListTemplates(ctx context.Context, app string, metaOnly bool) ([]TemplateEntry, error) {
	var out ListTemplatesResponse
	err := c.do(ctx,
		func() (*http.Request, error) {
			u := c.endpoint("v1", "templates")
			q := url.Values{}
			if app != "" {
				q.Set("app", app)
			}
			if metaOnly {
				q.Set("meta", "1")
			}
			if len(q) > 0 {
				u += "?" + q.Encode()
			}
			req, err := http.NewRequest(http.MethodGet, u, nil)
			if err != nil {
				return nil, err
			}
			c.sign(req, nil)
			return req, nil
		},
		func(resp *http.Response) error {
			return json.NewDecoder(io.LimitReader(resp.Body, maxTemplateBytes)).Decode(&out)
		})
	if err != nil {
		return nil, err
	}
	for _, te := range out.Templates {
		if te.Template == nil {
			continue
		}
		if err := te.Template.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: listed template %s@%s: %w", te.App, te.Schema, err)
		}
	}
	return out.Templates, nil
}

// SendHeartbeat reports host liveness and throttle state.
func (c *Client) SendHeartbeat(ctx context.Context, hb Heartbeat) error {
	body, err := json.Marshal(hb)
	if err != nil {
		return err
	}
	return c.do(ctx,
		func() (*http.Request, error) {
			req, err := http.NewRequest(http.MethodPost, c.endpoint("v1", "heartbeat"), bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			c.sign(req, body)
			return req, nil
		},
		func(*http.Response) error { return nil })
}

// Status fetches the fleet-wide summary.
func (c *Client) Status(ctx context.Context) (*StatusResponse, error) {
	var out StatusResponse
	err := c.do(ctx,
		func() (*http.Request, error) {
			req, err := http.NewRequest(http.MethodGet, c.endpoint("v1", "status"), nil)
			if err != nil {
				return nil, err
			}
			c.sign(req, nil)
			return req, nil
		},
		func(resp *http.Response) error {
			return json.NewDecoder(resp.Body).Decode(&out)
		})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthy probes /healthz once (no retries — health checks want the truth,
// not persistence).
func (c *Client) Healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint("healthz"), nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &httpError{Status: resp.StatusCode}
	}
	return nil
}
