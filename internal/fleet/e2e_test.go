// The end-to-end acceptance scenarios live in an external test package:
// they drive the simulated substrate through internal/experiments, which
// itself links against fleet (for the convergence harness), so an
// in-package test would be an import cycle.
package fleet_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/throttle"
)

// newE2EServer and newE2EClient mirror the in-package test fixtures using
// only the exported API (this package cannot reach them).
func newE2EServer(t *testing.T) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg, err := registry.Open(registry.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fleet.NewServer(fleet.ServerConfig{Registry: reg, Now: func() time.Time { return time.Unix(1700000000, 0) }})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

func newE2EClient(t *testing.T, baseURL string) *fleet.Client {
	t.Helper()
	c, err := fleet.NewClient(fleet.ClientConfig{
		BaseURL: baseURL,
		Retry:   fleet.RetryConfig{Attempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// e2eGatedTransport fails every request while down — a registry outage
// switch, same as the in-package gatedTransport.
type e2eGatedTransport struct {
	mu    sync.Mutex
	down  bool
	inner http.RoundTripper
}

func (g *e2eGatedTransport) setDown(down bool) {
	g.mu.Lock()
	g.down = down
	g.mu.Unlock()
}

func (g *e2eGatedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	g.mu.Lock()
	down := g.down
	g.mu.Unlock()
	if down {
		return nil, fmt.Errorf("registry unreachable (simulated outage)")
	}
	return g.inner.RoundTrip(req)
}

// The acceptance scenario for the fleet control plane: host A learns a
// state-space map against CPUBomb and pushes it to the registry; host B —
// a different machine running the same sensitive application against a
// co-runner A never saw (Soplex) — pulls the map and skips the
// learning-phase QoS violations a cold start would have suffered. This is
// the paper's Fig 17→18 template story, across hosts instead of across
// runs.
func TestE2ETemplateSharedAcrossHosts(t *testing.T) {
	ts, _ := newE2EServer(t)
	ctx := context.Background()

	vlc := func(rng *rand.Rand) sim.QoSApp {
		return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
	}
	soplex := func(rng *rand.Rand) sim.App {
		cfg := apps.DefaultSoplexConfig()
		cfg.TotalWork = 0
		return apps.NewSoplex(cfg, rng)
	}

	// Host A: learn against CPUBomb with Stay-Away active, then push.
	learn, err := experiments.Run(experiments.Scenario{
		Name:        "fleet-host-a-learn",
		SensitiveID: "vlc",
		Sensitive:   vlc,
		Batch: []experiments.Placement{{ID: "batch", StartTick: 20, App: func(*rand.Rand) sim.App {
			return apps.NewCPUBomb(apps.DefaultCPUBombConfig())
		}}},
		Ticks:    250,
		Seed:     42,
		StayAway: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	clientA := newE2EClient(t, ts.URL)
	pushed, err := clientA.PushTemplate(ctx, "host-a", "vlc-stream",
		learn.Runtime.ExportTemplate("vlc-stream"))
	if err != nil {
		t.Fatal(err)
	}
	if pushed.Revision != 1 || pushed.ViolationStates == 0 {
		t.Fatalf("host A push = %+v; need violation states to share", pushed)
	}

	// Host B: pull the consensus map — no template learned locally.
	clientB := newE2EClient(t, ts.URL)
	tpl, rev, err := clientB.PullTemplate(ctx, "vlc-stream", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rev != pushed.Revision || len(tpl.States) == 0 {
		t.Fatalf("host B pulled rev=%d states=%d", rev, len(tpl.States))
	}

	// Host B runs VLC against Soplex twice: cold (no template) and
	// bootstrapped from the registry. Identical seeds, identical
	// co-location; only the starting map differs.
	run := func(name string, seeded bool) *experiments.RunResult {
		sc := experiments.Scenario{
			Name:        name,
			SensitiveID: "vlc",
			Sensitive:   vlc,
			Batch:       []experiments.Placement{{ID: "batch", StartTick: 20, App: soplex}},
			Ticks:       250,
			Seed:        43,
			StayAway:    true,
		}
		if seeded {
			sc.Template = tpl
		}
		res, err := experiments.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run("fleet-host-b-cold", false)
	seeded := run("fleet-host-b-seeded", true)

	firstThrottle := func(res *experiments.RunResult) int {
		for _, r := range res.Records {
			if r.Throttled {
				return r.Tick
			}
		}
		return len(res.Records)
	}
	// Learning-phase window: from batch arrival until the cold run first
	// learned to throttle, plus slack — the ticks where the cold host is
	// still paying for knowledge the fleet already has.
	coldStart, seededStart := firstThrottle(cold), firstThrottle(seeded)
	if seededStart > coldStart {
		t.Errorf("bootstrapped host engaged protection at tick %d, cold at %d — template gave no head start",
			seededStart, coldStart)
	}
	window := coldStart + 20
	countViolationsUpTo := func(res *experiments.RunResult, tick int) int {
		n := 0
		for _, r := range res.Records {
			if r.Tick <= tick && r.Violation {
				n++
			}
		}
		return n
	}
	coldV, seededV := countViolationsUpTo(cold, window), countViolationsUpTo(seeded, window)
	t.Logf("first throttle: cold %d seeded %d; violations ≤ tick %d: cold %d seeded %d; full run: cold %d seeded %d",
		coldStart, seededStart, window, coldV, seededV, cold.Report.Violations, seeded.Report.Violations)
	if seededV > coldV {
		t.Errorf("learning-phase violations: seeded %d > cold %d — sharing the map made things worse",
			seededV, coldV)
	}

	// Host B's own learning flows back: its push merges into revision 2
	// and the consensus accumulates both hosts' contributions.
	resp, err := clientB.PushTemplate(ctx, "host-b", "vlc-stream",
		seeded.Runtime.ExportTemplate("vlc-stream"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Revision != 2 || resp.Hosts != 2 {
		t.Errorf("host B merge = %+v, want revision 2 from 2 hosts", resp)
	}
	status, err := clientB.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(status.Templates) != 1 || status.Templates[0].Hosts != 2 {
		t.Errorf("status templates = %+v", status.Templates)
	}
}

// e2eEnv scripts a minimal core.Environment: a sensitive container under
// growing batch pressure, violating QoS above a CPU threshold.
type e2eEnv struct {
	tick int
}

func (e *e2eEnv) Collect() []metrics.Sample {
	e.tick++
	batch := float64((e.tick * 37) % 400)
	return []metrics.Sample{
		metrics.NewSample("web", map[metrics.Metric]float64{
			metrics.MetricCPU:    100,
			metrics.MetricMemory: 500,
		}),
		metrics.NewSample("b1", map[metrics.Metric]float64{
			metrics.MetricCPU: batch,
		}),
	}
}

func (e *e2eEnv) QoSViolation() bool     { return (e.tick*37)%400 > 300 }
func (e *e2eEnv) SensitiveRunning() bool { return true }
func (e *e2eEnv) BatchRunning() bool     { return true }
func (e *e2eEnv) BatchActive() bool      { return true }

// The degraded-mode half of the acceptance scenario: a registry outage in
// the middle of a run must not interrupt the control loop — the daemon
// keeps protecting from its local map, records the sync failures, and the
// first periodic push after recovery resyncs the registry.
func TestE2ERegistryOutageMidRun(t *testing.T) {
	ts, reg := newE2EServer(t)
	gate := &e2eGatedTransport{inner: http.DefaultTransport}
	client, err := fleet.NewClient(fleet.ClientConfig{
		BaseURL:   ts.URL,
		Transport: gate,
		Retry: fleet.RetryConfig{
			Attempts: 2,
			Sleep:    func(context.Context, time.Duration) error { return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	syncer := fleet.NewSyncer(client, "host-a", "web")

	cfg := core.DefaultConfig("web", []string{"b1"}, metrics.DefaultRanges(4, 4096, 200, 1000))
	rt, err := core.New(cfg, &e2eEnv{}, throttle.NewRecordingActuator())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(rt)
	if err != nil {
		t.Fatal(err)
	}
	srv.Sink = syncer
	srv.SyncEvery = 5
	done := make(chan struct{})
	srv.OnEvent = func(core.Event) { done <- struct{}{} }

	ticks := make(chan time.Time)
	if err := srv.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	// Each step waits for the period to complete, so assertions after
	// step() observe a quiescent loop.
	step := func(n int) {
		for i := 0; i < n; i++ {
			ticks <- time.Time{}
			<-done
		}
	}

	// Healthy phase: two sync points (periods 5 and 10) pass. The loop
	// pushes after OnEvent, so phases end off the sync cadence — the two
	// trailing ticks guarantee the last push settled before the gate flips.
	step(12)
	// Outage strikes mid-run: pushes at periods 15 and 20 fail.
	gate.setDown(true)
	step(10)
	if _, periods, err := srv.Snapshot(); err != nil || periods != 22 {
		t.Fatalf("loop did not keep controlling through the outage: periods=%d err=%v", periods, err)
	}
	if degraded, lastErr := syncer.Degraded(); !degraded || lastErr == nil {
		t.Error("outage not reflected in syncer state")
	}
	if _, failures, syncErr := srv.SyncStatus(); failures == 0 || syncErr == nil {
		t.Error("outage not reflected in server sync status")
	}

	// Recovery: the push at period 25 resyncs without any intervention,
	// and shutdown flushes one final snapshot.
	gate.setDown(false)
	step(3)
	close(ticks)
	srv.Wait()

	if degraded, _ := syncer.Degraded(); degraded {
		t.Error("syncer still degraded after recovery")
	}
	syncs, failures, syncErr := srv.SyncStatus()
	if syncs < 3 || failures != 2 || syncErr != nil {
		t.Errorf("sync status = %d ok / %d failed / err %v, want ≥3 ok, 2 failed, nil", syncs, failures, syncErr)
	}
	entry, ok := reg.Get("web", "")
	if !ok {
		t.Fatal("registry never received the host's map")
	}
	if entry.Revision < 3 {
		t.Errorf("registry revision = %d, want ≥3 (healthy pushes + resync)", entry.Revision)
	}
	if len(entry.Template.States) == 0 {
		t.Error("registry holds an empty map")
	}
	if rt.Report().Periods != 25 {
		t.Errorf("runtime periods = %d, want 25", rt.Report().Periods)
	}
}
