package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestListTemplatesEmpty(t *testing.T) {
	ts, _ := newTestServer(t)
	c := newTestClient(t, ts.URL)

	entries, err := c.ListTemplates(context.Background(), "", false)
	if err != nil {
		t.Fatalf("ListTemplates on empty registry: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("empty registry listed %d entries", len(entries))
	}
}

func TestListTemplatesHandler(t *testing.T) {
	ts, reg := newTestServer(t)

	for _, app := range []string{"vlc-stream", "webservice"} {
		if _, err := reg.Put("host1", testTemplate(app)); err != nil {
			t.Fatalf("seed %s: %v", app, err)
		}
	}
	if _, err := reg.Put("host2", testTemplate("vlc-stream")); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/templates")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/templates = %d", resp.StatusCode)
	}
	var body ListTemplatesResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Templates) != 2 {
		t.Fatalf("listed %d templates, want 2", len(body.Templates))
	}
	// Deterministic key order: vlc-stream sorts before webservice.
	if body.Templates[0].App != "vlc-stream" || body.Templates[1].App != "webservice" {
		t.Fatalf("order = %s, %s", body.Templates[0].App, body.Templates[1].App)
	}
	if body.Templates[0].Revision != 2 || body.Templates[0].Hosts != 2 {
		t.Fatalf("vlc-stream entry = rev %d hosts %d, want rev 2 hosts 2",
			body.Templates[0].Revision, body.Templates[0].Hosts)
	}
	for _, te := range body.Templates {
		if te.Template == nil {
			t.Fatalf("entry %s has no template body", te.App)
		}
		if te.States != len(te.Template.States) {
			t.Fatalf("entry %s states %d != body %d", te.App, te.States, len(te.Template.States))
		}
		if te.ViolationStates != 1 {
			t.Fatalf("entry %s violation states = %d, want 1", te.App, te.ViolationStates)
		}
	}
}

func TestListTemplatesClientFilters(t *testing.T) {
	ts, reg := newTestServer(t)
	c := newTestClient(t, ts.URL)
	ctx := context.Background()

	for _, app := range []string{"vlc-stream", "webservice"} {
		if _, err := reg.Put("host1", testTemplate(app)); err != nil {
			t.Fatal(err)
		}
	}

	all, err := c.ListTemplates(ctx, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("listed %d entries, want 2", len(all))
	}
	for _, te := range all {
		if te.Template == nil || te.Template.SensitiveApp != te.App {
			t.Fatalf("entry %s: body mismatch %+v", te.App, te.Template)
		}
	}

	one, err := c.ListTemplates(ctx, "webservice", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].App != "webservice" {
		t.Fatalf("app filter returned %+v", one)
	}

	meta, err := c.ListTemplates(ctx, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta) != 2 {
		t.Fatalf("meta-only listed %d entries, want 2", len(meta))
	}
	for _, te := range meta {
		if te.Template != nil {
			t.Fatalf("meta-only entry %s carries a template body", te.App)
		}
		if te.States == 0 {
			t.Fatalf("meta-only entry %s lost its metadata", te.App)
		}
	}
}

func TestListTemplatesClientRejectsCorruptBody(t *testing.T) {
	// A registry serving structurally invalid templates must not hand them
	// onward to placement decisions.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"templates":[{"app":"x","schema":"s","revision":1,` +
			`"template":{"version":99,"sensitive_app":"x","dim":1,"states":[],"ranges":{}}}]}`))
	}))
	defer bad.Close()
	c := newTestClient(t, bad.URL)
	if _, err := c.ListTemplates(context.Background(), "", false); err == nil {
		t.Fatal("corrupt listed template accepted")
	}
}
