package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/registry"
	"repro/internal/statespace"
	"repro/internal/stream"
)

// Streaming control plane: the registry's OnPut hook publishes every
// accepted merge into a stream.Hub; GET /v1/events serves that hub over
// SSE so a violation learned on one host reaches every subscribed host
// within one control period, and GET /v1/templates/{app}/delta serves the
// same updates to polling clients who only pay for the states they miss.

// Server-side metric names; kept as constants so handler instrumentation
// and tests agree on spelling.
const (
	metricPuts              = "stayaway_registry_puts_total"
	helpPuts                = "Accepted template uploads."
	metricMergeConflicts    = "stayaway_registry_merge_conflicts_total"
	helpMergeConflicts      = "Template uploads rejected by merge or schema conflicts."
	metricTemplateBytes     = "stayaway_template_bytes_served_total"
	helpTemplateBytes       = "Bytes of full template bodies served."
	metricDeltaBytes        = "stayaway_delta_bytes_served_total"
	helpDeltaBytes          = "Bytes of delta bodies served."
	metricDeltaRequests     = "stayaway_delta_requests_total"
	helpDeltaRequests       = "Delta sync requests served, by result."
	metricActiveStreams     = "stayaway_active_streams"
	helpActiveStreams       = "Currently attached event-stream subscribers."
	metricStreamEvents      = "stayaway_stream_events_total"
	helpStreamEvents        = "Events published on the template stream."
	metricStreamDropped     = "stayaway_stream_dropped_total"
	helpStreamDropped       = "Subscribers dropped for slow consumption."
	metricTemplateRevision  = "stayaway_template_revision"
	helpTemplateRevision    = "Current consensus revision per template."
	metricTemplateStates    = "stayaway_template_states"
	helpTemplateStates      = "States per consensus template."
	metricTemplateViolState = "stayaway_template_violation_states"
	helpTemplateViolState   = "Violation states per consensus template."
)

// PublishHook adapts a stream.Hub to the registry's OnPut hook: every
// accepted Put becomes one delta event on the template stream. The hook
// runs under the registry lock, which is what orders events by revision;
// Hub.Publish never blocks (slow subscribers are dropped, not waited on),
// so holding the lock across it is safe.
func PublishHook(hub *stream.Hub) registry.PutHook {
	return func(e *registry.Entry, d *statespace.TemplateDelta) {
		up := StreamUpdate{
			App:      e.Key.App,
			Schema:   e.Key.Schema,
			Revision: e.Revision,
			Delta:    d,
		}
		data, err := json.Marshal(up)
		if err != nil {
			return // a template that marshalled into the store always remarshals; defensive only
		}
		hub.Publish(stream.Event{
			Type:     stream.TypeDelta,
			App:      e.Key.App,
			Schema:   e.Key.Schema,
			Revision: e.Revision,
			Data:     data,
		})
	}
}

// getDelta serves the conditional-sync endpoint: the states of app's
// consensus template changed after ?since=rev. A client that is already
// current gets 304 and no body.
func (s *Server) getDelta(w http.ResponseWriter, r *http.Request) {
	app := r.PathValue("app")
	since := 0
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad since %q: %v", raw, err)
			return
		}
		since = v
	}
	d, ok := s.cfg.Registry.DeltaSince(app, r.URL.Query().Get("schema"), since)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no template for app %q", app)
		return
	}
	w.Header().Set(revisionHeader, strconv.Itoa(d.ToRevision))
	if d.Empty() {
		if s.cfg.Metrics != nil {
			s.cfg.Metrics.Counter(metricDeltaRequests, helpDeltaRequests, "result", "current").Add(1)
		}
		w.WriteHeader(http.StatusNotModified)
		return
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		s.writeError(w, http.StatusInternalServerError, "encode delta: %v", err)
		return
	}
	if s.cfg.Metrics != nil {
		result := "incremental"
		if d.Full {
			result = "full"
		}
		s.cfg.Metrics.Counter(metricDeltaRequests, helpDeltaRequests, "result", result).Add(1)
		s.cfg.Metrics.Counter(metricDeltaBytes, helpDeltaBytes).Add(float64(buf.Len()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// getEvents serves the SSE template stream. ?app= narrows the feed to one
// application; Last-Event-ID resumes a dropped connection — when the
// requested position is gone (hub restart or replay-ring overrun) the
// client receives a reset event and must resync via the delta endpoint
// before trusting the stream again.
func (s *Server) getEvents(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Hub == nil {
		s.writeError(w, http.StatusNotImplemented, "event streaming not enabled")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("last_event_id")
	}
	appFilter := r.URL.Query().Get("app")

	sub, resumed := s.cfg.Hub.Subscribe(lastID)
	if sub == nil {
		s.writeError(w, http.StatusServiceUnavailable, "event stream shutting down")
		return
	}
	defer sub.Close()
	if s.cfg.Metrics != nil {
		g := s.cfg.Metrics.Gauge(metricActiveStreams, helpActiveStreams)
		g.Add(1)
		defer g.Add(-1)
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	enc := stream.NewEncoder(w)
	if lastID != "" && !resumed {
		// The client asked to resume from a position this incarnation
		// cannot replay: say so explicitly instead of silently skipping.
		if err := enc.WriteEvent(stream.Event{
			Epoch: s.cfg.Hub.Epoch(), Seq: 0, Type: stream.TypeReset,
		}); err != nil {
			return
		}
	}
	// An immediate heartbeat confirms the subscription is live before the
	// first real event arrives — clients key "streaming mode" off it.
	if err := enc.WriteHeartbeat(); err != nil {
		return
	}
	fl.Flush()

	tick := time.NewTicker(s.cfg.StreamHeartbeat)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
			if err := enc.WriteHeartbeat(); err != nil {
				return
			}
			fl.Flush()
		case ev, open := <-sub.C:
			if !open {
				// Dropped for slow consumption (or hub shutdown); ending
				// the response makes the client reconnect and resume.
				return
			}
			if appFilter != "" && ev.App != "" && ev.App != appFilter {
				continue
			}
			if err := enc.WriteEvent(ev); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// getMetrics refreshes the per-template gauges from the store, then
// renders the metric set in Prometheus text format.
func (s *Server) getMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.cfg.Metrics
	for _, e := range s.cfg.Registry.Entries() {
		labels := []string{"app", e.Key.App, "schema", e.Key.Schema}
		m.Gauge(metricTemplateRevision, helpTemplateRevision, labels...).Set(float64(e.Revision))
		m.Gauge(metricTemplateStates, helpTemplateStates, labels...).Set(float64(len(e.Template.States)))
		m.Gauge(metricTemplateViolState, helpTemplateViolState, labels...).Set(float64(e.Template.ViolationCount()))
	}
	if s.cfg.Hub != nil {
		st := s.cfg.Hub.Stats()
		m.Gauge(metricActiveStreams, helpActiveStreams).Set(float64(st.Active))
		m.Counter(metricStreamEvents, helpStreamEvents).Set(float64(st.Published))
		m.Counter(metricStreamDropped, helpStreamDropped).Set(float64(st.Dropped))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WriteTo(w)
}
