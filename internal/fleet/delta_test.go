package fleet

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/statespace"
	"repro/internal/stream"
)

// newHubServer builds a fleet server with a live publish hub, so tests
// can exercise the delta endpoint and the SSE stream end to end.
func newHubServer(t *testing.T, epoch int64, key []byte) (*httptest.Server, *registry.Registry, *stream.Hub) {
	t.Helper()
	hub := stream.NewHub(stream.HubConfig{Epoch: epoch})
	t.Cleanup(hub.Close)
	reg, err := registry.Open(registry.Config{OnPut: PublishHook(hub)})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Registry:        reg,
		Hub:             hub,
		Metrics:         stream.NewMetricSet(),
		Key:             key,
		StreamHeartbeat: 50 * time.Millisecond,
		Now:             func() time.Time { return time.Unix(1700000000, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, reg, hub
}

func TestPullDeltaLifecycle(t *testing.T) {
	ts, reg, _ := newHubServer(t, 1, nil)
	c := newTestClient(t, ts.URL)
	ctx := context.Background()

	// No entry yet.
	if _, _, err := c.PullDelta(ctx, "vlc", "", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cold delta err = %v, want ErrNotFound", err)
	}

	e, err := reg.Put("host-a", testTemplate("vlc"))
	if err != nil {
		t.Fatal(err)
	}

	// From nothing: a Full replacement.
	d, rev, err := c.PullDelta(ctx, "vlc", "", 0)
	if err != nil || d == nil || !d.Full {
		t.Fatalf("bootstrap delta = %+v, rev %d, err %v (want Full)", d, rev, err)
	}
	if rev != e.Revision || d.ToRevision != e.Revision || len(d.Patch.States) != 2 {
		t.Fatalf("bootstrap delta = %+v, rev %d", d, rev)
	}

	// Empty delta: the client is current, nothing crosses the wire.
	d, rev, err = c.PullDelta(ctx, "vlc", "", e.Revision)
	if err != nil || d != nil || rev != e.Revision {
		t.Fatalf("current delta = %+v, rev %d, err %v (want nil delta)", d, rev, err)
	}

	// Client ahead of the server (the registry lost history, say a wiped
	// data dir): served a Full replacement, never an error.
	d, _, err = c.PullDelta(ctx, "vlc", "", e.Revision+5)
	if err != nil || d == nil || !d.Full {
		t.Fatalf("ahead delta = %+v, err %v (want Full)", d, err)
	}

	// Incremental: a second host contributes one new violation; a client
	// at the old revision gets just the changed state.
	upd := testTemplate("vlc")
	upd.States = []statespace.TemplateState{{
		X: 5, Y: 5, Label: statespace.Violation.String(), Weight: 1,
		Vector: []float64{0.5, 0.4},
	}}
	e2, err := reg.Put("host-b", upd)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err = c.PullDelta(ctx, "vlc", "", e.Revision)
	if err != nil || d == nil || d.Full {
		t.Fatalf("incremental delta = %+v, err %v", d, err)
	}
	if d.FromRevision != e.Revision || d.ToRevision != e2.Revision || len(d.Patch.States) != 1 {
		t.Fatalf("incremental delta = %+v", d)
	}
	if d.Patch.States[0].Label != statespace.Violation.String() {
		t.Fatalf("patch state = %+v, want the new violation", d.Patch.States[0])
	}
}

func TestStreamDeliversPutWithinConnection(t *testing.T) {
	ts, reg, _ := newHubServer(t, 1, nil)
	c := newTestClient(t, ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var got *StreamUpdate
	done := make(chan struct{})
	go func() {
		// The first heartbeat confirms the subscription is live; only then
		// is the Put guaranteed to be published after our subscribe.
		heard := make(chan struct{})
		var once sync.Once
		go func() {
			<-heard
			if _, err := reg.Put("host-a", testTemplate("vlc")); err != nil {
				t.Error(err)
				cancel()
			}
		}()
		_, err := c.StreamEvents(ctx, "vlc", "", func(ev stream.Event, up *StreamUpdate) error {
			if ev.Type == stream.TypeHeartbeat {
				once.Do(func() { close(heard) })
			}
			if ev.Type == stream.TypeDelta && up != nil {
				got = up
				cancel()
			}
			return nil
		})
		if err != nil && ctx.Err() == nil {
			t.Error(err)
		}
		close(done)
	}()
	<-done
	if got == nil {
		t.Fatal("stream never delivered the put")
	}
	if got.App != "vlc" || got.Revision != 1 || got.Delta == nil || !got.Delta.Full {
		t.Fatalf("update = %+v", got)
	}
}

func TestStreamRestartResumesViaReset(t *testing.T) {
	// Session one: subscribe, receive one delta, remember its event ID.
	ts, reg, _ := newHubServer(t, 1, nil)
	c := newTestClient(t, ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	var lastID string
	heard := make(chan struct{})
	var once sync.Once
	go func() {
		<-heard // first heartbeat = subscription live; the put will stream
		if _, err := reg.Put("host-a", testTemplate("vlc")); err != nil {
			t.Error(err)
		}
	}()
	id, err := c.StreamEvents(ctx, "vlc", "", func(ev stream.Event, up *StreamUpdate) error {
		if ev.Type == stream.TypeHeartbeat {
			once.Do(func() { close(heard) })
		}
		if ev.Type == stream.TypeDelta {
			cancel()
		}
		return nil
	})
	if ctx.Err() == nil && err != nil {
		t.Fatal(err)
	}
	lastID = id
	if lastID == "" {
		t.Fatal("no event ID recorded before the restart")
	}

	// The registry restarts: a fresh hub with a different epoch. Resuming
	// with the stale ID must yield a reset, telling the client its resume
	// position is gone and it must delta-poll the gap.
	ts2, _, _ := newHubServer(t, 2, nil)
	c2 := newTestClient(t, ts2.URL)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	sawReset := false
	finalID, err := c2.StreamEvents(ctx2, "vlc", lastID, func(ev stream.Event, up *StreamUpdate) error {
		if ev.Type == stream.TypeReset {
			sawReset = true
			cancel2()
		}
		return nil
	})
	if ctx2.Err() == nil && err != nil {
		t.Fatal(err)
	}
	if !sawReset {
		t.Fatal("restarted server never sent a reset for the stale Last-Event-ID")
	}
	if finalID != "" {
		t.Fatalf("lastID after reset = %q, want cleared", finalID)
	}
}

// TestMergeWhileStreaming races a pushing fleet against a streaming
// consumer applying deltas to its local template — run under -race this
// is the merge-while-streaming soak the streaming control plane must
// survive.
func TestMergeWhileStreaming(t *testing.T) {
	ts, reg, _ := newHubServer(t, 1, nil)
	c := newTestClient(t, ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ss, err := NewStreamSyncer(StreamSyncerConfig{
		Client:       c,
		App:          "vlc",
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan struct{})
	go func() {
		ss.Run(ctx)
		close(runDone)
	}()

	// The pushing fleet: 20 uploads, every fifth carrying a brand-new
	// violation state (revision churn plus real patches).
	const puts = 20
	pushDone := make(chan error, 1)
	go func() {
		for i := 0; i < puts; i++ {
			tpl := testTemplate("vlc")
			if i%5 == 0 {
				tpl.States = append(tpl.States, statespace.TemplateState{
					X: float64(i), Y: float64(i), Label: statespace.Violation.String(),
					Weight: 1, Vector: []float64{0.3 + float64(i)/50, 0.2},
				})
			}
			if _, err := reg.Put("host-x", tpl); err != nil {
				pushDone <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
		pushDone <- nil
	}()

	// The consuming host: take pending updates at "period boundaries" and
	// apply them to its local template, as stayawayd does to its lane.
	var local *statespace.Template
	deadline := time.After(15 * time.Second)
	for {
		if d := ss.TakeUpdate(); d != nil {
			merged, err := statespace.ApplyDelta(local, d, 0.01)
			if err != nil {
				t.Fatalf("apply streamed delta: %v", err)
			}
			local = merged
			ss.MarkApplied(d.ToRevision)
		}
		if ss.Revision() >= puts {
			break
		}
		select {
		case err := <-pushDone:
			if err != nil {
				t.Fatal(err)
			}
			pushDone = nil // keep looping until the stream catches up
		case <-deadline:
			t.Fatalf("stream never converged: at revision %d of %d (stats %+v)",
				ss.Revision(), puts, ss.Stats())
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	<-runDone

	if local == nil {
		t.Fatal("no template assembled from the stream")
	}
	viol := 0
	for _, st := range local.States {
		if st.Label == statespace.Violation.String() {
			viol++
		}
	}
	// The base template has one violation; the pushers added four distinct
	// new ones (i = 0, 5, 10, 15).
	if viol < 5 {
		t.Fatalf("local template has %d violation states, want >= 5 (states %d)", viol, len(local.States))
	}
	if got, want := ss.Revision(), puts; got != want {
		t.Fatalf("final revision = %d, want %d", got, want)
	}
}
