// Package fleet is the HTTP control plane that lets Stay-Away hosts share
// learned state-space templates (§6 scaled from one host to a fleet): a
// JSON API server fronting the template registry, and a client with
// timeouts, retry/backoff, and graceful degradation — when the registry is
// unreachable a daemon keeps controlling from its local map and resyncs
// once the registry recovers.
package fleet

import (
	"time"

	"repro/internal/statespace"
)

// Heartbeat is one host's periodic liveness/status report.
type Heartbeat struct {
	// Host identifies the reporting host.
	Host string `json:"host"`
	// App is the sensitive application the host protects.
	App string `json:"app,omitempty"`
	// Periods is the host's monitoring-period count so far.
	Periods int `json:"periods"`
	// Violations is the host's QoS-violation count so far.
	Violations int `json:"violations"`
	// Throttled reports whether the host's batch applications are
	// currently paused.
	Throttled bool `json:"throttled"`
	// TemplateRevision is the registry revision the host last synced,
	// 0 when it runs on a purely local map.
	TemplateRevision int `json:"template_revision,omitempty"`
}

// PutTemplateResponse acknowledges an accepted template upload.
type PutTemplateResponse struct {
	// Revision is the consensus template's new revision.
	Revision int `json:"revision"`
	// States and ViolationStates describe the merged consensus map.
	States          int `json:"states"`
	ViolationStates int `json:"violation_states"`
	// Hosts is the number of distinct contributing hosts.
	Hosts int `json:"hosts"`
}

// HostStatus is one host's last-known state in the fleet status report.
type HostStatus struct {
	Host             string    `json:"host"`
	App              string    `json:"app,omitempty"`
	Periods          int       `json:"periods"`
	Violations       int       `json:"violations"`
	Throttled        bool      `json:"throttled"`
	TemplateRevision int       `json:"template_revision,omitempty"`
	LastSeen         time.Time `json:"last_seen"`
}

// TemplateStatus summarizes one stored consensus template.
type TemplateStatus struct {
	App             string    `json:"app"`
	Schema          string    `json:"schema"`
	Revision        int       `json:"revision"`
	States          int       `json:"states"`
	ViolationStates int       `json:"violation_states"`
	Hosts           int       `json:"hosts"`
	UpdatedAt       time.Time `json:"updated_at"`
}

// TemplateEntry is one consensus template in the list-all feed: the
// TemplateStatus metadata plus (unless meta-only was requested) the full
// template body.
type TemplateEntry struct {
	App             string               `json:"app"`
	Schema          string               `json:"schema"`
	Revision        int                  `json:"revision"`
	States          int                  `json:"states"`
	ViolationStates int                  `json:"violation_states"`
	Hosts           int                  `json:"hosts"`
	UpdatedAt       time.Time            `json:"updated_at"`
	Template        *statespace.Template `json:"template,omitempty"`
}

// ListTemplatesResponse is the list-all feed served at GET /v1/templates —
// what an interference-aware scheduler pulls to score co-locations for
// every sensitive application at once.
type ListTemplatesResponse struct {
	Templates []TemplateEntry `json:"templates"`
}

// StatusResponse is the fleet-wide summary served at /v1/status.
type StatusResponse struct {
	Hosts     []HostStatus     `json:"hosts"`
	Templates []TemplateStatus `json:"templates"`
	// ThrottledHosts counts hosts currently throttling their batch load.
	ThrottledHosts int `json:"throttled_hosts"`
}

// StreamUpdate is the payload of one delta event on the template stream:
// which consensus template changed, the revision the delta brings a
// subscriber to, and the delta itself.
type StreamUpdate struct {
	App      string                    `json:"app"`
	Schema   string                    `json:"schema"`
	Revision int                       `json:"revision"`
	Delta    *statespace.TemplateDelta `json:"delta"`
}

// errorResponse is the JSON body of non-2xx replies.
type errorResponse struct {
	Error string `json:"error"`
}
