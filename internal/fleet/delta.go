package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/statespace"
	"repro/internal/stream"
)

// PullDelta performs one conditional sync: the states of app's consensus
// template changed after revision since. A nil delta with a positive
// revision means "already current" (the server answered 304 with no
// body). since <= 0 requests a full template (served as a Full delta).
// A registry that has never seen the app returns ErrNotFound.
func (c *Client) PullDelta(ctx context.Context, app, schema string, since int) (*statespace.TemplateDelta, int, error) {
	var out *statespace.TemplateDelta
	rev := 0
	err := c.do(ctx,
		func() (*http.Request, error) {
			u := c.endpoint("v1", "templates", url.PathEscape(app), "delta")
			q := url.Values{}
			if schema != "" {
				q.Set("schema", schema)
			}
			if since > 0 {
				q.Set("since", strconv.Itoa(since))
			}
			if len(q) > 0 {
				u += "?" + q.Encode()
			}
			req, err := http.NewRequest(http.MethodGet, u, nil)
			if err != nil {
				return nil, err
			}
			c.sign(req, nil)
			return req, nil
		},
		func(resp *http.Response) error {
			rev, _ = strconv.Atoi(resp.Header.Get(revisionHeader))
			if resp.StatusCode == http.StatusNotModified {
				return nil
			}
			d, err := statespace.ReadTemplateDelta(io.LimitReader(resp.Body, maxTemplateBytes))
			if err != nil {
				return fmt.Errorf("fleet: pulled delta: %w", err)
			}
			out = d
			return nil
		})
	if err != nil {
		var herr *httpError
		if errors.As(err, &herr) && herr.Status == http.StatusNotFound {
			return nil, 0, ErrNotFound
		}
		return nil, 0, err
	}
	return out, rev, nil
}

// StreamEvents subscribes to the server-push template stream and invokes
// onEvent for every event until the stream ends or onEvent errors. app,
// when non-empty, narrows the feed server-side. lastID resumes a dropped
// subscription; for delta events, up carries the decoded, validated
// update (nil for heartbeats and resets — a reset means the resume
// position is gone and the caller must resync before trusting later
// deltas).
//
// The connection has no overall deadline — callers police liveness with
// the heartbeat events and cancel ctx when the stream goes quiet. The
// returned resume token is the ID of the last delta event processed
// (empty after a reset); pass it as lastID on reconnect.
func (c *Client) StreamEvents(ctx context.Context, app, lastID string, onEvent func(ev stream.Event, up *StreamUpdate) error) (string, error) {
	u := c.endpoint("v1", "events")
	if app != "" {
		u += "?app=" + url.QueryEscape(app)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return lastID, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	c.sign(req, nil)
	resp, err := c.streamHTTP.Do(req)
	if err != nil {
		return lastID, fmt.Errorf("fleet: connect event stream: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		herr := &httpError{Status: resp.StatusCode}
		var body errorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body) == nil {
			herr.Msg = body.Error
		}
		return lastID, herr
	}

	dec := stream.NewDecoder(resp.Body)
	for {
		ev, err := dec.Next()
		if err != nil {
			if ctx.Err() != nil {
				return lastID, ctx.Err()
			}
			if err == io.EOF {
				return lastID, nil
			}
			return lastID, fmt.Errorf("fleet: event stream: %w", err)
		}
		var up *StreamUpdate
		switch ev.Type {
		case stream.TypeDelta:
			up = &StreamUpdate{}
			if err := json.Unmarshal(ev.Data, up); err != nil {
				return lastID, fmt.Errorf("fleet: decode stream update: %w", err)
			}
			if up.Delta != nil {
				if err := up.Delta.Validate(); err != nil {
					return lastID, fmt.Errorf("fleet: streamed delta: %w", err)
				}
			}
			lastID = ev.ID()
		case stream.TypeReset:
			lastID = ""
		}
		if err := onEvent(ev, up); err != nil {
			return lastID, err
		}
	}
}
