package workload

import (
	"fmt"
	"math"
)

// Config assembles an open-loop Engine.
type Config struct {
	// Process generates arrivals. Required.
	Process Process
	// QueueCap bounds the request queue; overflow is shed and counted
	// against the SLO at DropPenalty. <= 0 defaults to 10000.
	QueueCap float64
	// CPUPerRequest converts service capacity (effective CPU,
	// percent-of-core × tick) into requests served. Required, > 0.
	CPUPerRequest float64
	// MaxConcurrency caps how many requests the service can work on per
	// tick regardless of queue depth — the worker-pool size. It bounds
	// both CPU demand and drain rate. <= 0 defaults to QueueCap.
	MaxConcurrency float64
	// TargetLatency is the SLO latency bound in ticks (a request served in
	// its arrival tick has latency 1). <= 0 defaults to 3.
	TargetLatency float64
	// Percentile is the SLO quantile (0.95, 0.99, …). <= 0 defaults to 0.99.
	Percentile float64
	// WindowTicks is how many ticks of completions the percentile is
	// computed over. <= 0 defaults to 40.
	WindowTicks int
	// Threshold is the QoS violation threshold: QoS value is
	// min(1, TargetLatency/pXX) and a value below Threshold is a
	// violation. <= 0 defaults to 0.95.
	Threshold float64
	// DropPenalty is the latency charged for a shed request. <= 0
	// defaults to 5 × TargetLatency.
	DropPenalty float64
}

func (c *Config) applyDefaults() error {
	if c.Process == nil {
		return fmt.Errorf("workload: Config.Process required")
	}
	if c.CPUPerRequest <= 0 {
		return fmt.Errorf("workload: CPUPerRequest must be positive, got %v", c.CPUPerRequest)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 10000
	}
	if c.MaxConcurrency <= 0 {
		c.MaxConcurrency = c.QueueCap
	}
	if c.TargetLatency <= 0 {
		c.TargetLatency = 3
	}
	if c.Percentile <= 0 {
		c.Percentile = 0.99
	}
	if c.WindowTicks <= 0 {
		c.WindowTicks = 40
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.95
	}
	if c.DropPenalty <= 0 {
		c.DropPenalty = 5 * c.TargetLatency
	}
	return nil
}

// Stats is one tick's observable queue state.
type Stats struct {
	// Depth is the backlog after serving.
	Depth float64
	// OldestAge is the oldest waiting request's age in ticks.
	OldestAge float64
	// PercentileLatency is the SLO quantile over the completion window,
	// censored by the waiting backlog.
	PercentileLatency float64
	// Arrived, Served, Dropped are this tick's counts.
	Arrived float64
	Served  float64
	Dropped float64
	// TotalArrived, TotalServed, TotalDropped are cumulative.
	TotalArrived float64
	TotalServed  float64
	TotalDropped float64
}

// Engine is the open-loop request loop for one service: arrivals keep
// coming (even while the host has the container frozen), queue in a
// bounded buffer, and are served at whatever rate the granted CPU allows.
// QoS is the percentile latency against the SLO target — a signal with
// memory: it degrades while throttled and recovers only as the backlog
// drains.
//
// Call BeginTick to ingest arrivals and obtain the tick's CPU demand, then
// EndTick with the requests actually served. Ticks may be skipped (a
// frozen container's app is never invoked); BeginTick catches up the
// arrival process over the gap, which is exactly the open-loop property —
// demand does not pause because the service did.
type Engine struct {
	cfg    Config
	queue  *Queue
	window *Window

	nextTick int
	started  bool

	lastStats Stats
	lastValue float64
}

// NewEngine validates cfg and returns an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:       cfg,
		queue:     NewQueue(cfg.QueueCap),
		window:    NewWindow(cfg.WindowTicks),
		lastValue: 1,
	}, nil
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Queue exposes the underlying queue (read-mostly; chain stages share it).
func (e *Engine) Queue() *Queue { return e.queue }

// BeginTick ingests arrivals for every tick since the last call through
// tick (inclusive) and returns the CPU demand required to work the
// backlog at full concurrency.
func (e *Engine) BeginTick(tick int) (demandCPU float64) {
	from := tick
	if e.started && e.nextTick < tick {
		from = e.nextTick // catch up ticks missed while frozen
	}
	var arrived, dropped float64
	for t := from; t <= tick; t++ {
		n := e.cfg.Process.Arrivals(t)
		a, d := e.queue.Push(float64(t), n)
		arrived += a + d
		dropped += d
		if d > 0 {
			// A shed request is an SLO miss; charge it immediately.
			e.window.Add(t, e.cfg.DropPenalty, d)
		}
	}
	e.started = true
	e.nextTick = tick + 1
	e.lastStats.Arrived = arrived
	e.lastStats.Dropped = dropped
	return math.Min(e.queue.Depth(), e.cfg.MaxConcurrency) * e.cfg.CPUPerRequest
}

// EndTick completes the tick: served requests (already converted from the
// grant by the caller, capped at MaxConcurrency) drain the queue and their
// latencies enter the SLO window.
func (e *Engine) EndTick(tick int, served float64) Stats {
	served = math.Min(served, e.cfg.MaxConcurrency)
	e.window.Advance(tick)
	var done float64
	for _, c := range e.queue.Serve(tick, served) {
		e.window.Add(tick, c.Latency, c.Count)
		done += c.Count
	}
	st := &e.lastStats
	st.Served = done
	st.Depth = e.queue.Depth()
	st.OldestAge = e.queue.OldestAge(tick)
	st.PercentileLatency = e.percentile(tick)
	st.TotalArrived = e.queue.Arrived()
	st.TotalServed = e.queue.Served()
	st.TotalDropped = e.queue.Dropped()
	e.lastValue = qosFromLatency(e.cfg.TargetLatency, st.PercentileLatency)
	return *st
}

// percentile computes the SLO quantile with the waiting backlog as
// right-censored observations: a request that has already waited a ticks
// will complete with latency ≥ a+1, so it bounds the percentile from
// below even though it has not completed.
func (e *Engine) percentile(tick int) float64 {
	var censored []Completion
	e.queue.WaitingAges(tick, func(age, count float64) {
		censored = append(censored, Completion{Latency: age, Count: count})
	})
	return e.window.Percentile(e.cfg.Percentile, censored)
}

// QoS returns the engine's latency QoS: value = min(1, target/pXX) and
// the violation threshold. Value < threshold is a violation. Before any
// request has been observed the value is 1 (an idle service is healthy).
func (e *Engine) QoS() (value, threshold float64) {
	return e.lastValue, e.cfg.Threshold
}

// Stats returns the most recent tick's stats.
func (e *Engine) Stats() Stats { return e.lastStats }

// qosFromLatency normalizes a percentile latency against the SLO target:
// 1 while at or under target, decaying toward 0 as the percentile grows.
func qosFromLatency(target, pXX float64) float64 {
	if pXX <= 0 || target <= 0 {
		return 1
	}
	v := target / pXX
	if v > 1 {
		return 1
	}
	return v
}
