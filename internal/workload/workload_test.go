package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func TestConstantAndSeries(t *testing.T) {
	if got := Constant(-5).Arrivals(0); got != 0 {
		t.Fatalf("negative constant should clamp to 0, got %v", got)
	}
	if got := Constant(12).Arrivals(99); got != 12 {
		t.Fatalf("constant = %v, want 12", got)
	}
	s := NewSeries([]float64{1, 2, 3})
	if got := s.Arrivals(1); got != 2 {
		t.Fatalf("series[1] = %v, want 2", got)
	}
	if got := s.Arrivals(100); got != 3 {
		t.Fatalf("series past end should hold final value, got %v", got)
	}
	if got := s.Arrivals(-1); got != 1 {
		t.Fatalf("series before start should clamp, got %v", got)
	}
	if got := Series(nil).Arrivals(0); got != 0 {
		t.Fatalf("empty series = %v, want 0", got)
	}
}

func TestPoissonDeterministicAndMeanPreserving(t *testing.T) {
	// nil RNG degrades to the fluid mean.
	p := NewPoisson(Constant(7), nil)
	if got := p.Arrivals(0); got != 7 {
		t.Fatalf("nil-rng poisson = %v, want mean 7", got)
	}
	// Same seed produces the same series.
	a := NewPoisson(Constant(10), rand.New(rand.NewSource(42)))
	b := NewPoisson(Constant(10), rand.New(rand.NewSource(42)))
	var sumA float64
	for i := 0; i < 2000; i++ {
		va, vb := a.Arrivals(i), b.Arrivals(i)
		if va != vb {
			t.Fatalf("tick %d: same seed diverged (%v vs %v)", i, va, vb)
		}
		sumA += va
	}
	if mean := sumA / 2000; math.Abs(mean-10) > 0.5 {
		t.Fatalf("poisson mean drifted: got %v, want ~10", mean)
	}
	// High-λ path (normal approximation) stays near the mean too.
	hi := NewPoisson(Constant(500), rand.New(rand.NewSource(7)))
	var sumHi float64
	for i := 0; i < 2000; i++ {
		sumHi += hi.Arrivals(i)
	}
	if mean := sumHi / 2000; math.Abs(mean-500) > 5 {
		t.Fatalf("high-rate poisson mean drifted: got %v, want ~500", mean)
	}
}

func TestDiurnalCycle(t *testing.T) {
	d := Diurnal{Base: 100, Amplitude: 0.5, PeriodTicks: 24, PeakTick: 12}
	if got := d.Arrivals(12); math.Abs(got-150) > 1e-9 {
		t.Fatalf("peak = %v, want 150", got)
	}
	if got := d.Arrivals(0); math.Abs(got-50) > 1e-9 {
		t.Fatalf("trough = %v, want 50", got)
	}
	if got, want := d.Arrivals(36), d.Arrivals(12); math.Abs(got-want) > 1e-9 {
		t.Fatalf("period should repeat: %v vs %v", got, want)
	}
	flat := Diurnal{Base: 10}
	if got := flat.Arrivals(5); got != 10 {
		t.Fatalf("zero-period diurnal should be flat, got %v", got)
	}
}

func TestFlashCrowdShape(t *testing.T) {
	f := FlashCrowd{Base: 10, Multiplier: 5, StartTick: 100, RampTicks: 10, HoldTicks: 20, DecayTicks: 10}
	if got := f.Arrivals(50); got != 10 {
		t.Fatalf("pre-surge = %v, want base 10", got)
	}
	if got := f.Arrivals(105); math.Abs(got-30) > 1e-9 { // halfway up the ramp
		t.Fatalf("mid-ramp = %v, want 30", got)
	}
	if got := f.Arrivals(115); got != 50 {
		t.Fatalf("hold = %v, want 50", got)
	}
	if got := f.Arrivals(135); math.Abs(got-30) > 1e-9 { // halfway down
		t.Fatalf("mid-decay = %v, want 30", got)
	}
	if got := f.Arrivals(500); got != 10 {
		t.Fatalf("post-surge = %v, want base 10", got)
	}
	// Instantaneous ramp: the peak applies from the start tick.
	step := FlashCrowd{Base: 10, Multiplier: 3, StartTick: 5, HoldTicks: 2}
	if got := step.Arrivals(5); got != 30 {
		t.Fatalf("instant ramp = %v, want 30", got)
	}
}

func TestTraceReplay(t *testing.T) {
	if _, err := NewTraceReplay(nil, 1, 1); err == nil {
		t.Fatal("empty trace should error")
	}
	pts := []trace.Point{{Rate: 100}, {Rate: 200}}
	if _, err := NewTraceReplay(pts, 0, 1); err == nil {
		t.Fatal("non-positive scale should error")
	}
	r, err := NewTraceReplay(pts, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Ticks(); got != 6 {
		t.Fatalf("Ticks = %d, want 6", got)
	}
	if got := r.Arrivals(2); got != 50 {
		t.Fatalf("sample 0 = %v, want 50", got)
	}
	if got := r.Arrivals(3); got != 100 {
		t.Fatalf("sample 1 = %v, want 100", got)
	}
	if got := r.Arrivals(999); got != 100 {
		t.Fatalf("past end should hold last rate, got %v", got)
	}
}

func TestQueueFIFOAndLatency(t *testing.T) {
	q := NewQueue(0)
	q.Push(0, 4)
	q.Push(1, 4)
	comps := q.Serve(1, 6)
	if len(comps) != 2 {
		t.Fatalf("expected 2 cohorts served, got %d", len(comps))
	}
	if comps[0].Latency != 2 || comps[0].Count != 4 {
		t.Fatalf("oldest cohort: latency %v count %v, want 2 and 4", comps[0].Latency, comps[0].Count)
	}
	if comps[1].Latency != 1 || comps[1].Count != 2 {
		t.Fatalf("newer cohort: latency %v count %v, want 1 and 2", comps[1].Latency, comps[1].Count)
	}
	if got := q.Depth(); got != 2 {
		t.Fatalf("depth after serve = %v, want 2", got)
	}
	if got := q.OldestAge(3); got != 2 {
		t.Fatalf("oldest age = %v, want 2", got)
	}
}

func TestQueueCapacityShedding(t *testing.T) {
	q := NewQueue(10)
	adm, drop := q.Push(0, 8)
	if adm != 8 || drop != 0 {
		t.Fatalf("first push: admitted %v dropped %v", adm, drop)
	}
	adm, drop = q.Push(1, 5)
	if adm != 2 || drop != 3 {
		t.Fatalf("overflow push: admitted %v dropped %v, want 2 and 3", adm, drop)
	}
	if q.Dropped() != 3 || q.Arrived() != 13 {
		t.Fatalf("cumulative: dropped %v arrived %v", q.Dropped(), q.Arrived())
	}
}

func TestQueueSameBirthMerges(t *testing.T) {
	q := NewQueue(0)
	for i := 0; i < 100; i++ {
		q.Push(5, 1)
	}
	var cohorts int
	q.WaitingAges(5, func(age, count float64) {
		cohorts++
		if count != 100 {
			t.Fatalf("merged cohort count = %v, want 100", count)
		}
	})
	if cohorts != 1 {
		t.Fatalf("same-birth pushes should merge into one cohort, got %d", cohorts)
	}
}

func TestWindowPercentile(t *testing.T) {
	w := NewWindow(10)
	w.Add(0, 1, 99)
	w.Add(0, 50, 1)
	if got := w.Percentile(0.95, nil); got != 1 {
		t.Fatalf("p95 = %v, want 1", got)
	}
	if got := w.Percentile(0.999, nil); got != 50 {
		t.Fatalf("p99.9 = %v, want 50", got)
	}
	// Censored backlog raises the percentile even with no completions.
	empty := NewWindow(10)
	if got := empty.Percentile(0.99, []Completion{{Latency: 20, Count: 5}}); got != 20 {
		t.Fatalf("censored-only p99 = %v, want 20", got)
	}
	if got := empty.Percentile(0.99, nil); got != 0 {
		t.Fatalf("empty window = %v, want 0", got)
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(5)
	w.Add(0, 100, 10)
	w.Add(3, 1, 10)
	if got := w.Count(); got != 20 {
		t.Fatalf("count = %v, want 20", got)
	}
	w.Advance(6) // tick 0 entry is now 6 ticks old, outside a 5-tick window
	if got := w.Count(); got != 10 {
		t.Fatalf("count after eviction = %v, want 10", got)
	}
	if got := w.Percentile(0.99, nil); got != 1 {
		t.Fatalf("p99 after eviction = %v, want 1", got)
	}
}

func TestEngineSteadyStateHealthy(t *testing.T) {
	e, err := NewEngine(Config{Process: Constant(10), CPUPerRequest: 2, MaxConcurrency: 20})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 50; tick++ {
		demand := e.BeginTick(tick)
		if tick > 0 && demand != 20 { // 10 queued × 2 CPU each
			t.Fatalf("tick %d: demand = %v, want 20", tick, demand)
		}
		e.EndTick(tick, demand/2) // full grant
	}
	v, thr := e.QoS()
	if v != 1 {
		t.Fatalf("steady-state QoS = %v, want 1", v)
	}
	if thr != 0.95 {
		t.Fatalf("default threshold = %v, want 0.95", thr)
	}
	st := e.Stats()
	if st.Depth != 0 {
		t.Fatalf("steady-state depth = %v, want 0", st.Depth)
	}
	if st.PercentileLatency != 1 {
		t.Fatalf("steady-state p99 = %v, want 1", st.PercentileLatency)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := NewEngine(Config{CPUPerRequest: 1}); err == nil {
		t.Fatal("missing process should error")
	}
	if _, err := NewEngine(Config{Process: Constant(1)}); err == nil {
		t.Fatal("missing CPUPerRequest should error")
	}
}

// TestEngineFreezeThawDrainRecovery is the satellite-required behavior: a
// freeze stalls service while arrivals continue, so on thaw the QoS is
// violated (the backlog's queueing delay) and only recovers after the
// window slides past the drain — the signal with memory that closed-loop
// grant-ratio QoS cannot produce.
func TestEngineFreezeThawDrainRecovery(t *testing.T) {
	e, err := NewEngine(Config{
		Process:        Constant(10),
		CPUPerRequest:  1,
		MaxConcurrency: 40,
		TargetLatency:  3,
		WindowTicks:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	serve := func(tick int) float64 {
		demand := e.BeginTick(tick)
		e.EndTick(tick, demand) // CPUPerRequest=1: grant == requests
		v, _ := e.QoS()
		return v
	}
	for tick := 0; tick < 20; tick++ {
		if v := serve(tick); v != 1 {
			t.Fatalf("pre-freeze tick %d: QoS = %v, want 1", tick, v)
		}
	}
	// Ticks 20..34 the container is frozen: no BeginTick/EndTick calls at
	// all, but the arrival process does not pause.
	thaw := 35
	vThaw := serve(thaw)
	if vThaw >= 0.95 {
		t.Fatalf("post-thaw QoS = %v, want violation (< 0.95): the 150-request backlog has 15 ticks of queueing delay", vThaw)
	}
	st := e.Stats()
	if want := float64(thaw+1) * 10; st.TotalArrived != want {
		t.Fatalf("arrivals during freeze were lost: total %v, want %v", st.TotalArrived, want)
	}
	// With MaxConcurrency 40 vs arrival rate 10, the backlog drains at 30
	// requests/tick; after the drain plus a window's worth of ticks the
	// QoS must be fully recovered.
	recovered := -1
	for tick := thaw + 1; tick < thaw+40; tick++ {
		if v := serve(tick); v == 1 && recovered < 0 {
			recovered = tick
		}
	}
	if recovered < 0 {
		t.Fatal("QoS never recovered after backlog drain")
	}
	if e.Stats().Depth != 0 {
		t.Fatalf("backlog should be drained, depth = %v", e.Stats().Depth)
	}
}

func TestEngineCensoredStarvationDegradesQoS(t *testing.T) {
	// A fully starved engine (zero grant) must show degraded QoS even
	// though no starved request ever completes.
	e, err := NewEngine(Config{Process: Constant(10), CPUPerRequest: 1, TargetLatency: 3})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 10; tick++ {
		e.BeginTick(tick)
		e.EndTick(tick, 0)
	}
	v, _ := e.QoS()
	if v >= 0.95 {
		t.Fatalf("starved QoS = %v, want violation from censored backlog", v)
	}
	if e.Stats().PercentileLatency < 9 {
		t.Fatalf("censored p99 = %v, want ≥ 9 (oldest cohort age)", e.Stats().PercentileLatency)
	}
}

func TestEngineDropPenaltyCountsAgainstSLO(t *testing.T) {
	e, err := NewEngine(Config{
		Process:       Constant(100),
		CPUPerRequest: 1,
		QueueCap:      50,
		TargetLatency: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.BeginTick(0)
	st := e.EndTick(0, 0)
	if st.Dropped != 50 {
		t.Fatalf("dropped = %v, want 50", st.Dropped)
	}
	if v, _ := e.QoS(); v >= 0.95 {
		t.Fatalf("QoS with 50%% sheds = %v, want violation", v)
	}
}

func TestChainEndToEndLatency(t *testing.T) {
	c, err := NewChain(ChainConfig{
		Process: Constant(10),
		Stages: []StageConfig{
			{CPUPerRequest: 1, MaxConcurrency: 40},
			{CPUPerRequest: 2, MaxConcurrency: 40},
			{CPUPerRequest: 1, MaxConcurrency: 40},
		},
		TargetLatency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var st ChainStats
	for tick := 0; tick < 30; tick++ {
		c.BeginTick(tick)
		for i := 0; i < c.NumStages(); i++ {
			demand := c.StageDemand(i)
			c.ServeStage(i, tick, demand/c.Config().Stages[i].CPUPerRequest)
		}
		st = c.EndTick(tick)
	}
	// Fully granted, the pipeline settles at 1 tick per stage... but each
	// stage serves in the same tick the work arrives (demand recomputed
	// per stage), so end-to-end latency is 1–3 ticks depending on hop
	// timing. It must be within the 4-tick SLO.
	if v, _ := c.QoS(); v != 1 {
		t.Fatalf("fully-granted chain QoS = %v (p99 %v), want 1", v, st.PercentileLatency)
	}
	if st.TotalServed < 250 {
		t.Fatalf("chain throughput too low: served %v of %v", st.TotalServed, st.TotalArrived)
	}
}

func TestChainBottleneckStageDegradesEndToEnd(t *testing.T) {
	c, err := NewChain(ChainConfig{
		Process: Constant(10),
		Stages: []StageConfig{
			{CPUPerRequest: 1, MaxConcurrency: 40},
			{CPUPerRequest: 1, MaxConcurrency: 40},
		},
		TargetLatency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 40; tick++ {
		c.BeginTick(tick)
		// Stage 0 fully granted; stage 1 throttled to half the arrival rate.
		c.ServeStage(0, tick, c.StageDemand(0))
		c.ServeStage(1, tick, 5)
		c.EndTick(tick)
	}
	if v, _ := c.QoS(); v >= 0.95 {
		t.Fatalf("bottlenecked chain QoS = %v, want violation", v)
	}
	st := c.Stats()
	if st.StageDepths[1] < 100 {
		t.Fatalf("bottleneck backlog should accumulate at stage 1, depths %v", st.StageDepths)
	}
	if st.StageDepths[0] > 1 {
		t.Fatalf("stage 0 should stay drained, depths %v", st.StageDepths)
	}
}

func TestChainValidation(t *testing.T) {
	if _, err := NewChain(ChainConfig{Stages: []StageConfig{{CPUPerRequest: 1}}}); err == nil {
		t.Fatal("missing process should error")
	}
	if _, err := NewChain(ChainConfig{Process: Constant(1)}); err == nil {
		t.Fatal("zero stages should error")
	}
	if _, err := NewChain(ChainConfig{Process: Constant(1), Stages: []StageConfig{{}}}); err == nil {
		t.Fatal("stage without CPUPerRequest should error")
	}
}

// BenchmarkReplayWeek measures raw engine throughput replaying a week of
// diurnal load at one tick per trace sample — the per-tick cost that
// bounds how fast the scenario zoo can replay multi-day traces.
func BenchmarkReplayWeek(b *testing.B) {
	cfg := trace.Config{Days: 7, SamplesPerHour: 60, BaseRate: 1000, DailyAmplitude: 0.6}
	pts, err := trace.Generate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		replay, err := NewTraceReplay(pts, 0.05, 1)
		if err != nil {
			b.Fatal(err)
		}
		e, err := NewEngine(Config{Process: replay, CPUPerRequest: 1, MaxConcurrency: 100})
		if err != nil {
			b.Fatal(err)
		}
		for tick := 0; tick < replay.Ticks(); tick++ {
			demand := e.BeginTick(tick)
			e.EndTick(tick, demand*0.9) // mild perpetual shortfall keeps the queue busy
		}
	}
}
