package workload

import "math"

// cohort is a group of requests that entered the system during the same
// tick. Requests are fluid: counts may be fractional.
type cohort struct {
	// birth is the tick the requests entered the system. For chain stages
	// past the head this is the tick the request entered the *chain*, so
	// end-to-end latency survives forwarding.
	birth float64
	count float64
}

// Completion is a served cohort: count requests that waited latency ticks
// from arrival through completion (inclusive; same-tick service is
// latency 1).
type Completion struct {
	Birth   float64
	Count   float64
	Latency float64
}

// Queue is a bounded FIFO of request cohorts. Arrivals beyond the capacity
// are dropped (load shedding at the listen backlog); service drains the
// oldest cohorts first.
type Queue struct {
	capacity float64
	cohorts  []cohort
	depth    float64

	arrived float64
	dropped float64
	served  float64
}

// NewQueue returns a queue holding at most capacity requests;
// capacity <= 0 means unbounded.
func NewQueue(capacity float64) *Queue {
	return &Queue{capacity: capacity}
}

// Depth returns the number of queued requests.
func (q *Queue) Depth() float64 { return q.depth }

// Arrived, Dropped and Served return cumulative totals.
func (q *Queue) Arrived() float64 { return q.arrived }
func (q *Queue) Dropped() float64 { return q.dropped }
func (q *Queue) Served() float64  { return q.served }

// OldestAge returns how many ticks the oldest queued request has been
// waiting as of tick (0 when empty).
func (q *Queue) OldestAge(tick int) float64 {
	if len(q.cohorts) == 0 {
		return 0
	}
	return math.Max(0, float64(tick)-q.cohorts[0].birth)
}

// Push enqueues n requests born at the given tick, returning how many were
// admitted and how many were shed at the capacity bound.
func (q *Queue) Push(birth float64, n float64) (admitted, dropped float64) {
	if n <= 0 {
		return 0, 0
	}
	q.arrived += n
	admitted = n
	if q.capacity > 0 && q.depth+n > q.capacity {
		admitted = math.Max(0, q.capacity-q.depth)
		dropped = n - admitted
		q.dropped += dropped
	}
	if admitted > 0 {
		// Same-birth pushes merge so a long replay cannot grow the cohort
		// list beyond the queue's age span.
		if k := len(q.cohorts); k > 0 && q.cohorts[k-1].birth == birth {
			q.cohorts[k-1].count += admitted
		} else {
			q.cohorts = append(q.cohorts, cohort{birth: birth, count: admitted})
		}
		q.depth += admitted
	}
	return admitted, dropped
}

// Serve completes up to n requests at the given tick, oldest first, and
// returns the completed cohorts with their latencies (tick − birth + 1:
// a request served in its arrival tick spent one period in the system).
func (q *Queue) Serve(tick int, n float64) []Completion {
	if n <= 0 || q.depth <= 0 {
		return nil
	}
	var out []Completion
	for n > 0 && len(q.cohorts) > 0 {
		c := &q.cohorts[0]
		take := math.Min(n, c.count)
		out = append(out, Completion{
			Birth:   c.birth,
			Count:   take,
			Latency: float64(tick) - c.birth + 1,
		})
		c.count -= take
		q.depth -= take
		q.served += take
		n -= take
		if c.count <= 1e-9 {
			q.depth -= c.count // absorb fluid residue
			q.cohorts = q.cohorts[1:]
		}
	}
	if q.depth < 0 {
		q.depth = 0
	}
	if len(q.cohorts) == 0 {
		q.cohorts = nil // let the backing array go once drained
	}
	return out
}

// WaitingAges reports the queue's cohorts as (age+1, count) pairs at the
// given tick — the latency each waiting request would see if it completed
// right now. The latency Window uses these as right-censored observations.
func (q *Queue) WaitingAges(tick int, visit func(age, count float64)) {
	for _, c := range q.cohorts {
		visit(float64(tick)-c.birth+1, c.count)
	}
}
