package workload

import (
	"fmt"
	"math"
)

// StageConfig sizes one stage of a service chain.
type StageConfig struct {
	// CPUPerRequest converts this stage's effective CPU into requests
	// processed. Required, > 0.
	CPUPerRequest float64
	// MaxConcurrency caps requests in flight per tick. <= 0 defaults to
	// the chain's queue capacity.
	MaxConcurrency float64
}

// ChainConfig assembles a Chain.
type ChainConfig struct {
	// Process generates arrivals into the first stage. Required.
	Process Process
	// Stages lists the dependent services front to back. Required,
	// at least one.
	Stages []StageConfig
	// QueueCap bounds every stage's queue. <= 0 defaults to 10000.
	QueueCap float64
	// TargetLatency is the end-to-end SLO bound in ticks. <= 0 defaults
	// to 3 × len(Stages) (each stage contributes at least one tick of
	// pipeline latency).
	TargetLatency float64
	// Percentile, WindowTicks, Threshold, DropPenalty mirror Config.
	Percentile  float64
	WindowTicks int
	Threshold   float64
	DropPenalty float64
}

// ChainStats is one tick's view of the whole chain.
type ChainStats struct {
	// Depth is the total backlog across stages.
	Depth float64
	// StageDepths is the per-stage backlog.
	StageDepths []float64
	// OldestAge is the oldest request anywhere in the chain.
	OldestAge float64
	// PercentileLatency is the end-to-end SLO quantile, censored by every
	// stage's waiting backlog.
	PercentileLatency float64
	// TotalArrived, TotalServed, TotalDropped are cumulative; served
	// counts requests that exited the final stage, dropped counts sheds
	// at any stage.
	TotalArrived float64
	TotalServed  float64
	TotalDropped float64
}

// Chain is an open-loop microservice chain: arrivals enter stage 0, each
// stage's completions feed the next stage's queue with the original birth
// tick preserved, and QoS is the percentile of *end-to-end* latency —
// arrival at the chain through exit from the last stage. Throttling any
// one stage therefore degrades the sensitive service's QoS, which is the
// end-to-end framing the C-Koordinator line of work argues for.
//
// Each stage is expected to be driven by its own container: the front
// container calls BeginTick, every stage's container calls StageDemand /
// ServeStage, and the last stage's container calls EndTick. A frozen stage
// simply stops serving; upstream forwards keep queueing into it and
// BeginTick catches up arrivals missed while the front was frozen.
type Chain struct {
	cfg    ChainConfig
	queues []*Queue
	window *Window

	nextTick int
	started  bool

	lastValue float64
	lastStats ChainStats
}

// NewChain validates cfg and returns a chain.
func NewChain(cfg ChainConfig) (*Chain, error) {
	if cfg.Process == nil {
		return nil, fmt.Errorf("workload: ChainConfig.Process required")
	}
	if len(cfg.Stages) == 0 {
		return nil, fmt.Errorf("workload: chain needs at least one stage")
	}
	for i, s := range cfg.Stages {
		if s.CPUPerRequest <= 0 {
			return nil, fmt.Errorf("workload: stage %d CPUPerRequest must be positive, got %v", i, s.CPUPerRequest)
		}
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 10000
	}
	for i := range cfg.Stages {
		if cfg.Stages[i].MaxConcurrency <= 0 {
			cfg.Stages[i].MaxConcurrency = cfg.QueueCap
		}
	}
	if cfg.TargetLatency <= 0 {
		cfg.TargetLatency = 3 * float64(len(cfg.Stages))
	}
	if cfg.Percentile <= 0 {
		cfg.Percentile = 0.99
	}
	if cfg.WindowTicks <= 0 {
		cfg.WindowTicks = 40
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.95
	}
	if cfg.DropPenalty <= 0 {
		cfg.DropPenalty = 5 * cfg.TargetLatency
	}
	queues := make([]*Queue, len(cfg.Stages))
	for i := range queues {
		queues[i] = NewQueue(cfg.QueueCap)
	}
	return &Chain{
		cfg:       cfg,
		queues:    queues,
		window:    NewWindow(cfg.WindowTicks),
		lastValue: 1,
	}, nil
}

// Config returns the chain's effective (defaulted) configuration.
func (c *Chain) Config() ChainConfig { return c.cfg }

// NumStages returns the number of stages.
func (c *Chain) NumStages() int { return len(c.cfg.Stages) }

// BeginTick ingests arrivals into the first stage for every tick since the
// last call through tick (inclusive), shedding at the queue bound.
func (c *Chain) BeginTick(tick int) {
	from := tick
	if c.started && c.nextTick < tick {
		from = c.nextTick
	}
	for t := from; t <= tick; t++ {
		n := c.cfg.Process.Arrivals(t)
		_, d := c.queues[0].Push(float64(t), n)
		if d > 0 {
			c.window.Add(t, c.cfg.DropPenalty, d)
		}
	}
	c.started = true
	c.nextTick = tick + 1
}

// StageDemand returns stage i's CPU demand: enough to work its backlog at
// full concurrency.
func (c *Chain) StageDemand(i int) float64 {
	s := c.cfg.Stages[i]
	return math.Min(c.queues[i].Depth(), s.MaxConcurrency) * s.CPUPerRequest
}

// ServeStage completes up to served requests at stage i. Completions
// forward into stage i+1's queue with their original birth tick, so
// end-to-end latency survives the hop; final-stage completions enter the
// SLO window. Returns the number of requests processed.
func (c *Chain) ServeStage(i int, tick int, served float64) float64 {
	served = math.Min(served, c.cfg.Stages[i].MaxConcurrency)
	var done float64
	for _, comp := range c.queues[i].Serve(tick, served) {
		done += comp.Count
		if i+1 < len(c.queues) {
			_, d := c.queues[i+1].Push(comp.Birth, comp.Count)
			if d > 0 {
				c.window.Add(tick, c.cfg.DropPenalty, d)
			}
		} else {
			c.window.Add(tick, comp.Latency, comp.Count)
		}
	}
	return done
}

// StageDepth returns stage i's current backlog.
func (c *Chain) StageDepth(i int) float64 { return c.queues[i].Depth() }

// StageOldestAge returns how long stage i's oldest request has waited in
// the chain as of tick.
func (c *Chain) StageOldestAge(i, tick int) float64 { return c.queues[i].OldestAge(tick) }

// EndTick closes the tick: the end-to-end percentile is recomputed with
// every stage's waiting backlog as right-censored observations. Call after
// all stages have served.
func (c *Chain) EndTick(tick int) ChainStats {
	c.window.Advance(tick)
	var censored []Completion
	st := ChainStats{StageDepths: make([]float64, len(c.queues))}
	var arrived, served, dropped float64
	for i, q := range c.queues {
		q.WaitingAges(tick, func(age, count float64) {
			censored = append(censored, Completion{Latency: age, Count: count})
		})
		st.StageDepths[i] = q.Depth()
		st.Depth += q.Depth()
		st.OldestAge = math.Max(st.OldestAge, q.OldestAge(tick))
		dropped += q.Dropped()
	}
	arrived = c.queues[0].Arrived()
	served = c.queues[len(c.queues)-1].Served()
	st.TotalArrived = arrived
	st.TotalServed = served
	st.TotalDropped = dropped
	st.PercentileLatency = c.window.Percentile(c.cfg.Percentile, censored)
	c.lastValue = qosFromLatency(c.cfg.TargetLatency, st.PercentileLatency)
	c.lastStats = st
	return st
}

// QoS returns the chain's end-to-end latency QoS value and violation
// threshold. Value < threshold is a violation.
func (c *Chain) QoS() (value, threshold float64) {
	return c.lastValue, c.cfg.Threshold
}

// Stats returns the most recent EndTick's stats.
func (c *Chain) Stats() ChainStats { return c.lastStats }
