package workload

import "sort"

// Window is a sliding window over completion latencies, weighted by
// request count. Percentiles are computed over the retained completions
// plus any right-censored observations the caller adds for requests still
// waiting (their eventual latency is at least their current age), so a
// starved queue degrades the percentile before a single starved request
// completes.
type Window struct {
	ticks   int
	entries []windowEntry
}

type windowEntry struct {
	tick    int
	latency float64
	count   float64
}

// NewWindow returns a window retaining completions from the last ticks
// ticks (minimum 1).
func NewWindow(ticks int) *Window {
	if ticks < 1 {
		ticks = 1
	}
	return &Window{ticks: ticks}
}

// Add records count completions with the given latency at tick, evicting
// entries that have slid out of the window. Ticks must be nondecreasing.
func (w *Window) Add(tick int, latency, count float64) {
	if count <= 0 {
		return
	}
	w.evict(tick)
	w.entries = append(w.entries, windowEntry{tick: tick, latency: latency, count: count})
}

// Advance evicts expired entries without adding anything — call once per
// tick so quiet periods age out stale completions.
func (w *Window) Advance(tick int) { w.evict(tick) }

func (w *Window) evict(tick int) {
	cut := 0
	for cut < len(w.entries) && w.entries[cut].tick <= tick-w.ticks {
		cut++
	}
	if cut > 0 {
		w.entries = append(w.entries[:0], w.entries[cut:]...)
	}
}

// Count returns the total weighted completions retained.
func (w *Window) Count() float64 {
	var n float64
	for _, e := range w.entries {
		n += e.count
	}
	return n
}

// Percentile returns the p-quantile (p in (0,1], e.g. 0.99) of the
// retained latencies plus the censored extras, weighted by count. An empty
// window with no extras returns 0.
func (w *Window) Percentile(p float64, extra []Completion) float64 {
	type wl struct{ latency, count float64 }
	items := make([]wl, 0, len(w.entries)+len(extra))
	var total float64
	for _, e := range w.entries {
		items = append(items, wl{e.latency, e.count})
		total += e.count
	}
	for _, e := range extra {
		if e.Count > 0 {
			items = append(items, wl{e.Latency, e.Count})
			total += e.Count
		}
	}
	if total <= 0 {
		return 0
	}
	if p <= 0 {
		p = 0.5
	}
	if p > 1 {
		p = 1
	}
	sort.Slice(items, func(i, j int) bool { return items[i].latency < items[j].latency })
	target := p * total
	var cum float64
	for _, it := range items {
		cum += it.count
		if cum >= target-1e-12 {
			return it.latency
		}
	}
	return items[len(items)-1].latency
}
