// Package workload models open-loop load: requests arrive according to an
// arrival process whether or not the service can absorb them, queue in a
// bounded buffer, and experience queueing delay that — not the momentary
// service rate — is what a latency SLO is about.
//
// The paper's evaluation drives closed-loop workloads whose QoS is the
// instantaneous grant/demand ratio; at scale the load is open-loop, so a
// freeze that looks cheap instantaneously can blow a latency SLO minutes
// later while the backlog drains. This package provides the pieces the
// apps and experiments layers compose:
//
//   - arrival processes (constant, replayed series/trace, Poisson,
//     diurnal, flash-crowd);
//   - a bounded FIFO Queue of request cohorts with per-tick latency
//     accounting;
//   - a sliding latency Window with weighted percentiles, right-censored
//     by the waiting backlog so starvation degrades the percentile even
//     before any starved request completes;
//   - an open-loop Engine translating granted service into completions and
//     a percentile-latency QoS (p95/p99 vs a target);
//   - a Chain of dependent stages whose QoS is the end-to-end latency
//     across every stage's queue (the microservice framing).
//
// Everything is deterministic under a caller-provided *rand.Rand: the
// package is covered by the repo's determinism analyzer (no wall clock, no
// global rand, no map-ordered output), which is what lets the scenario zoo
// replay multi-day traces reproducibly in CI.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/trace"
)

// Process generates request arrivals. Arrivals returns the number of
// requests arriving during the given tick; fractional values are allowed
// (the queue is a fluid approximation). Implementations must be
// deterministic for a fixed construction (same seed ⇒ same series) but may
// assume ticks are visited in nondecreasing order.
type Process interface {
	Arrivals(tick int) float64
}

// Constant is a fixed-rate arrival process.
type Constant float64

// Arrivals implements Process.
func (c Constant) Arrivals(int) float64 { return math.Max(0, float64(c)) }

// Series replays a per-tick rate series, clamping past the end to the
// final value (matching the closed-loop SeriesIntensity convention). An
// empty series yields 0.
type Series []float64

// NewSeries copies rates into a Series process.
func NewSeries(rates []float64) Series { return append(Series(nil), rates...) }

// Arrivals implements Process.
func (s Series) Arrivals(tick int) float64 {
	if len(s) == 0 {
		return 0
	}
	if tick < 0 {
		tick = 0
	}
	if tick >= len(s) {
		tick = len(s) - 1
	}
	return math.Max(0, s[tick])
}

// Poisson draws the per-tick arrival count from a Poisson distribution
// around a mean-rate process — the memoryless arrival model of open-loop
// load generators. A nil RNG degrades to the fluid mean (deterministic).
type Poisson struct {
	mean Process
	rng  *rand.Rand
}

// NewPoisson wraps a mean-rate process with Poisson sampling.
func NewPoisson(mean Process, rng *rand.Rand) *Poisson {
	return &Poisson{mean: mean, rng: rng}
}

// Arrivals implements Process.
func (p *Poisson) Arrivals(tick int) float64 {
	lambda := p.mean.Arrivals(tick)
	if p.rng == nil || lambda <= 0 {
		return lambda
	}
	// Above a modest rate the normal approximation is indistinguishable at
	// SLO percentiles and avoids O(λ) sampling per tick.
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*p.rng.NormFloat64()
		return math.Max(0, math.Round(v))
	}
	// Knuth's product method.
	limit := math.Exp(-lambda)
	k, prod := 0, 1.0
	for prod > limit {
		k++
		prod *= p.rng.Float64()
	}
	return float64(k - 1)
}

// Diurnal is a sinusoidal day/night arrival-rate cycle.
type Diurnal struct {
	// Base is the mean rate (requests/tick).
	Base float64
	// Amplitude is the swing as a fraction of Base, in [0,1].
	Amplitude float64
	// PeriodTicks is the cycle length ("one day") in ticks.
	PeriodTicks int
	// PeakTick is the tick offset (within the period) of maximal load.
	PeakTick int
}

// Arrivals implements Process.
func (d Diurnal) Arrivals(tick int) float64 {
	if d.PeriodTicks <= 0 || d.Base <= 0 {
		return math.Max(0, d.Base)
	}
	phase := 2 * math.Pi * float64(tick-d.PeakTick) / float64(d.PeriodTicks)
	return math.Max(0, d.Base*(1+d.Amplitude*math.Cos(phase)))
}

// FlashCrowd is a baseline rate with one sudden surge: ramp up to
// Multiplier×Base over RampTicks, hold for HoldTicks, decay back over
// DecayTicks — the shape of a viral link or a failover dumping another
// region's traffic onto this service.
type FlashCrowd struct {
	// Base is the pre-surge rate (requests/tick).
	Base float64
	// Multiplier scales Base at the surge peak (≥ 1).
	Multiplier float64
	// StartTick is when the ramp begins.
	StartTick int
	// RampTicks, HoldTicks and DecayTicks shape the surge; non-positive
	// ramp/decay segments are treated as instantaneous.
	RampTicks  int
	HoldTicks  int
	DecayTicks int
}

// Arrivals implements Process.
func (f FlashCrowd) Arrivals(tick int) float64 {
	base := math.Max(0, f.Base)
	mult := math.Max(1, f.Multiplier)
	t := tick - f.StartTick
	switch {
	case t < 0:
		return base
	case t < f.RampTicks:
		frac := float64(t) / float64(f.RampTicks)
		return base * (1 + (mult-1)*frac)
	case t < f.RampTicks+f.HoldTicks:
		return base * mult
	case f.DecayTicks > 0 && t < f.RampTicks+f.HoldTicks+f.DecayTicks:
		frac := float64(t-f.RampTicks-f.HoldTicks) / float64(f.DecayTicks)
		return base * (mult - (mult-1)*frac)
	default:
		return base
	}
}

// TraceReplay drives arrivals from a request-rate trace (trace.Point
// series, e.g. tracegen output read back through trace.ReadCSV). Each
// trace sample spans TicksPerSample ticks; Scale converts the trace's
// requests/second into requests/tick. Past the final sample the last rate
// holds, so a replayed trace behaves like Series.
type TraceReplay struct {
	rates          []float64
	ticksPerSample int
}

// NewTraceReplay builds a replay process. scale converts a trace sample's
// Rate into requests/tick (e.g. tick length in seconds × a fleet-share
// fraction); ticksPerSample stretches each sample over that many ticks
// (minimum 1). An error is returned for an empty trace or non-positive
// scale, so a truncated CSV fails loudly instead of replaying silence.
func NewTraceReplay(points []trace.Point, scale float64, ticksPerSample int) (*TraceReplay, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if scale <= 0 {
		return nil, fmt.Errorf("workload: trace scale must be positive, got %v", scale)
	}
	if ticksPerSample < 1 {
		ticksPerSample = 1
	}
	rates := make([]float64, len(points))
	for i, p := range points {
		rates[i] = math.Max(0, p.Rate*scale)
	}
	return &TraceReplay{rates: rates, ticksPerSample: ticksPerSample}, nil
}

// Ticks returns the replay length in ticks (samples × ticks-per-sample).
func (t *TraceReplay) Ticks() int { return len(t.rates) * t.ticksPerSample }

// Arrivals implements Process.
func (t *TraceReplay) Arrivals(tick int) float64 {
	if tick < 0 {
		tick = 0
	}
	i := tick / t.ticksPerSample
	if i >= len(t.rates) {
		i = len(t.rates) - 1
	}
	return t.rates[i]
}
