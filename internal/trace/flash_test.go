package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

func noiselessFlash() FlashConfig {
	fc := DefaultFlashConfig()
	fc.Base.Noise = 0
	return fc
}

func TestGenerateFlashValidation(t *testing.T) {
	fc := noiselessFlash()
	fc.Multiplier = 0.5
	if _, err := GenerateFlash(fc, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("multiplier < 1 should error")
	}
	fc = noiselessFlash()
	fc.StartHour = -1
	if _, err := GenerateFlash(fc, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("negative start hour should error")
	}
	fc = noiselessFlash()
	fc.Base.Days = 0
	if _, err := GenerateFlash(fc, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid base config should error")
	}
}

func TestGenerateFlashSurge(t *testing.T) {
	fc := noiselessFlash()
	base, err := Generate(fc.Base, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	flash, err := GenerateFlash(fc, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(flash) != len(base) {
		t.Fatalf("flash length %d != base length %d", len(flash), len(base))
	}
	for i, p := range flash {
		h := p.Hour
		ratio := p.Rate / base[i].Rate
		inSurge := h >= fc.StartHour && h < fc.StartHour+fc.RampHours+fc.HoldHours+fc.DecayHours
		if !inSurge {
			if ratio < 0.999 || ratio > 1.001 {
				t.Fatalf("hour %v outside surge: ratio %v, want 1", h, ratio)
			}
			continue
		}
		if ratio < 0.999 || ratio > fc.Multiplier+0.001 {
			t.Fatalf("hour %v in surge: ratio %v outside [1,%v]", h, ratio, fc.Multiplier)
		}
	}
	// The hold phase sits at exactly Multiplier× the baseline.
	holdHour := fc.StartHour + fc.RampHours + fc.HoldHours/2
	for i, p := range flash {
		if p.Hour >= holdHour {
			if ratio := p.Rate / base[i].Rate; ratio < fc.Multiplier-0.001 {
				t.Fatalf("hold phase ratio %v, want %v", ratio, fc.Multiplier)
			}
			break
		}
	}
}

// TestFlashCSVRoundTrip: a generated flash trace survives WriteCSV →
// ReadCSV exactly (the property tracegen consumers depend on).
func TestFlashCSVRoundTrip(t *testing.T) {
	pts, err := GenerateFlash(DefaultFlashConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	again, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(pts) {
		t.Fatalf("round trip changed row count: %d vs %d", len(again), len(pts))
	}
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatalf("row %d changed: %+v vs %+v", i, pts[i], again[i])
		}
	}
}
