package trace

import (
	"fmt"
	"math/rand"
)

// FlashConfig describes a flash-crowd trace: the usual diurnal baseline
// with one superimposed surge — ramp to Multiplier× the baseline over
// RampHours, hold for HoldHours, decay back over DecayHours.
type FlashConfig struct {
	// Base is the underlying diurnal trace.
	Base Config
	// Multiplier scales the baseline at the surge peak; must be ≥ 1.
	Multiplier float64
	// StartHour is the surge onset in hours from the trace start.
	StartHour float64
	// RampHours, HoldHours and DecayHours shape the surge; zero ramp or
	// decay is instantaneous.
	RampHours  float64
	HoldHours  float64
	DecayHours float64
}

// DefaultFlashConfig is the default diurnal trace with a 4× surge on day
// two: a one-hour ramp, two-hour hold, three-hour decay.
func DefaultFlashConfig() FlashConfig {
	return FlashConfig{
		Base:       DefaultConfig(),
		Multiplier: 4,
		StartHour:  30,
		RampHours:  1,
		HoldHours:  2,
		DecayHours: 3,
	}
}

func (c FlashConfig) validate() error {
	if err := c.Base.validate(); err != nil {
		return err
	}
	if c.Multiplier < 1 {
		return fmt.Errorf("trace: flash Multiplier must be ≥ 1, got %v", c.Multiplier)
	}
	if c.StartHour < 0 || c.RampHours < 0 || c.HoldHours < 0 || c.DecayHours < 0 {
		return fmt.Errorf("trace: flash hours must be non-negative: %+v", c)
	}
	return nil
}

// flashEnvelope returns the surge multiplier at hour h.
func (c FlashConfig) flashEnvelope(h float64) float64 {
	t := h - c.StartHour
	switch {
	case t < 0:
		return 1
	case c.RampHours > 0 && t < c.RampHours:
		return 1 + (c.Multiplier-1)*(t/c.RampHours)
	case t < c.RampHours+c.HoldHours:
		return c.Multiplier
	case c.DecayHours > 0 && t < c.RampHours+c.HoldHours+c.DecayHours:
		frac := (t - c.RampHours - c.HoldHours) / c.DecayHours
		return c.Multiplier - (c.Multiplier-1)*frac
	default:
		return 1
	}
}

// GenerateFlash synthesizes a flash-crowd trace: Generate's diurnal series
// with the surge envelope applied.
func GenerateFlash(cfg FlashConfig, rng *rand.Rand) ([]Point, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pts, err := Generate(cfg.Base, rng)
	if err != nil {
		return nil, err
	}
	for i := range pts {
		pts[i].Rate *= cfg.flashEnvelope(pts[i].Hour)
	}
	return pts, nil
}
