// Package trace generates and loads request-rate traces. Figure 1 of the
// paper shows the total read workload of Wikipedia over four days (from
// the public AWS trace): a diurnal pattern with pronounced low-intensity
// valleys. The original trace is not redistributable here, so Generate
// synthesizes an equivalent series — a daily sinusoid with peak/trough
// structure, multiplicative noise, and optional day-to-day drift — and a
// CSV loader accepts the real trace when available. Stay-Away only depends
// on the diurnal shape (the low-utilization valleys it exploits), not on
// exact magnitudes.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
)

// Point is one trace sample.
type Point struct {
	// Hour is the sample's time offset in (possibly fractional) hours.
	Hour float64
	// Rate is the request rate in requests/second.
	Rate float64
}

// Config describes a synthetic diurnal trace.
type Config struct {
	// Days is the trace length in days.
	Days int
	// SamplesPerHour sets resolution.
	SamplesPerHour int
	// BaseRate is the mean request rate (requests/s).
	BaseRate float64
	// DailyAmplitude is the sinusoid amplitude as a fraction of BaseRate
	// (0.5 → rate swings ±50% around the base).
	DailyAmplitude float64
	// PeakHour is the hour-of-day (0–24) of maximal load.
	PeakHour float64
	// Noise is the relative standard deviation of multiplicative noise.
	Noise float64
	// Drift is a per-day relative change in base rate (weekly growth or
	// decay), 0 for a stationary trace.
	Drift float64
}

// DefaultConfig matches Fig 1's visual structure: four days, hourly
// samples, a clear diurnal swing with mid-afternoon peak.
func DefaultConfig() Config {
	return Config{
		Days:           4,
		SamplesPerHour: 1,
		BaseRate:       2600,
		DailyAmplitude: 0.45,
		PeakHour:       14,
		Noise:          0.05,
		Drift:          0,
	}
}

func (c Config) validate() error {
	if c.Days < 1 {
		return fmt.Errorf("trace: Days must be positive, got %d", c.Days)
	}
	if c.SamplesPerHour < 1 {
		return fmt.Errorf("trace: SamplesPerHour must be positive, got %d", c.SamplesPerHour)
	}
	if c.BaseRate <= 0 {
		return fmt.Errorf("trace: BaseRate must be positive, got %v", c.BaseRate)
	}
	if c.DailyAmplitude < 0 || c.DailyAmplitude > 1 {
		return fmt.Errorf("trace: DailyAmplitude must be in [0,1], got %v", c.DailyAmplitude)
	}
	if c.Noise < 0 {
		return fmt.Errorf("trace: Noise must be non-negative, got %v", c.Noise)
	}
	return nil
}

// Generate synthesizes the trace. The result always has
// Days × 24 × SamplesPerHour points and is strictly positive.
func Generate(cfg Config, rng *rand.Rand) ([]Point, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("trace: nil RNG")
	}
	n := cfg.Days * 24 * cfg.SamplesPerHour
	out := make([]Point, n)
	step := 1.0 / float64(cfg.SamplesPerHour)
	for i := 0; i < n; i++ {
		h := float64(i) * step
		day := h / 24
		base := cfg.BaseRate * math.Pow(1+cfg.Drift, day)
		phase := 2 * math.Pi * (math.Mod(h, 24) - cfg.PeakHour) / 24
		rate := base * (1 + cfg.DailyAmplitude*math.Cos(phase))
		rate *= 1 + cfg.Noise*rng.NormFloat64()
		if rate < 1 {
			rate = 1
		}
		out[i] = Point{Hour: h, Rate: rate}
	}
	return out, nil
}

// Normalize maps a trace's rates into [0,1] intensities (min→0, max→1);
// the apps package drives workload intensity with these. A constant trace
// normalizes to all 1s.
func Normalize(points []Point) []float64 {
	if len(points) == 0 {
		return nil
	}
	lo, hi := points[0].Rate, points[0].Rate
	for _, p := range points[1:] {
		lo = math.Min(lo, p.Rate)
		hi = math.Max(hi, p.Rate)
	}
	out := make([]float64, len(points))
	if hi == lo {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	for i, p := range points {
		out[i] = (p.Rate - lo) / (hi - lo)
	}
	return out
}

// WriteCSV writes "hour,rate" rows with a header.
func WriteCSV(w io.Writer, points []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hour", "rate"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, p := range points {
		rec := []string{
			strconv.FormatFloat(p.Hour, 'f', -1, 64),
			strconv.FormatFloat(p.Rate, 'f', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses "hour,rate" rows, tolerating and skipping a header row.
func ReadCSV(r io.Reader) ([]Point, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	var out []Point
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read csv: %w", err)
		}
		h, err1 := strconv.ParseFloat(rec[0], 64)
		rate, err2 := strconv.ParseFloat(rec[1], 64)
		if err1 != nil || err2 != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("trace: bad row %d: %v", line, rec)
		}
		if rate < 0 {
			return nil, fmt.Errorf("trace: negative rate at row %d", line)
		}
		out = append(out, Point{Hour: h, Rate: rate})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: no data rows")
	}
	return out, nil
}
