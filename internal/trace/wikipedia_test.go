package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero days", func(c *Config) { c.Days = 0 }},
		{"zero samples", func(c *Config) { c.SamplesPerHour = 0 }},
		{"zero base", func(c *Config) { c.BaseRate = 0 }},
		{"amplitude > 1", func(c *Config) { c.DailyAmplitude = 1.5 }},
		{"negative noise", func(c *Config) { c.Noise = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := Generate(cfg, rand.New(rand.NewSource(1))); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := Generate(DefaultConfig(), nil); err == nil {
		t.Error("nil RNG should error")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig()
	pts, err := Generate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4*24 {
		t.Fatalf("points = %d, want 96", len(pts))
	}
	for i, p := range pts {
		if p.Rate <= 0 {
			t.Fatalf("non-positive rate at %d: %v", i, p.Rate)
		}
		if i > 0 && p.Hour <= pts[i-1].Hour {
			t.Fatalf("hours not increasing at %d", i)
		}
	}
}

func TestGenerateDiurnalPattern(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Noise = 0 // deterministic shape
	pts, err := Generate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Peak at hour 14, trough at hour 2 (14−12).
	peak := pts[14].Rate
	trough := pts[2].Rate
	if peak <= trough {
		t.Errorf("peak %v should exceed trough %v", peak, trough)
	}
	wantPeak := cfg.BaseRate * (1 + cfg.DailyAmplitude)
	if math.Abs(peak-wantPeak) > 1 {
		t.Errorf("peak = %v, want %v", peak, wantPeak)
	}
	// Day 2 repeats day 1 without drift.
	if math.Abs(pts[14].Rate-pts[14+24].Rate) > 1e-6 {
		t.Errorf("non-stationary without drift: %v vs %v", pts[14].Rate, pts[14+24].Rate)
	}
}

func TestGenerateDrift(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Noise = 0
	cfg.Drift = 0.1
	pts, err := Generate(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if pts[14+24].Rate <= pts[14].Rate {
		t.Errorf("positive drift should grow rates: %v vs %v", pts[14+24].Rate, pts[14].Rate)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := Generate(cfg, rand.New(rand.NewSource(5)))
	b, _ := Generate(cfg, rand.New(rand.NewSource(5)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestNormalize(t *testing.T) {
	pts := []Point{{0, 100}, {1, 300}, {2, 200}}
	got := Normalize(pts)
	want := []float64{0, 1, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := Normalize(nil); got != nil {
		t.Errorf("normalize(nil) = %v", got)
	}
	// Constant trace normalizes to 1s.
	got = Normalize([]Point{{0, 5}, {1, 5}})
	if got[0] != 1 || got[1] != 1 {
		t.Errorf("constant normalize = %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Days = 1
	pts, err := Generate(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(pts) {
		t.Fatalf("parsed %d, want %d", len(parsed), len(pts))
	}
	for i := range pts {
		if math.Abs(parsed[i].Rate-pts[i].Rate) > 1e-9 {
			t.Errorf("row %d rate = %v, want %v", i, parsed[i].Rate, pts[i].Rate)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("hour,rate\n")); err == nil {
		t.Error("header-only input should error")
	}
	if _, err := ReadCSV(strings.NewReader("hour,rate\n1,abc\n")); err == nil {
		t.Error("bad data row should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,-5\n")); err == nil {
		t.Error("negative rate should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2,3\n")); err == nil {
		t.Error("wrong field count should error")
	}
	// Headerless numeric data is accepted.
	pts, err := ReadCSV(strings.NewReader("0,10\n1,20\n"))
	if err != nil || len(pts) != 2 {
		t.Errorf("headerless parse: %v, %v", pts, err)
	}
}
