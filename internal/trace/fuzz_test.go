package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV: the trace parser must never panic and must only accept
// rows it can faithfully round-trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("hour,rate\n0,100\n1,200\n")
	f.Add("0,10\n")
	f.Add("")
	f.Add("garbage")
	f.Add("1,2,3\n")
	f.Add("0,-5\n")
	f.Add("1e309,2\n")
	// Malformed rows past the header: the parser must reject, not panic.
	f.Add("hour,rate\n0,100\nNaN,abc\n")
	f.Add("hour,rate\n\"0,100\n")
	f.Add("hour,rate\n0,100\n1,\n")
	f.Fuzz(func(t *testing.T, input string) {
		pts, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(pts) == 0 {
			t.Fatal("accepted input with zero rows")
		}
		for _, p := range pts {
			if p.Rate < 0 {
				t.Fatalf("accepted negative rate %v", p.Rate)
			}
		}
		// Accepted data must round-trip through WriteCSV.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, pts); err != nil {
			t.Fatalf("write back: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if len(again) != len(pts) {
			t.Fatalf("round trip changed row count: %d vs %d", len(again), len(pts))
		}
	})
}
