package procenv

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzReadProcStat: arbitrary stat file contents (including adversarial
// comm fields full of spaces and parentheses) must never panic the parser.
func FuzzReadProcStat(f *testing.F) {
	f.Add("1 (init) S 0 1 1 0 -1 4194560 0 0 0 0 10 20 0 0 20 0 1 0 1 0 0\n")
	f.Add("7 (a b) c) R 1 1 1 0 -1 0 0 0 0 0 1 2 0 0\n")
	f.Add("")
	f.Add("((((")
	f.Add("9 (x)")
	f.Add("9 (x) R 1 2\n")
	f.Fuzz(func(t *testing.T, content string) {
		root := t.TempDir()
		dir := filepath.Join(root, "5")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := readProcStat(root, 5)
		if err != nil {
			return
		}
		// Accepted stats must carry a plausible state byte.
		if st.State == 0 {
			t.Fatal("accepted stat with zero state byte")
		}
	})
}

// FuzzParsePIDLikeStrings exercises the daemon's PID parsing indirectly
// through the collector's group configuration.
func FuzzCollectorGroupNames(f *testing.F) {
	f.Add("svc")
	f.Add("")
	f.Add(strconv.Itoa(1 << 30))
	f.Fuzz(func(t *testing.T, name string) {
		_, err := NewCollector(t.TempDir(), 100, []Group{{Name: name}})
		if name == "" && err == nil {
			t.Fatal("empty group name accepted")
		}
	})
}
