package procenv

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
)

// HostEnv adapts one shared Sampler to core.HostEnvironment: a
// multi-tenant host samples every co-located group ONCE per period and
// the HostRuntime fans the slice out to its lanes. Per-application
// signals (QoS report, run state) come from Signals handles over the
// same sampler.
type HostEnv struct {
	collector Sampler
	batch     []string
}

var _ core.HostEnvironment = (*HostEnv)(nil)

// NewHostEnv builds the shared side of a multi-tenant environment. The
// batch group names must all exist in the collector; sensitive groups
// are bound later, one Signals handle each.
func NewHostEnv(c Sampler, batchGroups []string) (*HostEnv, error) {
	if c == nil {
		return nil, fmt.Errorf("procenv: nil collector")
	}
	known := map[string]bool{}
	for _, name := range c.GroupNames() {
		known[name] = true
	}
	for _, b := range batchGroups {
		if !known[b] {
			return nil, fmt.Errorf("procenv: batch group %q not in collector", b)
		}
	}
	return &HostEnv{
		collector: c,
		batch:     append([]string(nil), batchGroups...),
	}, nil
}

// Collect implements core.HostEnvironment: one sample pass over every
// group on the host.
func (e *HostEnv) Collect() []metrics.Sample { return e.collector.Sample() }

// BatchRunning implements core.HostEnvironment.
func (e *HostEnv) BatchRunning() bool {
	for _, b := range e.batch {
		if e.collector.GroupRunning(b) {
			return true
		}
	}
	return false
}

// BatchActive implements core.HostEnvironment.
func (e *HostEnv) BatchActive() bool {
	for _, b := range e.batch {
		if e.collector.GroupActive(b) {
			return true
		}
	}
	return false
}

// Signals binds one protected application's lane signals: its group in
// the shared collector plus its own QoS source. The handle implements
// core.LaneSignals and core.QoSFreshness.
func (e *HostEnv) Signals(sensitiveGroup string, qos QoSSource) (*AppSignals, error) {
	if qos == nil {
		return nil, fmt.Errorf("procenv: nil QoS source")
	}
	found := false
	for _, name := range e.collector.GroupNames() {
		if name == sensitiveGroup {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("procenv: sensitive group %q not in collector", sensitiveGroup)
	}
	return &AppSignals{collector: e.collector, group: sensitiveGroup, qos: qos, qosFresh: true}, nil
}

// AppSignals is one application's view of the shared host: its own run
// state and QoS channel. Mirrors Environment's freshness semantics — a
// missing or unparsable report is remembered as silence.
type AppSignals struct {
	collector Sampler
	group     string
	qos       QoSSource
	qosFresh  bool
}

var (
	_ core.LaneSignals  = (*AppSignals)(nil)
	_ core.QoSFreshness = (*AppSignals)(nil)
)

// QoSViolation implements core.LaneSignals.
func (s *AppSignals) QoSViolation() bool {
	if !s.SensitiveRunning() {
		s.qosFresh = true
		return false
	}
	v, t, ok := s.qos.QoS()
	s.qosFresh = ok
	return ok && v < t
}

// SensitiveRunning implements core.LaneSignals.
func (s *AppSignals) SensitiveRunning() bool { return s.collector.GroupRunning(s.group) }

// QoSFresh implements core.QoSFreshness.
func (s *AppSignals) QoSFresh() bool { return s.qosFresh }
