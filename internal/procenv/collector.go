package procenv

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Group is a set of processes monitored as one logical VM (one container's
// worth of processes, or §5's aggregated batch group).
type Group struct {
	// Name becomes the metrics.Sample VM name.
	Name string
	// PIDs are the member processes.
	PIDs []int
}

// Collector samples per-group resource usage from procfs, converting
// cumulative counters into per-second rates between successive Sample
// calls.
type Collector struct {
	root      string
	clockTick float64 // jiffies per second
	groups    []Group

	// prev holds the previous cumulative counters per pid.
	prevCPU  map[int]uint64 // utime+stime jiffies
	prevIO   map[int]procIO
	prevTime time.Time
	// now allows tests to control the clock.
	now func() time.Time
}

// NewCollector returns a collector over the given procfs root ("/proc" in
// production) and groups. clockTick is the kernel's USER_HZ (100 on
// virtually every Linux build).
func NewCollector(root string, clockTick float64, groups []Group) (*Collector, error) {
	if root == "" {
		return nil, fmt.Errorf("procenv: empty procfs root")
	}
	if clockTick <= 0 {
		return nil, fmt.Errorf("procenv: clockTick must be positive, got %v", clockTick)
	}
	seen := map[string]bool{}
	for _, g := range groups {
		if g.Name == "" {
			return nil, fmt.Errorf("procenv: group with empty name")
		}
		if seen[g.Name] {
			return nil, fmt.Errorf("procenv: duplicate group %q", g.Name)
		}
		seen[g.Name] = true
	}
	return &Collector{
		root:      root,
		clockTick: clockTick,
		groups:    append([]Group(nil), groups...),
		prevCPU:   make(map[int]uint64),
		prevIO:    make(map[int]procIO),
		now:       time.Now,
	}, nil
}

// Sample reads the current usage of every group. The first call primes the
// counters and reports zero rates; subsequent calls report rates over the
// elapsed wall time. Vanished processes contribute nothing (their final
// partial interval is dropped, matching what cgroup deletion does).
func (c *Collector) Sample() []metrics.Sample {
	now := c.now()
	elapsed := now.Sub(c.prevTime).Seconds()
	first := c.prevTime.IsZero()
	c.prevTime = now

	out := make([]metrics.Sample, 0, len(c.groups))
	for _, g := range c.groups {
		var cpuPercent, memMB, ioMBps float64
		for _, pid := range g.PIDs {
			st, err := readProcStat(c.root, pid)
			if err != nil {
				delete(c.prevCPU, pid)
				delete(c.prevIO, pid)
				continue
			}
			total := st.UTime + st.STime
			if prev, ok := c.prevCPU[pid]; ok && !first && elapsed > 0 && total >= prev {
				cpuPercent += float64(total-prev) / c.clockTick / elapsed * 100
			}
			c.prevCPU[pid] = total

			if rss, err := readVmRSS(c.root, pid); err == nil {
				memMB += rss
			}

			if io, err := readProcIO(c.root, pid); err == nil {
				if prev, ok := c.prevIO[pid]; ok && !first && elapsed > 0 &&
					io.ReadBytes >= prev.ReadBytes && io.WriteBytes >= prev.WriteBytes {
					bytes := float64(io.ReadBytes - prev.ReadBytes + io.WriteBytes - prev.WriteBytes)
					ioMBps += bytes / (1 << 20) / elapsed
				}
				c.prevIO[pid] = io
			}
		}
		out = append(out, metrics.NewSample(g.Name, map[metrics.Metric]float64{
			metrics.MetricCPU:    cpuPercent,
			metrics.MetricMemory: memMB,
			metrics.MetricIO:     ioMBps,
			// Per-process network accounting is not available from plain
			// procfs; a production deployment would wire cgroup net_cls or
			// eBPF counters here.
			metrics.MetricNetwork: 0,
		}))
	}
	return out
}

// GroupNames returns the configured group names in order.
func (c *Collector) GroupNames() []string {
	out := make([]string, len(c.groups))
	for i, g := range c.groups {
		out[i] = g.Name
	}
	return out
}

// GroupRunning reports whether any process of the named group exists and
// is not stopped (state T) — the signal the environment uses for
// execution-mode detection.
func (c *Collector) GroupRunning(name string) bool {
	for _, g := range c.groups {
		if g.Name != name {
			continue
		}
		for _, pid := range g.PIDs {
			st, err := readProcStat(c.root, pid)
			if err != nil {
				continue
			}
			if st.State != 'T' && st.State != 'Z' && st.State != 'X' {
				return true
			}
		}
	}
	return false
}

// GroupActive reports whether any process of the named group still exists
// (running, sleeping or stopped — i.e. it has remaining work).
func (c *Collector) GroupActive(name string) bool {
	for _, g := range c.groups {
		if g.Name != name {
			continue
		}
		for _, pid := range g.PIDs {
			if !pidExists(c.root, pid) {
				continue
			}
			if st, err := readProcStat(c.root, pid); err == nil &&
				(st.State == 'Z' || st.State == 'X') {
				continue
			}
			return true
		}
	}
	return false
}
