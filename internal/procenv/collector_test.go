package procenv

import (
	"os"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector("", 100, nil); err == nil {
		t.Error("empty root should error")
	}
	if _, err := NewCollector("/proc", 0, nil); err == nil {
		t.Error("zero clock tick should error")
	}
	if _, err := NewCollector("/proc", 100, []Group{{Name: ""}}); err == nil {
		t.Error("empty group name should error")
	}
	dup := []Group{{Name: "a"}, {Name: "a"}}
	if _, err := NewCollector("/proc", 100, dup); err == nil {
		t.Error("duplicate group should error")
	}
}

func TestCollectorRates(t *testing.T) {
	root := t.TempDir()
	// 100 jiffies/s. Process burns 100 jiffies (1 CPU-second) and reads
	// 2 MiB between samples taken 2s apart → 50% CPU, 1 MiB/s.
	writeFakeProc(t, root, 10, "svc", 'R', 1000, 0, 1024, 0, 0)
	c, err := NewCollector(root, 100, []Group{{Name: "svc", PIDs: []int{10}}})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	c.now = func() time.Time { return base }

	// First sample primes counters: zero rates, but memory is absolute.
	s := c.Sample()
	if len(s) != 1 || s[0].VM != "svc" {
		t.Fatalf("samples = %v", s)
	}
	if s[0].Get(metrics.MetricCPU) != 0 || s[0].Get(metrics.MetricIO) != 0 {
		t.Errorf("priming sample rates = %+v", s[0])
	}
	if s[0].Get(metrics.MetricMemory) != 1 {
		t.Errorf("memory = %v MB, want 1", s[0].Get(metrics.MetricMemory))
	}

	writeFakeProc(t, root, 10, "svc", 'R', 1080, 20, 2048, 1<<21, 0)
	c.now = func() time.Time { return base.Add(2 * time.Second) }
	s = c.Sample()
	if got := s[0].Get(metrics.MetricCPU); got != 50 {
		t.Errorf("cpu = %v%%, want 50", got)
	}
	if got := s[0].Get(metrics.MetricIO); got != 1 {
		t.Errorf("io = %v MB/s, want 1", got)
	}
	if got := s[0].Get(metrics.MetricMemory); got != 2 {
		t.Errorf("memory = %v MB, want 2", got)
	}
}

func TestCollectorAggregatesGroupPIDs(t *testing.T) {
	root := t.TempDir()
	writeFakeProc(t, root, 11, "w1", 'R', 100, 0, 1024, 0, 0)
	writeFakeProc(t, root, 12, "w2", 'R', 100, 0, 2048, 0, 0)
	c, err := NewCollector(root, 100, []Group{{Name: "pool", PIDs: []int{11, 12}}})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(0, 0)
	c.now = func() time.Time { return base }
	c.Sample()

	writeFakeProc(t, root, 11, "w1", 'R', 150, 0, 1024, 0, 0)
	writeFakeProc(t, root, 12, "w2", 'R', 150, 0, 2048, 0, 0)
	c.now = func() time.Time { return base.Add(time.Second) }
	s := c.Sample()
	if got := s[0].Get(metrics.MetricCPU); got != 100 {
		t.Errorf("pooled cpu = %v%%, want 100 (50+50)", got)
	}
	if got := s[0].Get(metrics.MetricMemory); got != 3 {
		t.Errorf("pooled memory = %v MB, want 3", got)
	}
}

func TestCollectorVanishedProcess(t *testing.T) {
	root := t.TempDir()
	writeFakeProc(t, root, 13, "gone", 'R', 100, 0, 1024, 0, 0)
	c, err := NewCollector(root, 100, []Group{{Name: "g", PIDs: []int{13}}})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(0, 0)
	c.now = func() time.Time { return base }
	c.Sample()
	if err := os.RemoveAll(root + "/13"); err != nil {
		t.Fatal(err)
	}
	c.now = func() time.Time { return base.Add(time.Second) }
	s := c.Sample()
	if got := s[0].Get(metrics.MetricCPU); got != 0 {
		t.Errorf("vanished pid cpu = %v, want 0", got)
	}
}

func TestCollectorPIDDiesMidInterval(t *testing.T) {
	// One group member dies between samples while another survives: the
	// survivor's rates must be unaffected, the dead PID must contribute
	// nothing (its final partial interval is dropped), and its stale
	// counters must be pruned so a reused PID re-primes instead of
	// producing a bogus rate against the dead process's counters.
	root := t.TempDir()
	writeFakeProc(t, root, 30, "w1", 'R', 100, 0, 1024, 0, 0)
	writeFakeProc(t, root, 31, "w2", 'R', 900, 0, 4096, 0, 0)
	c, err := NewCollector(root, 100, []Group{{Name: "pool", PIDs: []int{30, 31}}})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(0, 0)
	c.now = func() time.Time { return base }
	c.Sample()

	// PID 31 dies mid-interval; PID 30 burns 50 jiffies.
	writeFakeProc(t, root, 30, "w1", 'R', 150, 0, 1024, 0, 0)
	if err := os.RemoveAll(root + "/31"); err != nil {
		t.Fatal(err)
	}
	c.now = func() time.Time { return base.Add(time.Second) }
	s := c.Sample()
	if got := s[0].Get(metrics.MetricCPU); got != 50 {
		t.Errorf("survivor cpu = %v%%, want 50", got)
	}
	if got := s[0].Get(metrics.MetricMemory); got != 1 {
		t.Errorf("memory = %v MB, want 1 (survivor only)", got)
	}
	if _, stale := c.prevCPU[31]; stale {
		t.Error("dead PID's counters not pruned")
	}

	// The PID is reused by an unrelated process with LOWER counters than
	// the dead one had: the first sample after reuse must prime (zero
	// rate), not difference against the dead process.
	writeFakeProc(t, root, 31, "reused", 'R', 10, 0, 2048, 0, 0)
	writeFakeProc(t, root, 30, "w1", 'R', 150, 0, 1024, 0, 0)
	c.now = func() time.Time { return base.Add(2 * time.Second) }
	s = c.Sample()
	if got := s[0].Get(metrics.MetricCPU); got != 0 {
		t.Errorf("cpu after PID reuse = %v%%, want 0 (re-prime)", got)
	}
	writeFakeProc(t, root, 31, "reused", 'R', 40, 0, 2048, 0, 0)
	c.now = func() time.Time { return base.Add(3 * time.Second) }
	s = c.Sample()
	if got := s[0].Get(metrics.MetricCPU); got != 30 {
		t.Errorf("cpu after reuse warm-up = %v%%, want 30", got)
	}
}

func TestCollectorCounterReset(t *testing.T) {
	// PID reuse can make cumulative counters go backwards; the rate must
	// clamp to zero rather than going negative.
	root := t.TempDir()
	writeFakeProc(t, root, 14, "p", 'R', 500, 0, 1024, 1<<20, 0)
	c, err := NewCollector(root, 100, []Group{{Name: "g", PIDs: []int{14}}})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(0, 0)
	c.now = func() time.Time { return base }
	c.Sample()
	c.now = func() time.Time { return base.Add(time.Second) }
	c.Sample()

	writeFakeProc(t, root, 14, "p", 'R', 10, 0, 1024, 0, 0) // counters reset
	c.now = func() time.Time { return base.Add(2 * time.Second) }
	s := c.Sample()
	if got := s[0].Get(metrics.MetricCPU); got != 0 {
		t.Errorf("cpu after reset = %v, want 0", got)
	}
	if got := s[0].Get(metrics.MetricIO); got != 0 {
		t.Errorf("io after reset = %v, want 0", got)
	}
}

func TestGroupRunningAndActive(t *testing.T) {
	root := t.TempDir()
	writeFakeProc(t, root, 20, "run", 'R', 0, 0, 0, 0, 0)
	writeFakeProc(t, root, 21, "stopped", 'T', 0, 0, 0, 0, 0)
	writeFakeProc(t, root, 22, "zombie", 'Z', 0, 0, 0, 0, 0)
	c, err := NewCollector(root, 100, []Group{
		{Name: "running", PIDs: []int{20}},
		{Name: "frozen", PIDs: []int{21}},
		{Name: "dead", PIDs: []int{22}},
		{Name: "missing", PIDs: []int{99}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		group           string
		running, active bool
	}{
		{"running", true, true},
		{"frozen", false, true}, // SIGSTOPped: not running, still has work
		{"dead", false, false},
		{"missing", false, false},
		{"unknown", false, false},
	}
	for _, tt := range tests {
		if got := c.GroupRunning(tt.group); got != tt.running {
			t.Errorf("GroupRunning(%s) = %v, want %v", tt.group, got, tt.running)
		}
		if got := c.GroupActive(tt.group); got != tt.active {
			t.Errorf("GroupActive(%s) = %v, want %v", tt.group, got, tt.active)
		}
	}
}
