// Package procenv implements core.Environment for real Linux processes:
// per-process resource usage is sampled from procfs (the same numbers
// cgroup accounting exposes), QoS violations are read from a report file
// the sensitive application writes, and throttling is actuated with the
// paper's SIGSTOP/SIGCONT via throttle.ProcessActuator.
//
// The procfs root is configurable so tests run against a fixture tree;
// production uses "/proc".
package procenv

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// procStat is the subset of /proc/<pid>/stat the collector needs.
type procStat struct {
	// State is the process state letter (R, S, D, T, Z, ...). "T" is a
	// stopped (SIGSTOPped) process.
	State byte
	// UTime and STime are user/system CPU time in clock ticks.
	UTime, STime uint64
}

// readProcStat parses /proc/<pid>/stat. The comm field may contain spaces
// and parentheses, so parsing anchors on the *last* ')'.
func readProcStat(root string, pid int) (procStat, error) {
	data, err := os.ReadFile(filepath.Join(root, strconv.Itoa(pid), "stat"))
	if err != nil {
		return procStat{}, fmt.Errorf("procenv: read stat for pid %d: %w", pid, err)
	}
	s := string(data)
	close := strings.LastIndexByte(s, ')')
	if close < 0 || close+2 >= len(s) {
		return procStat{}, fmt.Errorf("procenv: malformed stat for pid %d", pid)
	}
	fields := strings.Fields(s[close+2:])
	// After the comm field: fields[0]=state, ... utime=fields[11],
	// stime=fields[12] (stat fields 14 and 15, 1-based).
	if len(fields) < 13 {
		return procStat{}, fmt.Errorf("procenv: truncated stat for pid %d", pid)
	}
	ut, err1 := strconv.ParseUint(fields[11], 10, 64)
	st, err2 := strconv.ParseUint(fields[12], 10, 64)
	if err1 != nil || err2 != nil {
		return procStat{}, fmt.Errorf("procenv: bad cpu fields for pid %d", pid)
	}
	return procStat{State: fields[0][0], UTime: ut, STime: st}, nil
}

// readVmRSS parses the resident set size (kB) from /proc/<pid>/status.
func readVmRSS(root string, pid int) (float64, error) {
	data, err := os.ReadFile(filepath.Join(root, strconv.Itoa(pid), "status"))
	if err != nil {
		return 0, fmt.Errorf("procenv: read status for pid %d: %w", pid, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0, fmt.Errorf("procenv: bad VmRSS for pid %d: %w", pid, err)
		}
		return kb / 1024, nil // MB
	}
	// Kernel threads have no VmRSS line; treat as zero resident memory.
	return 0, nil
}

// procIO is the subset of /proc/<pid>/io the collector needs.
type procIO struct {
	ReadBytes, WriteBytes uint64
}

// readProcIO parses /proc/<pid>/io. The file may be unreadable without
// privileges; callers treat an error as zero I/O rather than failing the
// whole sample.
func readProcIO(root string, pid int) (procIO, error) {
	data, err := os.ReadFile(filepath.Join(root, strconv.Itoa(pid), "io"))
	if err != nil {
		return procIO{}, err
	}
	var out procIO
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "read_bytes:":
			out.ReadBytes = v
		case "write_bytes:":
			out.WriteBytes = v
		}
	}
	return out, nil
}

// pidExists reports whether the pid still has a procfs entry.
func pidExists(root string, pid int) bool {
	_, err := os.Stat(filepath.Join(root, strconv.Itoa(pid)))
	return err == nil
}
