package procenv

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// writeFakeProc creates a procfs fixture for one pid.
func writeFakeProc(t *testing.T, root string, pid int, comm string, state byte,
	utime, stime uint64, rssKB uint64, readBytes, writeBytes uint64) {
	t.Helper()
	dir := filepath.Join(root, strconv.Itoa(pid))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Fields after comm: state ppid pgrp session tty tpgid flags minflt
	// cminflt majflt cmajflt utime stime ... (utime is field 14, 1-based).
	stat := strconv.Itoa(pid) + " (" + comm + ") " + string(state) +
		" 1 1 1 0 -1 4194560 100 0 0 0 " +
		strconv.FormatUint(utime, 10) + " " + strconv.FormatUint(stime, 10) +
		" 0 0 20 0 1 0 100 0 0\n"
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(stat), 0o644); err != nil {
		t.Fatal(err)
	}
	status := "Name:\t" + comm + "\nVmRSS:\t" + strconv.FormatUint(rssKB, 10) + " kB\n"
	if err := os.WriteFile(filepath.Join(dir, "status"), []byte(status), 0o644); err != nil {
		t.Fatal(err)
	}
	io := "rchar: 0\nwchar: 0\nread_bytes: " + strconv.FormatUint(readBytes, 10) +
		"\nwrite_bytes: " + strconv.FormatUint(writeBytes, 10) + "\n"
	if err := os.WriteFile(filepath.Join(dir, "io"), []byte(io), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReadProcStat(t *testing.T) {
	root := t.TempDir()
	writeFakeProc(t, root, 42, "my app (weird)", 'S', 1500, 500, 2048, 0, 0)
	st, err := readProcStat(root, 42)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != 'S' || st.UTime != 1500 || st.STime != 500 {
		t.Errorf("stat = %+v", st)
	}
}

func TestReadProcStatErrors(t *testing.T) {
	root := t.TempDir()
	if _, err := readProcStat(root, 1); err == nil {
		t.Error("missing pid should error")
	}
	dir := filepath.Join(root, "7")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readProcStat(root, 7); err == nil {
		t.Error("malformed stat should error")
	}
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte("7 (x) R 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readProcStat(root, 7); err == nil {
		t.Error("truncated stat should error")
	}
}

func TestReadVmRSS(t *testing.T) {
	root := t.TempDir()
	writeFakeProc(t, root, 5, "svc", 'R', 0, 0, 3072, 0, 0)
	mb, err := readVmRSS(root, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mb != 3 {
		t.Errorf("rss = %v MB, want 3", mb)
	}
	// Kernel-thread style status without VmRSS reads as 0.
	dir := filepath.Join(root, "6")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "status"), []byte("Name:\tkthread\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mb, err = readVmRSS(root, 6)
	if err != nil || mb != 0 {
		t.Errorf("kernel thread rss = %v, %v", mb, err)
	}
}

func TestReadProcIO(t *testing.T) {
	root := t.TempDir()
	writeFakeProc(t, root, 9, "io", 'R', 0, 0, 0, 4096, 8192)
	io, err := readProcIO(root, 9)
	if err != nil {
		t.Fatal(err)
	}
	if io.ReadBytes != 4096 || io.WriteBytes != 8192 {
		t.Errorf("io = %+v", io)
	}
}

func TestPidExists(t *testing.T) {
	root := t.TempDir()
	writeFakeProc(t, root, 3, "x", 'R', 0, 0, 0, 0, 0)
	if !pidExists(root, 3) {
		t.Error("pid 3 should exist")
	}
	if pidExists(root, 4) {
		t.Error("pid 4 should not exist")
	}
}

// Integration: parse this test process's own procfs entries on a real
// Linux /proc.
func TestRealProcSelf(t *testing.T) {
	if _, err := os.Stat("/proc/self/stat"); err != nil {
		t.Skip("no /proc available")
	}
	pid := os.Getpid()
	st, err := readProcStat("/proc", pid)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != 'R' && st.State != 'S' && st.State != 'D' {
		t.Errorf("own state = %c", st.State)
	}
	rss, err := readVmRSS("/proc", pid)
	if err != nil {
		t.Fatal(err)
	}
	if rss <= 0 {
		t.Errorf("own RSS = %v MB, want positive", rss)
	}
	if !pidExists("/proc", pid) {
		t.Error("own pid should exist")
	}
}
