package procenv

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
)

// QoSSource reports the sensitive application's most recent QoS value and
// threshold, mirroring §3.1: "Stay-Away relies on the application to
// report whenever a QoS violation happens."
type QoSSource interface {
	// QoS returns (value, threshold, ok); ok is false when no fresh report
	// is available, in which case the period counts as non-violating.
	QoS() (value, threshold float64, ok bool)
}

// FileQoS reads QoS reports from a file the application rewrites each
// period, containing one line: "<value> <threshold>". This is the
// lightest possible reporting channel for instrumented applications (the
// paper instrumented VLC 2.0.5 the same way).
type FileQoS struct {
	// Path is the report file's location.
	Path string
}

var _ QoSSource = FileQoS{}

// QoS implements QoSSource.
func (f FileQoS) QoS() (float64, float64, bool) {
	data, err := os.ReadFile(f.Path)
	if err != nil {
		return 0, 0, false
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0, 0, false
	}
	v, err1 := strconv.ParseFloat(fields[0], 64)
	t, err2 := strconv.ParseFloat(fields[1], 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return v, t, true
}

// StaticQoS always reports the same value; useful for tests and dry runs.
type StaticQoS struct {
	Value, Threshold float64
}

var _ QoSSource = StaticQoS{}

// QoS implements QoSSource.
func (s StaticQoS) QoS() (float64, float64, bool) { return s.Value, s.Threshold, true }

// Sampler is the measurement source an Environment observes: the procfs
// Collector in PID mode, or cgroup.Collector in cgroup mode. Group names
// are the metrics.Sample VM names.
type Sampler interface {
	// Sample reads the current usage of every group.
	Sample() []metrics.Sample
	// GroupRunning reports whether the named group is actively executing
	// (exists and is not stopped/frozen).
	GroupRunning(name string) bool
	// GroupActive reports whether the named group still has work (running
	// or stopped, not gone).
	GroupActive(name string) bool
	// GroupNames returns the configured group names in order.
	GroupNames() []string
}

var _ Sampler = (*Collector)(nil)

// Environment adapts a Sampler plus a QoSSource to core.Environment for
// real processes or cgroups. It also implements core.QoSFreshness: a
// missing or unparsable QoS report is remembered as silence, so the
// runtime can treat a prolonged quiet stretch as a stale signal rather
// than a healthy application.
type Environment struct {
	collector Sampler
	sensitive string
	batch     []string
	qos       QoSSource
	// qosFresh records whether the most recent QoSViolation call saw a
	// usable report. It starts true (no evidence of silence yet).
	qosFresh bool
}

var (
	_ core.Environment  = (*Environment)(nil)
	_ core.QoSFreshness = (*Environment)(nil)
)

// NewEnvironment builds an environment over the sampler's groups. The
// sensitive name must match one group; batch names must match the rest.
func NewEnvironment(c Sampler, sensitiveGroup string, batchGroups []string, qos QoSSource) (*Environment, error) {
	if c == nil {
		return nil, fmt.Errorf("procenv: nil collector")
	}
	if qos == nil {
		return nil, fmt.Errorf("procenv: nil QoS source")
	}
	known := map[string]bool{}
	for _, name := range c.GroupNames() {
		known[name] = true
	}
	if !known[sensitiveGroup] {
		return nil, fmt.Errorf("procenv: sensitive group %q not in collector", sensitiveGroup)
	}
	for _, b := range batchGroups {
		if !known[b] {
			return nil, fmt.Errorf("procenv: batch group %q not in collector", b)
		}
	}
	return &Environment{
		collector: c,
		sensitive: sensitiveGroup,
		batch:     append([]string(nil), batchGroups...),
		qos:       qos,
		qosFresh:  true,
	}, nil
}

// Collect implements core.Environment.
func (e *Environment) Collect() []metrics.Sample { return e.collector.Sample() }

// QoSViolation implements core.Environment.
func (e *Environment) QoSViolation() bool {
	if !e.SensitiveRunning() {
		// No sensitive application means no reports are expected; that is
		// not the reporting channel going silent.
		e.qosFresh = true
		return false
	}
	v, t, ok := e.qos.QoS()
	e.qosFresh = ok
	return ok && v < t
}

// QoSFresh implements core.QoSFreshness: whether the most recent period
// had a usable QoS report.
func (e *Environment) QoSFresh() bool { return e.qosFresh }

// SensitiveRunning implements core.Environment.
func (e *Environment) SensitiveRunning() bool {
	return e.collector.GroupRunning(e.sensitive)
}

// BatchRunning implements core.Environment.
func (e *Environment) BatchRunning() bool {
	for _, b := range e.batch {
		if e.collector.GroupRunning(b) {
			return true
		}
	}
	return false
}

// BatchActive implements core.Environment.
func (e *Environment) BatchActive() bool {
	for _, b := range e.batch {
		if e.collector.GroupActive(b) {
			return true
		}
	}
	return false
}

// BatchPIDs returns the decimal PID strings of all batch groups, in the
// form throttle.ProcessActuator consumes. Only meaningful when the
// sampler is the procfs Collector; cgroup-backed environments address
// batch groups by cgroup path instead and get nil.
func (e *Environment) BatchPIDs() []string {
	c, ok := e.collector.(*Collector)
	if !ok {
		return nil
	}
	var out []string
	for _, b := range e.batch {
		for _, g := range c.groups {
			if g.Name != b {
				continue
			}
			for _, pid := range g.PIDs {
				out = append(out, strconv.Itoa(pid))
			}
		}
	}
	return out
}
