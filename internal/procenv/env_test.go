package procenv

import (
	"os"
	"path/filepath"
	"testing"
)

func newTestEnv(t *testing.T, qos QoSSource) (*Environment, string) {
	t.Helper()
	root := t.TempDir()
	writeFakeProc(t, root, 100, "sensitive", 'R', 0, 0, 1024, 0, 0)
	writeFakeProc(t, root, 200, "batch", 'R', 0, 0, 2048, 0, 0)
	c, err := NewCollector(root, 100, []Group{
		{Name: "svc", PIDs: []int{100}},
		{Name: "jobs", PIDs: []int{200}},
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnvironment(c, "svc", []string{"jobs"}, qos)
	if err != nil {
		t.Fatal(err)
	}
	return env, root
}

func TestNewEnvironmentValidation(t *testing.T) {
	root := t.TempDir()
	c, err := NewCollector(root, 100, []Group{{Name: "svc"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEnvironment(nil, "svc", nil, StaticQoS{}); err == nil {
		t.Error("nil collector should error")
	}
	if _, err := NewEnvironment(c, "svc", nil, nil); err == nil {
		t.Error("nil QoS source should error")
	}
	if _, err := NewEnvironment(c, "ghost", nil, StaticQoS{}); err == nil {
		t.Error("unknown sensitive group should error")
	}
	if _, err := NewEnvironment(c, "svc", []string{"ghost"}, StaticQoS{}); err == nil {
		t.Error("unknown batch group should error")
	}
}

func TestEnvironmentRoles(t *testing.T) {
	env, root := newTestEnv(t, StaticQoS{Value: 1, Threshold: 0.9})
	if !env.SensitiveRunning() || !env.BatchRunning() || !env.BatchActive() {
		t.Error("both groups should be running")
	}
	if env.QoSViolation() {
		t.Error("value 1 ≥ threshold 0.9: no violation")
	}
	samples := env.Collect()
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}

	// SIGSTOP the batch process (state T): not running, still active.
	writeFakeProc(t, root, 200, "batch", 'T', 0, 0, 2048, 0, 0)
	if env.BatchRunning() {
		t.Error("stopped batch should not be running")
	}
	if !env.BatchActive() {
		t.Error("stopped batch still has work")
	}
}

func TestEnvironmentViolation(t *testing.T) {
	env, root := newTestEnv(t, StaticQoS{Value: 0.5, Threshold: 0.9})
	if !env.QoSViolation() {
		t.Error("value 0.5 < threshold 0.9: violation expected")
	}
	// A dead sensitive process never violates (there is nothing to protect).
	if err := os.RemoveAll(filepath.Join(root, "100")); err != nil {
		t.Fatal(err)
	}
	if env.QoSViolation() {
		t.Error("no sensitive process: no violation")
	}
}

func TestEnvironmentBatchPIDs(t *testing.T) {
	env, _ := newTestEnv(t, StaticQoS{})
	pids := env.BatchPIDs()
	if len(pids) != 1 || pids[0] != "200" {
		t.Errorf("batch PIDs = %v, want [200]", pids)
	}
}

func TestFileQoS(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qos")
	f := FileQoS{Path: path}
	if _, _, ok := f.QoS(); ok {
		t.Error("missing file should report not-ok")
	}
	if err := os.WriteFile(path, []byte("0.87 0.9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	v, th, ok := f.QoS()
	if !ok || v != 0.87 || th != 0.9 {
		t.Errorf("qos = %v %v %v", v, th, ok)
	}
	if err := os.WriteFile(path, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := f.QoS(); ok {
		t.Error("malformed report should report not-ok")
	}
	if err := os.WriteFile(path, []byte("0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := f.QoS(); ok {
		t.Error("single-field report should report not-ok")
	}
}
