package daemon

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLanesStrict(t *testing.T) {
	good := `{"version":1,"lanes":[{"app":"vlc","sensitive_cgroup":"s/vlc","qos_file":"/run/vlc.qos"}]}`
	lf, err := ParseLanes([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(lf.Lanes) != 1 || lf.Lanes[0].App != "vlc" {
		t.Fatalf("parsed %+v", lf)
	}

	cases := []struct{ name, doc string }{
		{"unknown field", `{"version":1,"lanes":[{"app":"a","sensitive_cgroup":"s","qos_file":"q","typo":"x"}]}`},
		{"unknown top-level field", `{"version":1,"lanez":[]}`},
		{"trailing garbage", good + `{"version":2}`},
		{"not json", `version: 1`},
	}
	for _, tc := range cases {
		if _, err := ParseLanes([]byte(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestLaneDefName(t *testing.T) {
	if got := (LaneDef{App: "vlc", SensitiveCgroup: "s/other"}).Name(); got != "vlc" {
		t.Errorf("explicit app: Name() = %q", got)
	}
	if got := (LaneDef{SensitiveCgroup: "stayaway/vlc"}).Name(); got != "vlc" {
		t.Errorf("defaulted app: Name() = %q", got)
	}
}

func TestLanesValidate(t *testing.T) {
	lane := func(app, cg, qos string) LaneDef {
		return LaneDef{App: app, SensitiveCgroup: cg, QoSFile: qos}
	}
	cases := []struct {
		name    string
		lf      LanesFile
		batch   []string
		wantErr string // substring; "" = valid
	}{
		{"valid", LanesFile{Version: 1, Lanes: []LaneDef{lane("a", "s/a", "qa"), lane("b", "s/b", "qb")}}, nil, ""},
		{"bad version", LanesFile{Version: 2, Lanes: []LaneDef{lane("a", "s/a", "qa")}}, nil, "version 2"},
		{"no lanes", LanesFile{Version: 1}, nil, "no lanes"},
		{"missing cgroup", LanesFile{Version: 1, Lanes: []LaneDef{lane("a", "", "qa")}}, nil, "sensitive_cgroup is required"},
		{"missing qos", LanesFile{Version: 1, Lanes: []LaneDef{lane("a", "s/a", "")}}, nil, "qos_file is required"},
		{"dup app", LanesFile{Version: 1, Lanes: []LaneDef{lane("a", "s/a", "qa"), lane("a", "s/b", "qb")}}, nil, "declared twice"},
		{"dup cgroup", LanesFile{Version: 1, Lanes: []LaneDef{lane("a", "s/x", "qa"), lane("b", "s/x", "qb")}}, nil, "declared twice"},
		{"dup qos", LanesFile{Version: 1, Lanes: []LaneDef{lane("a", "s/a", "q"), lane("b", "s/b", "q")}}, nil, "already used"},
		{"sensitive is batch", LanesFile{Version: 1, Lanes: []LaneDef{lane("a", "s/b1", "qa")}}, []string{"s/b1"}, "batch cgroup"},
	}
	for _, tc := range cases {
		err := tc.lf.Validate(tc.batch)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}

	// Every problem is reported at once.
	lf := LanesFile{Version: 3, Lanes: []LaneDef{lane("a", "", ""), lane("a", "", "")}}
	err := lf.Validate(nil)
	if err == nil {
		t.Fatal("multi-problem file accepted")
	}
	for _, want := range []string{"version 3", "sensitive_cgroup is required", "qos_file is required"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error misses %q:\n%v", want, err)
		}
	}
}

func TestDiffLanes(t *testing.T) {
	a := LaneDef{App: "a", SensitiveCgroup: "s/a", QoSFile: "qa"}
	b := LaneDef{App: "b", SensitiveCgroup: "s/b", QoSFile: "qb"}
	c := LaneDef{App: "c", SensitiveCgroup: "s/c", QoSFile: "qc"}
	bChanged := b
	bChanged.QoSFile = "qb2"

	d := DiffLanes([]LaneDef{a, b}, []LaneDef{bChanged, c})
	if len(d.Add) != 1 || d.Add[0].App != "c" {
		t.Errorf("Add = %+v", d.Add)
	}
	if len(d.Change) != 1 || d.Change[0].QoSFile != "qb2" {
		t.Errorf("Change = %+v", d.Change)
	}
	if len(d.Remove) != 1 || d.Remove[0] != "a" {
		t.Errorf("Remove = %+v", d.Remove)
	}
	if d.Empty() {
		t.Error("non-empty diff reports Empty")
	}
	if got := d.String(); got != "+1 ~1 -1" {
		t.Errorf("String() = %q", got)
	}

	if !DiffLanes([]LaneDef{a, b}, []LaneDef{a, b}).Empty() {
		t.Error("identical sets should diff empty")
	}
}

func TestLoadLanes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lanes.json")
	if _, err := LoadLanes(path); err == nil {
		t.Error("missing file accepted")
	}
	if err := os.WriteFile(path, []byte(`{"version":1,"lanes":[{"sensitive_cgroup":"s/vlc","qos_file":"q"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	lf, err := LoadLanes(path)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Lanes[0].Name() != "vlc" {
		t.Errorf("Name() = %q", lf.Lanes[0].Name())
	}
}
