package daemon

import (
	"sync"
	"time"
)

// Reloader is the two-phase hot-reload pipeline for the lanes file.
//
// Phase one, Queue, may run on any goroutine (the SIGHUP handler, the
// watcher check, the POST /v1/reload handler): it loads and strictly
// parses the file and runs every static validation. A bad file is
// rejected here — recorded with its reason, running set untouched
// (rollback-by-default) — and a good one is stashed as the single
// pending config (a newer Queue replaces an unconsumed older one; the
// file is the source of truth, not the queue).
//
// Phase two runs on the control-loop goroutine at a period boundary:
// TakePending hands over the validated config, the loop diffs and
// applies it against the live runtime, and Commit records the outcome.
type Reloader struct {
	path  string
	batch []string

	mu      sync.Mutex
	current []LaneDef
	pending *LanesFile
	// generation counts accepted Queues; applied is the generation the
	// loop last committed. applied < generation means a reload is in
	// flight (or was superseded before the loop took it).
	generation int
	applied    int
	lastErr    string
	lastErrAt  time.Time
	appliedAt  time.Time
}

// ReloadStatus is the reloader's observable state, served by /readyz.
type ReloadStatus struct {
	// Generation counts accepted (validated) reloads; Applied is the
	// generation the control loop last committed. Pending means a
	// validated config is waiting for the next period boundary.
	Generation int  `json:"generation"`
	Applied    int  `json:"applied"`
	Pending    bool `json:"pending"`
	// LastError is the reason the most recent rejected config was
	// refused, with its timestamp; empty if the last Queue was accepted.
	LastError   string    `json:"last_error,omitempty"`
	LastErrorAt time.Time `json:"last_error_at"`
	// AppliedAt is when the last commit happened.
	AppliedAt time.Time `json:"applied_at"`
	// Lanes is the committed lane set.
	Lanes []LaneDef `json:"lanes,omitempty"`
}

// NewReloader tracks reloads of the lanes file at path. current is the
// lane set the daemon started with; batch is the shared batch cgroup
// set used for validation.
func NewReloader(path string, current []LaneDef, batch []string) *Reloader {
	return &Reloader{
		path:    path,
		batch:   append([]string(nil), batch...),
		current: append([]LaneDef(nil), current...),
	}
}

// Queue validates the lanes file and stages it for the next period
// boundary. The returned error is the logged rejection reason; on error
// nothing is staged and any previously staged config stays staged (it
// already passed validation — a bad edit must not cancel a good one).
func (r *Reloader) Queue() error {
	lf, err := LoadLanes(r.path)
	if err == nil {
		err = lf.Validate(r.batch)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.lastErr = err.Error()
		r.lastErrAt = time.Now()
		return err
	}
	r.lastErr = ""
	r.pending = lf
	r.generation++
	return nil
}

// TakePending hands the staged config to the control loop and clears
// the stage. ok is false when nothing is pending.
func (r *Reloader) TakePending() (lanes []LaneDef, gen int, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pending == nil {
		return nil, 0, false
	}
	lanes = r.pending.Lanes
	r.pending = nil
	return lanes, r.generation, true
}

// Commit records the lane set the loop actually applied for generation
// gen. The applied set can differ from the desired one when individual
// lane operations failed (the loop keeps the survivors); committing the
// truth keeps later diffs correct.
func (r *Reloader) Commit(gen int, lanes []LaneDef) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.current = append([]LaneDef(nil), lanes...)
	if gen > r.applied {
		r.applied = gen
	}
	r.appliedAt = time.Now()
}

// Current returns the committed lane set.
func (r *Reloader) Current() []LaneDef {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]LaneDef(nil), r.current...)
}

// Status snapshots the reloader for the admin surface.
func (r *Reloader) Status() ReloadStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReloadStatus{
		Generation:  r.generation,
		Applied:     r.applied,
		Pending:     r.pending != nil,
		LastError:   r.lastErr,
		LastErrorAt: r.lastErrAt,
		AppliedAt:   r.appliedAt,
		Lanes:       append([]LaneDef(nil), r.current...),
	}
}

// Diff computes the lane diff from the committed set to desired.
func (r *Reloader) Diff(desired []LaneDef) LaneDiff {
	r.mu.Lock()
	defer r.mu.Unlock()
	return DiffLanes(r.current, desired)
}
