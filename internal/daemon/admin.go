package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/stream"
)

// Event types on the daemon's admin stream (GET /v1/events), alongside
// stream.TypeHeartbeat/TypeReset from the shared codec.
const (
	// TypePeriod carries one lane's core.Event for one period.
	TypePeriod = "period"
	// TypeLane announces a lane lifecycle change; its payload is a
	// LaneChange.
	TypeLane = "lane"
	// TypeReload announces a reload commit or rejection; its payload is
	// a ReloadOutcome.
	TypeReload = "reload"
)

// LaneChange is the TypeLane payload.
type LaneChange struct {
	// Op is "add", "remove" or "change".
	Op  string `json:"op"`
	App string `json:"app"`
	// Carried reports whether a changed lane kept its learned state.
	Carried bool `json:"carried,omitempty"`
	// Error is set when the operation failed (the lane may be gone).
	Error string `json:"error,omitempty"`
}

// ReloadOutcome is the TypeReload payload.
type ReloadOutcome struct {
	Generation int    `json:"generation"`
	Diff       string `json:"diff,omitempty"`
	Rejected   string `json:"rejected,omitempty"`
}

// PeriodEvent wraps one lane's period event for the hub. Encoding
// cannot fail for core.Event (plain fields), so the error is dropped —
// an un-publishable event loses telemetry, never control.
func PeriodEvent(ev core.Event) stream.Event {
	data, _ := json.Marshal(ev)
	return stream.Event{Type: TypePeriod, App: ev.App, Data: data}
}

// LaneEvent wraps a lane lifecycle change for the hub.
func LaneEvent(c LaneChange) stream.Event {
	data, _ := json.Marshal(c)
	return stream.Event{Type: TypeLane, App: c.App, Data: data}
}

// ReloadEvent wraps a reload outcome for the hub.
func ReloadEvent(o ReloadOutcome) stream.Event {
	data, _ := json.Marshal(o)
	return stream.Event{Type: TypeReload, Data: data}
}

// AdminConfig wires the admin surface.
type AdminConfig struct {
	// Board is the status mailbox the control loop publishes to.
	// Required.
	Board *Board
	// Hub serves GET /v1/events; nil returns 501 there.
	Hub *stream.Hub
	// Metrics serves GET /metrics; nil returns 501 there.
	Metrics *stream.MetricSet
	// Reload runs phase one of a hot reload (Reloader.Queue) when
	// POST /v1/reload arrives; nil returns 501 there.
	Reload func() error
	// Key enables HMAC request signing (fleet.RequireSignature) on the
	// mutating and streaming endpoints. The read-only probes /healthz,
	// /readyz and /metrics stay exempt: kubelets and scrapers do not
	// sign.
	Key []byte
	// Logf receives admin-surface log lines; nil discards.
	Logf func(format string, args ...any)
	// StreamHeartbeat is the SSE heartbeat cadence; 0 means 15s.
	StreamHeartbeat time.Duration
}

// Admin is stayawayd's HTTP admin surface:
//
//	GET  /healthz    liveness (process up)
//	GET  /readyz     readiness + full Status JSON (503 while not ready)
//	GET  /metrics    Prometheus text
//	GET  /v1/events  SSE: period events, lane changes, reload outcomes
//	POST /v1/reload  programmatic twin of SIGHUP (two-phase validate)
type Admin struct {
	cfg AdminConfig
}

// NewAdmin validates the wiring.
func NewAdmin(cfg AdminConfig) (*Admin, error) {
	if cfg.Board == nil {
		return nil, fmt.Errorf("daemon: admin needs a status board")
	}
	if cfg.StreamHeartbeat <= 0 {
		cfg.StreamHeartbeat = 15 * time.Second
	}
	return &Admin{cfg: cfg}, nil
}

// Handler returns the admin mux, HMAC-wrapped when a key is configured.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", a.getReadyz)
	mux.HandleFunc("GET /metrics", a.getMetrics)
	mux.HandleFunc("GET /v1/events", a.getEvents)
	mux.HandleFunc("POST /v1/reload", a.postReload)
	return fleet.RequireSignature(a.cfg.Key, a.cfg.Logf, mux, "/healthz", "/readyz", "/metrics")
}

func (a *Admin) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

func (a *Admin) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	a.logf("admin: %d %s", code, msg)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// getReadyz serves the full status; the HTTP code is the readiness
// verdict (200 ready, 503 not), so probes need no JSON parsing while
// operators still get the whole picture from the same endpoint.
func (a *Admin) getReadyz(w http.ResponseWriter, _ *http.Request) {
	s := a.cfg.Board.Snapshot()
	code := http.StatusOK
	if !s.Ready || s.WatchdogStalled {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(s)
}

func (a *Admin) getMetrics(w http.ResponseWriter, _ *http.Request) {
	if a.cfg.Metrics == nil {
		a.writeError(w, http.StatusNotImplemented, "metrics not enabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.cfg.Metrics.WriteTo(w)
}

// postReload is the programmatic twin of SIGHUP: phase-one validation
// runs synchronously so the caller learns immediately whether the file
// was accepted (202: applies at the next period boundary) or rejected
// (400 with the reason; the running set is untouched).
func (a *Admin) postReload(w http.ResponseWriter, _ *http.Request) {
	if a.cfg.Reload == nil {
		a.writeError(w, http.StatusNotImplemented, "hot reload not enabled (start stayawayd with -lanes-file)")
		return
	}
	if err := a.cfg.Reload(); err != nil {
		a.writeError(w, http.StatusBadRequest, "reload rejected: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"status": "queued for next period boundary"})
}

// getEvents serves the daemon's SSE stream with replay and
// Last-Event-ID resume, mirroring the registry's stream contract: a
// resume position this incarnation cannot replay produces an explicit
// reset event.
func (a *Admin) getEvents(w http.ResponseWriter, r *http.Request) {
	if a.cfg.Hub == nil {
		a.writeError(w, http.StatusNotImplemented, "event streaming not enabled")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		a.writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("last_event_id")
	}
	appFilter := r.URL.Query().Get("app")

	sub, resumed := a.cfg.Hub.Subscribe(lastID)
	if sub == nil {
		a.writeError(w, http.StatusServiceUnavailable, "event stream shutting down")
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	enc := stream.NewEncoder(w)
	if lastID != "" && !resumed {
		if err := enc.WriteEvent(stream.Event{
			Epoch: a.cfg.Hub.Epoch(), Seq: 0, Type: stream.TypeReset,
		}); err != nil {
			return
		}
	}
	if err := enc.WriteHeartbeat(); err != nil {
		return
	}
	fl.Flush()

	tick := time.NewTicker(a.cfg.StreamHeartbeat)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
			if err := enc.WriteHeartbeat(); err != nil {
				return
			}
			fl.Flush()
		case ev, open := <-sub.C:
			if !open {
				return
			}
			if appFilter != "" && ev.App != "" && ev.App != appFilter {
				continue
			}
			if err := enc.WriteEvent(ev); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
