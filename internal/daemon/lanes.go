// Package daemon is stayawayd's live-operations layer: the declarative
// lane configuration (lanes.json) with two-phase validate-then-commit
// reload, the mtime/size file watcher that triggers it without fsnotify,
// the thread-safe status board the control loop publishes to, and the
// HTTP admin surface (/healthz, /readyz, /metrics, /v1/events SSE,
// /v1/reload) that serves it.
//
// The package deliberately holds no reference to core.HostRuntime: the
// runtime is single-threaded and owned by the daemon's control loop, so
// everything here either runs on that loop (reload commits) or reads
// immutable snapshots the loop published (the admin handlers).
package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path"
	"sort"
)

// LanesVersion is the lanes.json schema version this daemon understands.
const LanesVersion = 1

// LaneDef declares one protected application in lanes.json. Fields
// mirror the repeatable -sensitive-cgroup/-qos-file/-app flag triple.
type LaneDef struct {
	// App is the fleet-wide application name; empty defaults to the base
	// name of SensitiveCgroup (like the -app flag default).
	App string `json:"app,omitempty"`
	// SensitiveCgroup is the application's cgroup, relative to the
	// daemon's -cgroup-root.
	SensitiveCgroup string `json:"sensitive_cgroup"`
	// QoSFile is the report file the application rewrites each period
	// ("<value> <threshold>").
	QoSFile string `json:"qos_file"`
}

// Name returns the lane's effective application name.
func (d LaneDef) Name() string {
	if d.App != "" {
		return d.App
	}
	return path.Base(d.SensitiveCgroup)
}

// LanesFile is the root of lanes.json.
type LanesFile struct {
	// Version must be LanesVersion.
	Version int `json:"version"`
	// Lanes declares the complete desired lane set: a reload diffs it
	// against the running set, so omitting a lane removes it.
	Lanes []LaneDef `json:"lanes"`
}

// ParseLanes decodes a lanes.json document strictly: unknown fields are
// an error (a typoed key must not silently become "use the default"),
// and trailing garbage after the document is rejected.
func ParseLanes(data []byte) (*LanesFile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var lf LanesFile
	if err := dec.Decode(&lf); err != nil {
		return nil, fmt.Errorf("daemon: parse lanes file: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil || len(extra) > 0 {
		return nil, fmt.Errorf("daemon: lanes file has trailing data after the document")
	}
	return &lf, nil
}

// LoadLanes reads and strictly parses a lanes.json file.
func LoadLanes(path string) (*LanesFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("daemon: read lanes file: %w", err)
	}
	return ParseLanes(data)
}

// Validate is the static half of the two-phase reload: everything that
// can be rejected without touching the runtime is rejected here, all
// problems at once, so one edit fixes a bad file. batch is the daemon's
// shared batch cgroup set (lanes.json does not manage it; a sensitive
// cgroup colliding with it would throttle the protected application).
func (lf *LanesFile) Validate(batch []string) error {
	var errs []string
	fail := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	if lf.Version != LanesVersion {
		fail("version %d unsupported (want %d)", lf.Version, LanesVersion)
	}
	if len(lf.Lanes) == 0 {
		fail("no lanes declared: the diff would remove every lane and leave nothing protected")
	}
	batchSet := make(map[string]bool, len(batch))
	for _, cg := range batch {
		batchSet[cg] = true
	}
	apps := map[string]bool{}
	cgroups := map[string]bool{}
	qos := map[string]string{}
	for i, d := range lf.Lanes {
		where := fmt.Sprintf("lane %d (%s)", i, d.Name())
		if d.SensitiveCgroup == "" {
			where = fmt.Sprintf("lane %d", i)
			fail("%s: sensitive_cgroup is required", where)
		}
		if d.QoSFile == "" {
			fail("%s: qos_file is required (the QoS report is the violation signal)", where)
		}
		if app := d.Name(); app != "" {
			if apps[app] {
				fail("%s: application name %q declared twice", where, app)
			}
			apps[app] = true
		}
		if cg := d.SensitiveCgroup; cg != "" {
			if cgroups[cg] {
				fail("%s: cgroup %q declared twice", where, cg)
			}
			cgroups[cg] = true
			if batchSet[cg] {
				fail("%s: cgroup %q is a batch cgroup; throttling the sensitive application defeats the purpose", where, cg)
			}
		}
		if f := d.QoSFile; f != "" {
			if prev, ok := qos[f]; ok {
				fail("%s: qos_file %q already used by lane %q", where, f, prev)
			}
			qos[f] = d.Name()
		}
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return fmt.Errorf("daemon: invalid lanes file:\n  - %s", joinLines(errs))
	}
	return nil
}

func joinLines(errs []string) string {
	out := errs[0]
	for _, e := range errs[1:] {
		out += "\n  - " + e
	}
	return out
}

// LaneDiff is the outcome of comparing a validated lanes file against
// the running set, keyed by application name. Apply order matters and is
// adds, changes, removes: the runtime never passes through a state with
// fewer protected applications than both the old and new configs agree
// on, and a mid-apply failure leaves extra protection, not less.
type LaneDiff struct {
	Add    []LaneDef
	Change []LaneDef
	Remove []string
}

// Empty reports whether the diff changes nothing.
func (d LaneDiff) Empty() bool {
	return len(d.Add) == 0 && len(d.Change) == 0 && len(d.Remove) == 0
}

// String renders a compact summary for the daemon log.
func (d LaneDiff) String() string {
	return fmt.Sprintf("+%d ~%d -%d", len(d.Add), len(d.Change), len(d.Remove))
}

// DiffLanes compares the desired lane set against the current one.
// Order within each slice follows the desired file (adds, changes) or
// the current set (removes), so application is deterministic.
func DiffLanes(current, desired []LaneDef) LaneDiff {
	cur := make(map[string]LaneDef, len(current))
	for _, d := range current {
		cur[d.Name()] = d
	}
	var out LaneDiff
	seen := make(map[string]bool, len(desired))
	for _, d := range desired {
		name := d.Name()
		seen[name] = true
		old, ok := cur[name]
		switch {
		case !ok:
			out.Add = append(out.Add, d)
		case old != d:
			out.Change = append(out.Change, d)
		}
	}
	for _, d := range current {
		if !seen[d.Name()] {
			out.Remove = append(out.Remove, d.Name())
		}
	}
	return out
}
