package daemon

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeLanes(t *testing.T, path, doc string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReloaderTwoPhase(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lanes.json")
	initial := []LaneDef{{App: "vlc", SensitiveCgroup: "s/vlc", QoSFile: "q1"}}
	r := NewReloader(path, initial, []string{"s/b1"})

	// Phase one rejects a bad file with a reason; nothing staged.
	writeLanes(t, path, `{"version":1,"lanes":[{"app":"x","sensitive_cgroup":"s/b1","qos_file":"q"}]}`)
	err := r.Queue()
	if err == nil || !strings.Contains(err.Error(), "batch cgroup") {
		t.Fatalf("bad config error = %v", err)
	}
	if _, _, ok := r.TakePending(); ok {
		t.Fatal("rejected config was staged")
	}
	st := r.Status()
	if st.LastError == "" || st.Generation != 0 || st.Pending {
		t.Fatalf("status after rejection = %+v", st)
	}

	// A good file stages; the rejection reason clears.
	writeLanes(t, path, `{"version":1,"lanes":[`+
		`{"app":"vlc","sensitive_cgroup":"s/vlc","qos_file":"q1"},`+
		`{"app":"kv","sensitive_cgroup":"s/kv","qos_file":"q2"}]}`)
	if err := r.Queue(); err != nil {
		t.Fatal(err)
	}
	st = r.Status()
	if st.LastError != "" || st.Generation != 1 || !st.Pending {
		t.Fatalf("status after accept = %+v", st)
	}

	// Phase two: the loop takes the staged set, diffs, commits.
	lanes, gen, ok := r.TakePending()
	if !ok || gen != 1 || len(lanes) != 2 {
		t.Fatalf("TakePending = %v gen %d ok %v", lanes, gen, ok)
	}
	if _, _, ok := r.TakePending(); ok {
		t.Fatal("stage not cleared after take")
	}
	d := r.Diff(lanes)
	if len(d.Add) != 1 || d.Add[0].App != "kv" || len(d.Remove) != 0 {
		t.Fatalf("diff = %+v", d)
	}
	r.Commit(gen, lanes)
	st = r.Status()
	if st.Applied != 1 || st.Pending || len(st.Lanes) != 2 {
		t.Fatalf("status after commit = %+v", st)
	}
	if st.AppliedAt.IsZero() || time.Since(st.AppliedAt) > time.Minute {
		t.Fatalf("AppliedAt = %v", st.AppliedAt)
	}

	// A later bad edit does not cancel an already-staged good one.
	if err := r.Queue(); err != nil { // same good file again
		t.Fatal(err)
	}
	writeLanes(t, path, `not json`)
	if err := r.Queue(); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, gen, ok := r.TakePending(); !ok || gen != 2 {
		t.Fatalf("staged good config lost after bad edit (gen %d ok %v)", gen, ok)
	}
}

func TestWatcherDetectsRewriteAndRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lanes.json")
	writeLanes(t, path, `{"version":1,"lanes":[]}`)
	w := NewWatcher(path)
	if w.Changed() {
		t.Fatal("primed watcher fired without a change")
	}

	// Same size, newer mtime.
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	if !w.Changed() {
		t.Fatal("mtime change missed")
	}
	if w.Changed() {
		t.Fatal("watcher fired twice for one change")
	}

	// Write-temp-then-rename (what editors and config management do).
	tmp := filepath.Join(dir, "lanes.json.tmp")
	writeLanes(t, tmp, `{"version":1,"lanes":[{"sensitive_cgroup":"s/a","qos_file":"q"}]}`)
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	if !w.Changed() {
		t.Fatal("rename-over missed")
	}

	// Missing file is not a change; reappearing is.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if w.Changed() {
		t.Fatal("deletion reported as a change")
	}
	writeLanes(t, path, `{"version":1,"lanes":[]}`)
	if !w.Changed() {
		t.Fatal("reappearance missed")
	}

	// A watcher on a not-yet-existing path fires when the file lands.
	w2 := NewWatcher(filepath.Join(dir, "later.json"))
	if w2.Changed() {
		t.Fatal("missing file fired")
	}
	writeLanes(t, filepath.Join(dir, "later.json"), `{}`)
	if !w2.Changed() {
		t.Fatal("file landing missed")
	}
}
