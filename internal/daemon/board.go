package daemon

import (
	"sync"

	"repro/internal/core"
)

// Status is the daemon's point-in-time operational state: what /readyz
// serves and what the control loop publishes after every period. It is
// a value — the loop builds a fresh one and swaps it in, so admin
// handlers never read half-updated state.
type Status struct {
	// Ready means the control loop is running periods. False before the
	// first period, after shutdown begins, and while the loop is wedged.
	Ready bool `json:"ready"`
	// Periods counts completed host periods.
	Periods int `json:"periods"`
	// Lanes is every lane's health as of the last period boundary.
	Lanes []core.LaneHealth `json:"lanes"`
	// WatchdogStalled is set while the loop watchdog considers the loop
	// wedged; WatchdogStalls counts distinct stall episodes.
	WatchdogStalled bool `json:"watchdog_stalled"`
	WatchdogStalls  int  `json:"watchdog_stalls"`
	// LedgerRecovered is how many cgroups boot-time ledger replay thawed;
	// LedgerRecoveryError is the (non-fatal) replay failure, if any.
	LedgerRecovered     int    `json:"ledger_recovered"`
	LedgerRecoveryError string `json:"ledger_recovery_error,omitempty"`
	// Reload is the hot-reload pipeline state.
	Reload ReloadStatus `json:"reload"`
}

// Board is the thread-safe mailbox between the single-threaded control
// loop (writer) and the admin handlers (readers).
type Board struct {
	mu sync.RWMutex
	s  Status
}

// NewBoard returns a board holding the zero Status (not ready).
func NewBoard() *Board { return &Board{} }

// Update mutates the status under the lock. The callback must not
// retain the pointer.
func (b *Board) Update(fn func(*Status)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fn(&b.s)
}

// Snapshot returns a copy of the current status. The Lanes slice is
// copied so a handler marshalling it never races the next Update.
func (b *Board) Snapshot() Status {
	b.mu.RLock()
	defer b.mu.RUnlock()
	s := b.s
	s.Lanes = append([]core.LaneHealth(nil), b.s.Lanes...)
	s.Reload.Lanes = append([]LaneDef(nil), b.s.Reload.Lanes...)
	return s
}
