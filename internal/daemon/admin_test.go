package daemon

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/stream"
)

func newTestAdmin(t *testing.T, cfg AdminConfig) *httptest.Server {
	t.Helper()
	if cfg.Board == nil {
		cfg.Board = NewBoard()
	}
	if cfg.StreamHeartbeat == 0 {
		cfg.StreamHeartbeat = 50 * time.Millisecond
	}
	a, err := NewAdmin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestAdminRequiresBoard(t *testing.T) {
	if _, err := NewAdmin(AdminConfig{}); err == nil {
		t.Fatal("nil board accepted")
	}
}

func TestAdminHealthAndReadiness(t *testing.T) {
	board := NewBoard()
	ts := newTestAdmin(t, AdminConfig{Board: board})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}

	// Not ready before the first period.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz before first period = %d, want 503", resp.StatusCode)
	}

	board.Update(func(s *Status) {
		s.Ready = true
		s.Periods = 7
		s.Lanes = []core.LaneHealth{{App: "vlc", Periods: 7, Throttled: true, Level: 0.5}}
		s.LedgerRecovered = 2
	})
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz when ready = %d", resp.StatusCode)
	}
	if got.Periods != 7 || len(got.Lanes) != 1 || got.Lanes[0].App != "vlc" || got.LedgerRecovered != 2 {
		t.Errorf("readyz body = %+v", got)
	}

	// A stalled watchdog flips readiness even while the loop nominally runs.
	board.Update(func(s *Status) { s.WatchdogStalled = true })
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while stalled = %d, want 503", resp.StatusCode)
	}
}

func TestAdminMetrics(t *testing.T) {
	ts := newTestAdmin(t, AdminConfig{})
	resp, _ := http.Get(ts.URL + "/metrics")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("metrics without a set = %d, want 501", resp.StatusCode)
	}

	ms := stream.NewMetricSet()
	ms.Counter("stayaway_test_total", "A test counter.").Add(3)
	ts2 := newTestAdmin(t, AdminConfig{Metrics: ms})
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "stayaway_test_total 3") {
		t.Errorf("metrics body:\n%s", body)
	}
}

func TestAdminReload(t *testing.T) {
	ts := newTestAdmin(t, AdminConfig{})
	resp, _ := http.Post(ts.URL+"/v1/reload", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("reload without wiring = %d, want 501", resp.StatusCode)
	}

	var calls int
	var fail error
	ts2 := newTestAdmin(t, AdminConfig{Reload: func() error { calls++; return fail }})
	resp, err := http.Post(ts2.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || calls != 1 {
		t.Errorf("reload = %d (calls %d), want 202", resp.StatusCode, calls)
	}

	fail = fmt.Errorf("daemon: invalid lanes file: version 9")
	resp, err = http.Post(ts2.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("rejected reload = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body), "version 9") {
		t.Errorf("rejection body misses the reason: %s", body)
	}

	// GET is not a reload.
	resp, _ = http.Get(ts2.URL + "/v1/reload")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reload = %d, want 405", resp.StatusCode)
	}
}

func TestAdminEventsSSE(t *testing.T) {
	hub := stream.NewHub(stream.HubConfig{Epoch: 42})
	ts := newTestAdmin(t, AdminConfig{Hub: hub})

	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	dec := stream.NewDecoder(resp.Body)

	// First frame is the liveness heartbeat.
	ev, err := dec.Next()
	if err != nil || ev.Type != stream.TypeHeartbeat {
		t.Fatalf("first frame = %+v, %v", ev, err)
	}

	published := hub.Publish(PeriodEvent(core.Event{Period: 3, App: "vlc", Throttled: true}))
	hub.Publish(LaneEvent(LaneChange{Op: "add", App: "kv"}))
	hub.Publish(ReloadEvent(ReloadOutcome{Generation: 1, Diff: "+1 ~0 -0"}))

	var got []stream.Event
	for len(got) < 3 {
		ev, err := dec.Next()
		if err != nil {
			t.Fatalf("decode: %v (got %d events)", err, len(got))
		}
		if ev.Type == stream.TypeHeartbeat {
			continue
		}
		got = append(got, ev)
	}
	if got[0].Type != TypePeriod {
		t.Errorf("event 0 = %+v", got[0])
	}
	// App and the period detail ride inside the JSON payload on the wire.
	var pe core.Event
	if err := json.Unmarshal(got[0].Data, &pe); err != nil || pe.App != "vlc" || pe.Period != 3 || !pe.Throttled {
		t.Errorf("period payload = %+v, %v", pe, err)
	}
	if got[1].Type != TypeLane || got[2].Type != TypeReload {
		t.Errorf("event types = %s, %s", got[1].Type, got[2].Type)
	}

	// Resume from the first event's ID: replay delivers the later two.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/events", nil)
	req.Header.Set("Last-Event-ID", published.ID())
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	dec2 := stream.NewDecoder(resp2.Body)
	var resumed []stream.Event
	for len(resumed) < 2 {
		ev, err := dec2.Next()
		if err != nil {
			t.Fatalf("resume decode: %v", err)
		}
		if ev.Type == stream.TypeHeartbeat {
			continue
		}
		if ev.Type == stream.TypeReset {
			t.Fatal("valid resume position got a reset")
		}
		resumed = append(resumed, ev)
	}
	if resumed[0].Type != TypeLane || resumed[1].Type != TypeReload {
		t.Errorf("resumed types = %s, %s", resumed[0].Type, resumed[1].Type)
	}

	// A resume position from another incarnation resets.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/events", nil)
	req.Header.Set("Last-Event-ID", "7:5")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	ev, err = stream.NewDecoder(resp3.Body).Next()
	if err != nil || ev.Type != stream.TypeReset {
		t.Fatalf("cross-epoch resume = %+v, %v, want reset", ev, err)
	}
}

func TestAdminHMAC(t *testing.T) {
	key := []byte("fleet-secret")
	board := NewBoard()
	ts := newTestAdmin(t, AdminConfig{
		Board:  board,
		Reload: func() error { return nil },
	})
	tsSigned := newTestAdmin(t, AdminConfig{
		Board:  board,
		Reload: func() error { return nil },
		Key:    key,
	})

	// Unsigned server takes everything.
	resp, _ := http.Post(ts.URL+"/v1/reload", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("unsigned server reload = %d", resp.StatusCode)
	}

	// Signed server: probes stay open (kubelets do not sign)...
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(tsSigned.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusUnauthorized {
			t.Errorf("probe %s rejected as unsigned", path)
		}
	}
	// ...but an unsigned reload is refused...
	resp, _ = http.Post(tsSigned.URL+"/v1/reload", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unsigned reload on signed server = %d, want 401", resp.StatusCode)
	}
	// ...and a signed one goes through.
	req, _ := http.NewRequest(http.MethodPost, tsSigned.URL+"/v1/reload", nil)
	fleet.SignRequest(key, req, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("signed reload = %d, want 202", resp.StatusCode)
	}
}

func TestBoardSnapshotIsolation(t *testing.T) {
	b := NewBoard()
	b.Update(func(s *Status) {
		s.Ready = true
		s.Lanes = []core.LaneHealth{{App: "a"}}
	})
	snap := b.Snapshot()
	snap.Lanes[0].App = "mutated"
	if got := b.Snapshot().Lanes[0].App; got != "a" {
		t.Errorf("snapshot mutation leaked into the board: %q", got)
	}
}
