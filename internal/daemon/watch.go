package daemon

import (
	"os"
	"time"
)

// Watcher detects lanes-file changes by polling mtime and size — no
// fsnotify, no new dependency, and it keeps working across the
// write-temp-then-rename pattern editors and config management use
// (the rename changes the inode; a stat by path sees the new file).
// Polling is the daemon's own period cadence, so the watcher adds no
// goroutine: the control loop calls Changed between periods.
type Watcher struct {
	path  string
	mtime time.Time
	size  int64
	// missing tracks whether the last stat failed, so a file that
	// disappears and comes back identical still triggers.
	missing bool
}

// NewWatcher primes a watcher on the file's current state, so the
// configuration the daemon just started from does not immediately
// re-trigger as a "change".
func NewWatcher(path string) *Watcher {
	w := &Watcher{path: path}
	w.stat()
	return w
}

// Changed stats the file and reports whether its mtime or size moved
// since the last call. A missing file is not a change (half-written
// deploys recover when the file lands); the transition back to existing
// is one.
func (w *Watcher) Changed() bool {
	prevMtime, prevSize, prevMissing := w.mtime, w.size, w.missing
	w.stat()
	if w.missing {
		return false
	}
	if prevMissing {
		return true
	}
	return !w.mtime.Equal(prevMtime) || w.size != prevSize
}

func (w *Watcher) stat() {
	fi, err := os.Stat(w.path)
	if err != nil {
		w.missing = true
		return
	}
	w.missing = false
	w.mtime = fi.ModTime()
	w.size = fi.Size()
}
