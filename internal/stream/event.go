// Package stream is the push half of the fleet control plane: a
// publish/subscribe hub with replayable event IDs, a Server-Sent-Events
// wire codec, and a small text-format metrics surface. The registry
// publishes every accepted template update into a Hub; hosts subscribe
// over HTTP and learn about a violation discovered anywhere in the fleet
// within one control period, instead of waiting out a poll interval.
package stream

import (
	"fmt"
	"strconv"
	"strings"
)

// Event types on the template stream.
const (
	// TypeDelta carries a statespace.TemplateDelta payload: the states of
	// one consensus template that changed in one registry Put.
	TypeDelta = "delta"
	// TypeReset tells subscribers their resume position is gone (hub
	// restart, or replay ring overrun): drop local sync state and perform
	// a full conditional-GET resync.
	TypeReset = "reset"
	// TypeHeartbeat is a liveness tick; it carries no payload and is never
	// replayed. Clients use it to arm read deadlines.
	TypeHeartbeat = "heartbeat"
)

// Event is one message on the template stream.
type Event struct {
	// Epoch identifies the hub incarnation that numbered this event; Seq
	// is the position within that incarnation. Together they form the
	// event ID clients send back as Last-Event-ID to resume.
	Epoch int64
	Seq   int64
	// Type is one of the Type* constants.
	Type string
	// App and Schema name the consensus template a delta belongs to.
	App    string
	Schema string
	// Revision is the registry revision the delta brings a client to.
	Revision int
	// Data is the JSON-encoded payload (a statespace.TemplateDelta for
	// TypeDelta events); empty for heartbeats and resets.
	Data []byte
}

// ID renders the event's resume token: "epoch:seq".
func (e Event) ID() string {
	return strconv.FormatInt(e.Epoch, 10) + ":" + strconv.FormatInt(e.Seq, 10)
}

// ParseEventID parses an "epoch:seq" resume token. IDs are client input
// (the Last-Event-ID header), so malformed tokens are an error, not a
// panic; callers treat the error as "cannot resume".
func ParseEventID(s string) (epoch, seq int64, err error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, 0, fmt.Errorf("stream: event id %q has no epoch:seq separator", s)
	}
	epoch, err = strconv.ParseInt(s[:i], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("stream: event id %q: bad epoch: %w", s, err)
	}
	seq, err = strconv.ParseInt(s[i+1:], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("stream: event id %q: bad seq: %w", s, err)
	}
	if epoch < 0 || seq < 0 {
		return 0, 0, fmt.Errorf("stream: event id %q: negative component", s)
	}
	return epoch, seq, nil
}
