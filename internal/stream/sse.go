package stream

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Server-Sent-Events wire codec. The stream is plain HTTP with
// Content-Type text/event-stream; each event is a block of "field: value"
// lines ended by a blank line:
//
//	id: 1722440000:17
//	event: delta
//	data: {"from_revision":3,...}
//
// The codec speaks the standard subset this control plane needs — id,
// event, data (possibly multi-line), and comment lines (": ...") used as
// heartbeats — so any off-the-shelf SSE client can also consume the feed.

// maxSSELineBytes bounds one line of an incoming stream; a delta patch
// for a large template fits comfortably, a malicious or corrupt stream
// does not get to buffer unbounded memory.
const maxSSELineBytes = 16 << 20

// Encoder writes events to an SSE stream.
type Encoder struct {
	w io.Writer
}

// NewEncoder wraps w. The caller owns flushing (http.Flusher) after each
// event so a push actually leaves the server's buffers.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// WriteEvent encodes one event. App, Schema, and Revision ride inside
// Data (the delta payload carries them); the wire fields are id, event,
// and data. Data containing newlines is split across data: lines per the
// SSE spec.
func (e *Encoder) WriteEvent(ev Event) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "id: %s\n", ev.ID())
	if ev.Type != "" {
		fmt.Fprintf(&b, "event: %s\n", ev.Type)
	}
	if len(ev.Data) > 0 {
		for _, line := range strings.Split(string(ev.Data), "\n") {
			fmt.Fprintf(&b, "data: %s\n", line)
		}
	}
	b.WriteByte('\n')
	_, err := e.w.Write(b.Bytes())
	return err
}

// WriteHeartbeat emits a comment-line heartbeat. Comments carry no ID and
// are not replayable; they exist so both ends can tell a quiet stream
// from a dead one.
func (e *Encoder) WriteHeartbeat() error {
	_, err := io.WriteString(e.w, ": heartbeat\n\n")
	return err
}

// Decoder reads events from an SSE stream.
type Decoder struct {
	r *bufio.Reader
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 32<<10)}
}

// Next returns the next event block. Comment-only blocks come back as
// TypeHeartbeat events so callers can arm liveness deadlines without
// special-casing the wire format. io.EOF reports a cleanly ended stream;
// a block cut off mid-way reports io.ErrUnexpectedEOF.
func (d *Decoder) Next() (Event, error) {
	var ev Event
	sawField := false
	sawComment := false
	var data []string
	for {
		line, err := d.readLine()
		if err != nil {
			if err == io.EOF && (sawField || sawComment) {
				return ev, io.ErrUnexpectedEOF
			}
			return ev, err
		}
		if line == "" { // blank line: end of block
			if sawField {
				if len(data) > 0 {
					ev.Data = []byte(strings.Join(data, "\n"))
				}
				return ev, nil
			}
			if sawComment {
				return Event{Type: TypeHeartbeat}, nil
			}
			continue // stray blank line between blocks
		}
		if strings.HasPrefix(line, ":") {
			sawComment = true
			continue
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			epoch, seq, err := ParseEventID(value)
			if err != nil {
				return ev, err
			}
			ev.Epoch, ev.Seq = epoch, seq
			sawField = true
		case "event":
			ev.Type = value
			sawField = true
		case "data":
			data = append(data, value)
			sawField = true
		default:
			// Unknown fields are ignored per the SSE spec, so the wire
			// format can grow without breaking deployed clients.
		}
	}
}

// readLine reads one \n-terminated line (trailing \r stripped, so both
// LF and CRLF streams parse), enforcing maxSSELineBytes.
func (d *Decoder) readLine() (string, error) {
	var buf []byte
	for {
		chunk, err := d.r.ReadSlice('\n')
		buf = append(buf, chunk...)
		if len(buf) > maxSSELineBytes {
			return "", fmt.Errorf("stream: SSE line exceeds %d bytes", maxSSELineBytes)
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			if err == io.EOF && len(buf) > 0 {
				return "", io.ErrUnexpectedEOF
			}
			return "", err
		}
		line := strings.TrimSuffix(string(buf), "\n")
		return strings.TrimSuffix(line, "\r"), nil
	}
}
