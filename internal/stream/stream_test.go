package stream

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestEventIDRoundTrip(t *testing.T) {
	ev := Event{Epoch: 42, Seq: 7}
	epoch, seq, err := ParseEventID(ev.ID())
	if err != nil || epoch != 42 || seq != 7 {
		t.Fatalf("ParseEventID(%q) = %d, %d, %v", ev.ID(), epoch, seq, err)
	}
	for _, bad := range []string{"", "42", "a:b", "-1:2", "1:-2", "1:2:3"} {
		if _, _, err := ParseEventID(bad); err == nil {
			t.Errorf("ParseEventID(%q) accepted", bad)
		}
	}
}

func TestHubPublishAndSubscribe(t *testing.T) {
	h := NewHub(HubConfig{Epoch: 5})
	defer h.Close()
	sub, resumed := h.Subscribe("")
	if sub == nil || resumed {
		t.Fatalf("Subscribe = %v, %v", sub, resumed)
	}
	h.Publish(Event{Type: TypeDelta, App: "vlc", Data: []byte("x")})
	h.Publish(Event{Type: TypeDelta, App: "kv", Data: []byte("y")})

	ev := <-sub.C
	if ev.Epoch != 5 || ev.Seq != 1 || ev.App != "vlc" {
		t.Fatalf("first event = %+v", ev)
	}
	ev = <-sub.C
	if ev.Seq != 2 || ev.App != "kv" {
		t.Fatalf("second event = %+v", ev)
	}
	if st := h.Stats(); st.Active != 1 || st.Published != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHubResumeReplaysBacklog(t *testing.T) {
	h := NewHub(HubConfig{Epoch: 9})
	defer h.Close()
	for i := 0; i < 3; i++ {
		h.Publish(Event{Type: TypeDelta, App: "vlc"})
	}
	// A client that saw seq 1 resumes and must get 2 and 3 replayed.
	sub, resumed := h.Subscribe(Event{Epoch: 9, Seq: 1}.ID())
	if sub == nil || !resumed {
		t.Fatalf("Subscribe = %v, resumed=%v", sub, resumed)
	}
	if ev := <-sub.C; ev.Seq != 2 {
		t.Fatalf("replayed seq = %d, want 2", ev.Seq)
	}
	if ev := <-sub.C; ev.Seq != 3 {
		t.Fatalf("replayed seq = %d, want 3", ev.Seq)
	}
	// Fully caught up resumes too, with nothing replayed.
	if _, resumed := h.Subscribe(Event{Epoch: 9, Seq: 3}.ID()); !resumed {
		t.Error("caught-up client did not resume")
	}
}

func TestHubResumeRejectsWrongEpochOrLostHistory(t *testing.T) {
	h := NewHub(HubConfig{Epoch: 2, Replay: 2})
	defer h.Close()
	for i := 0; i < 10; i++ {
		h.Publish(Event{Type: TypeDelta})
	}
	if _, resumed := h.Subscribe(Event{Epoch: 1, Seq: 9}.ID()); resumed {
		t.Error("resumed across an epoch change")
	}
	// Seq 3 fell out of the 2-event replay ring.
	if _, resumed := h.Subscribe(Event{Epoch: 2, Seq: 3}.ID()); resumed {
		t.Error("resumed from history the ring no longer holds")
	}
}

func TestHubOverflowDropsSlowSubscriber(t *testing.T) {
	h := NewHub(HubConfig{Epoch: 1, QueueLen: 2})
	defer h.Close()
	slow, _ := h.Subscribe("")
	fast, _ := h.Subscribe("")
	for i := 0; i < 5; i++ {
		h.Publish(Event{Type: TypeDelta})
		<-fast.C // fast consumer keeps up
	}
	// slow never drained: 2 buffered, then dropped and closed.
	n := 0
	for range slow.C {
		n++
	}
	if n != 2 {
		t.Fatalf("slow subscriber got %d buffered events, want 2", n)
	}
	st := h.Stats()
	if st.Dropped == 0 {
		t.Fatalf("stats = %+v, want a drop", st)
	}
	if st.Active != 1 {
		t.Fatalf("active = %d, want 1 (the fast one)", st.Active)
	}
}

func TestSSECodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	want := []Event{
		{Epoch: 3, Seq: 1, Type: TypeDelta, App: "vlc", Data: []byte(`{"a":1}`)},
		{Epoch: 3, Seq: 2, Type: TypeReset, Data: []byte("line1\nline2")},
	}
	for _, ev := range want {
		if err := enc.WriteEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.WriteHeartbeat(); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(&buf)
	for i, w := range want {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got.Epoch != w.Epoch || got.Seq != w.Seq || got.Type != w.Type || !bytes.Equal(got.Data, w.Data) {
			t.Fatalf("event %d = %+v, want %+v", i, got, w)
		}
	}
	hb, err := dec.Next()
	if err != nil || hb.Type != TypeHeartbeat {
		t.Fatalf("heartbeat = %+v, %v", hb, err)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("EOF = %v", err)
	}
}

func TestSSEDecoderTruncatedStream(t *testing.T) {
	dec := NewDecoder(strings.NewReader("event: delta\ndata: {}"))
	if _, err := dec.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestMetricSetRendering(t *testing.T) {
	m := NewMetricSet()
	m.Counter("stayaway_puts_total", "Accepted puts.").Add(3)
	m.Gauge("stayaway_rev", "Current revision.", "app", "vlc", "schema", "s1").Set(7)
	m.Gauge("stayaway_rev", "Current revision.", "app", `k"v\x`).Set(2)

	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP stayaway_puts_total Accepted puts.",
		"# TYPE stayaway_puts_total counter",
		"stayaway_puts_total 3",
		"# TYPE stayaway_rev gauge",
		`stayaway_rev{app="vlc",schema="s1"} 7`,
		`stayaway_rev{app="k\"v\\x"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Re-render is stable (registration order, sorted series).
	var buf2 bytes.Buffer
	if _, err := m.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("rendering is not deterministic")
	}
}
