package stream

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Prometheus-style text metrics, stdlib only. The control plane exposes a
// handful of gauges and counters (template revisions, delta bytes served,
// active streams, merge conflicts); this renders them in the exposition
// text format so any standard scraper can read them, without pulling a
// client library into the module.

// MetricSet is an ordered collection of metrics rendered in registration
// order with deterministically sorted label sets. Safe for concurrent use.
type MetricSet struct {
	mu    sync.Mutex
	order []*metric
	byKey map[string]*metric
}

type metric struct {
	name, help, kind string // kind: "counter" | "gauge"
	values           map[string]*Value
}

// Value is one time series: a metric plus one concrete label set.
// Mutations are atomic with respect to rendering.
type Value struct {
	set    *MetricSet
	labels string // rendered {k="v",...} suffix, "" for no labels
	v      float64
}

// NewMetricSet creates an empty set.
func NewMetricSet() *MetricSet {
	return &MetricSet{byKey: make(map[string]*metric)}
}

// Counter registers (or returns the existing) counter name with the given
// labels as alternating key, value pairs. Counters only go up; use Add.
func (s *MetricSet) Counter(name, help string, labels ...string) *Value {
	return s.value(name, help, "counter", labels)
}

// Gauge registers (or returns the existing) gauge name with the given
// labels. Gauges move freely; use Set or Add.
func (s *MetricSet) Gauge(name, help string, labels ...string) *Value {
	return s.value(name, help, "gauge", labels)
}

func (s *MetricSet) value(name, help, kind string, labels []string) *Value {
	if len(labels)%2 != 0 {
		panic("stream: metric labels must be key, value pairs")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.byKey[name]
	if !ok {
		m = &metric{name: name, help: help, kind: kind, values: make(map[string]*Value)}
		//lint:stayaway-ignore boundedgrowth metric names are a static registration set sized by call sites in code, not by runtime input; the insert is a first-use memoization of that fixed set
		s.byKey[name] = m
		//lint:stayaway-ignore boundedgrowth same static registration set as byKey: order only records first-use of each code-declared metric name
		s.order = append(s.order, m)
	}
	ls := renderLabels(labels)
	v, ok := m.values[ls]
	if !ok {
		v = &Value{set: s, labels: ls}
		m.values[ls] = v
	}
	return v
}

// Add increments the series by n.
func (v *Value) Add(n float64) {
	v.set.mu.Lock()
	v.v += n
	v.set.mu.Unlock()
}

// Set replaces the series value.
func (v *Value) Set(n float64) {
	v.set.mu.Lock()
	v.v = n
	v.set.mu.Unlock()
}

// Get reads the series value.
func (v *Value) Get() float64 {
	v.set.mu.Lock()
	defer v.set.mu.Unlock()
	return v.v
}

// WriteTo renders the set in the Prometheus text exposition format.
// Output is deterministic: metrics in registration order, series sorted
// by label string.
func (s *MetricSet) WriteTo(w io.Writer) (int64, error) {
	s.mu.Lock()
	var b strings.Builder
	for _, m := range s.order {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		keys := make([]string, 0, len(m.values))
		for k := range m.values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s%s %g\n", m.name, k, m.values[k].v)
		}
	}
	s.mu.Unlock()
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// renderLabels builds the canonical {k="v",...} suffix with keys sorted
// and values escaped per the exposition format.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(p.v)
		fmt.Fprintf(&b, `%s="%s"`, p.k, esc)
	}
	b.WriteByte('}')
	return b.String()
}
