package stream

import (
	"sync"
)

// Default hub sizing. The replay ring bounds how far behind a
// reconnecting client may be and still resume without a full resync; the
// per-subscriber queue bounds how much memory one stalled connection can
// pin before the hub cuts it loose.
const (
	DefaultReplay   = 256
	DefaultQueueLen = 64
)

// HubConfig tunes a Hub.
type HubConfig struct {
	// Epoch identifies this hub incarnation in event IDs. A client
	// resuming with a Last-Event-ID from a different epoch gets a reset
	// instead of a replay, because the new incarnation cannot know what
	// the old one sent. Servers pass something restart-unique (process
	// start time); tests pass a constant. Zero is a valid epoch.
	Epoch int64
	// Replay is the replay ring capacity; 0 uses DefaultReplay, negative
	// disables resume entirely.
	Replay int
	// QueueLen is the per-subscriber queue capacity; 0 uses
	// DefaultQueueLen. A subscriber whose queue is full when an event
	// arrives is dropped — its channel closes and the client reconnects —
	// rather than letting one slow reader stall or bloat the hub.
	QueueLen int
}

// Hub fans events out to subscribers, numbering them with this
// incarnation's epoch and a monotonic sequence. Safe for concurrent use.
type Hub struct {
	cfg HubConfig

	mu      sync.Mutex
	seq     int64
	ring    []Event // last cfg.Replay events, oldest first
	subs    map[*Subscriber]struct{}
	closed  bool
	total   int64 // events published
	dropped int64 // subscribers dropped for slow consumption
}

// Subscriber is one attached consumer. Events arrive on C; the channel
// closes when the subscriber is dropped (slow consumption or hub close),
// which a client must treat as "reconnect and resume".
type Subscriber struct {
	C <-chan Event

	hub  *Hub
	ch   chan Event
	once sync.Once
}

// Close detaches the subscriber and closes its channel. Safe to call
// more than once and concurrently with hub publishes.
func (s *Subscriber) Close() { s.hub.drop(s) }

// NewHub creates a hub.
func NewHub(cfg HubConfig) *Hub {
	if cfg.Replay == 0 {
		cfg.Replay = DefaultReplay
	}
	if cfg.Replay < 0 {
		cfg.Replay = 0
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultQueueLen
	}
	return &Hub{cfg: cfg, subs: make(map[*Subscriber]struct{})}
}

// Epoch reports the hub's incarnation ID.
func (h *Hub) Epoch() int64 { return h.cfg.Epoch }

// Publish numbers the event (Epoch and Seq are assigned by the hub,
// whatever the caller set), appends it to the replay ring, and fans it
// out. Subscribers too slow to keep a queue slot free are dropped. After
// Close, Publish is a no-op.
func (h *Hub) Publish(ev Event) Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ev
	}
	h.seq++
	ev.Epoch = h.cfg.Epoch
	ev.Seq = h.seq
	h.total++
	if h.cfg.Replay > 0 {
		if len(h.ring) == h.cfg.Replay {
			copy(h.ring, h.ring[1:])
			h.ring = h.ring[:len(h.ring)-1]
		}
		h.ring = append(h.ring, ev)
	}
	for s := range h.subs {
		select {
		case s.ch <- ev:
		default:
			delete(h.subs, s)
			s.once.Do(func() { close(s.ch) })
			h.dropped++
		}
	}
	return ev
}

// Subscribe attaches a consumer. lastID is the client's resume token
// (empty for a fresh subscription). When the token names this epoch and
// the requested position is still in the replay ring, every later event
// is queued before the subscriber sees anything new, and resumed is
// true: the client missed nothing. Otherwise resumed is false and the
// caller must tell the client to full-resync (a TypeReset event on the
// wire). A nil Subscriber is returned after Close.
func (h *Hub) Subscribe(lastID string) (s *Subscriber, resumed bool) {
	var epoch, seq int64
	wantResume := false
	if lastID != "" {
		var err error
		epoch, seq, err = ParseEventID(lastID)
		wantResume = err == nil
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, false
	}
	var backlog []Event
	if wantResume && epoch == h.cfg.Epoch {
		if seq == h.seq {
			resumed = true // current: nothing to replay
		} else if n := len(h.ring); n > 0 && seq >= h.ring[0].Seq-1 && seq < h.seq {
			for _, ev := range h.ring {
				if ev.Seq > seq {
					backlog = append(backlog, ev)
				}
			}
			resumed = true
		}
	}
	qlen := h.cfg.QueueLen
	if qlen < len(backlog)+1 {
		// The queue must absorb the whole backlog, or the subscriber
		// would be dropped for slowness before its first read.
		qlen = len(backlog) + 1
	}
	sub := &Subscriber{hub: h, ch: make(chan Event, qlen)}
	sub.C = sub.ch
	for _, ev := range backlog {
		sub.ch <- ev
	}
	h.subs[sub] = struct{}{}
	return sub, resumed
}

// drop detaches a subscriber, closing its channel if still attached.
func (h *Hub) drop(s *Subscriber) {
	h.mu.Lock()
	_, attached := h.subs[s]
	delete(h.subs, s)
	h.mu.Unlock()
	if attached {
		s.once.Do(func() { close(s.ch) })
	}
}

// Close detaches every subscriber and rejects future publishes and
// subscriptions.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make([]*Subscriber, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.subs = make(map[*Subscriber]struct{})
	h.mu.Unlock()
	for _, s := range subs {
		s.once.Do(func() { close(s.ch) })
	}
}

// HubStats is a point-in-time snapshot for metrics.
type HubStats struct {
	// Active is the number of attached subscribers.
	Active int
	// Published counts events published over the hub's lifetime.
	Published int64
	// Dropped counts subscribers cut loose for slow consumption.
	Dropped int64
	// Seq is the latest assigned sequence number.
	Seq int64
}

// Stats snapshots the hub's counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HubStats{Active: len(h.subs), Published: h.total, Dropped: h.dropped, Seq: h.seq}
}
