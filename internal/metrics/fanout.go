package metrics

// Multi-tenant sample fan-out: a host with several protected sensitive
// applications collects usage samples ONCE per period and hands each
// lane only the slice it understands. A lane's schema covers its own
// sensitive container plus its batch containers; samples for the other
// lanes' sensitive containers must be filtered out before flattening
// (Schema.Flatten rejects unknown VMs by design — silently dropping a
// sample and silently mixing in a foreign one are both bugs).

// Select returns the samples whose VM the predicate accepts, preserving
// order. The input slice is never modified.
func Select(samples []Sample, include func(vm string) bool) []Sample {
	var out []Sample
	for _, s := range samples {
		if include(s.VM) {
			out = append(out, s)
		}
	}
	return out
}

// LaneFilter builds the Select predicate for one lane: its sensitive
// container plus its batch containers, nothing else.
func LaneFilter(sensitiveID string, batchIDs []string) func(vm string) bool {
	keep := make(map[string]bool, len(batchIDs)+1)
	keep[sensitiveID] = true
	for _, id := range batchIDs {
		keep[id] = true
	}
	return func(vm string) bool { return keep[vm] }
}
