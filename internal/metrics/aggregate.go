package metrics

// Logical-VM aggregation (§5): "the monitored metrics of all the batch
// applications are aggregated together to model their collective behaviour
// as a single logical VM. Since resources are shared between all the batch
// applications, contention can be accurately represented by a linear
// composition of resource usage values."

// Aggregate sums the metric values of all samples into a single sample
// named logicalVM. An empty input yields a zero-usage sample (all batch
// applications stopped consume nothing).
func Aggregate(logicalVM string, samples []Sample) Sample {
	out := Sample{VM: logicalVM, Values: make(map[Metric]float64)}
	for _, s := range samples {
		for m, v := range s.Values {
			out.Values[m] += v
		}
	}
	return out
}

// AggregateByRole splits samples into one logical batch sample plus the
// untouched sensitive samples, according to the isBatch predicate. This is
// the exact preprocessing the runtime applies before flattening: with one
// sensitive VM the result is always a two-VM vector regardless of how many
// batch containers are co-located, which keeps the MDS dimensionality (and
// therefore the 2-D stress) stable.
func AggregateByRole(logicalVM string, samples []Sample, isBatch func(vm string) bool) []Sample {
	var batch []Sample
	var rest []Sample
	for _, s := range samples {
		if isBatch(s.VM) {
			batch = append(batch, s)
		} else {
			rest = append(rest, s)
		}
	}
	out := append(rest, Aggregate(logicalVM, batch))
	SortSamples(out)
	return out
}
