// Package metrics defines the measurement vectors Stay-Away monitors
// (§3.1): per-VM resource usage snapshots <CPU, memory, I/O, network>
// collected every period, their [0,1] normalization (§4), the logical-VM
// aggregation of multiple batch applications (§5), and bounded time-series
// storage for trajectory analysis.
package metrics

import (
	"fmt"
	"sort"
)

// Metric identifies one monitored resource dimension.
type Metric string

// The four metric dimensions from the paper's measurement vector
// M(t) = <VMᵢ-CPU, VMᵢ-Memory, VMᵢ-I/O, VMᵢ-network>. The package does not
// restrict callers to these — "Stay-Away does not impose any limitation on
// the choice of metrics" — but they are the defaults everywhere.
const (
	MetricCPU     Metric = "cpu"     // percent of one core (0..100·cores)
	MetricMemory  Metric = "memory"  // resident MB
	MetricIO      Metric = "io"      // disk MB/s
	MetricNetwork Metric = "network" // network Mb/s
)

// DefaultMetrics is the paper's metric set in canonical order.
func DefaultMetrics() []Metric {
	return []Metric{MetricCPU, MetricMemory, MetricIO, MetricNetwork}
}

// Sample is one VM's (container's) resource usage snapshot at a monitoring
// instant.
type Sample struct {
	// VM identifies the container the snapshot belongs to.
	VM string
	// Values maps metric name to raw (un-normalized) usage.
	Values map[Metric]float64
}

// NewSample returns a Sample for vm with the given values copied.
func NewSample(vm string, values map[Metric]float64) Sample {
	cp := make(map[Metric]float64, len(values))
	for k, v := range values {
		cp[k] = v
	}
	return Sample{VM: vm, Values: cp}
}

// Get returns the value for m, or 0 when absent.
func (s Sample) Get(m Metric) float64 { return s.Values[m] }

// Schema fixes the flattening order of (VM, metric) pairs into a numeric
// vector so that vectors from different periods are comparable
// element-by-element. A schema is immutable after construction.
type Schema struct {
	vms     []string
	metrics []Metric
	index   map[string]int // vm -> position
}

// NewSchema builds a schema over the given logical VM names and metrics.
// VM names are kept in the order given; duplicates are rejected.
func NewSchema(vms []string, metrics []Metric) (*Schema, error) {
	if len(vms) == 0 {
		return nil, fmt.Errorf("metrics: schema needs at least one VM")
	}
	if len(metrics) == 0 {
		return nil, fmt.Errorf("metrics: schema needs at least one metric")
	}
	idx := make(map[string]int, len(vms))
	for i, vm := range vms {
		if vm == "" {
			return nil, fmt.Errorf("metrics: empty VM name at position %d", i)
		}
		if _, dup := idx[vm]; dup {
			return nil, fmt.Errorf("metrics: duplicate VM name %q", vm)
		}
		idx[vm] = i
	}
	return &Schema{
		vms:     append([]string(nil), vms...),
		metrics: append([]Metric(nil), metrics...),
		index:   idx,
	}, nil
}

// Dim returns the flattened vector dimension: len(vms) × len(metrics).
func (s *Schema) Dim() int { return len(s.vms) * len(s.metrics) }

// VMs returns the schema's VM names in order.
func (s *Schema) VMs() []string { return append([]string(nil), s.vms...) }

// Metrics returns the schema's metrics in order.
func (s *Schema) Metrics() []Metric { return append([]Metric(nil), s.metrics...) }

// Label returns a human-readable label for vector position i, e.g.
// "web/cpu".
func (s *Schema) Label(i int) string {
	nm := len(s.metrics)
	return fmt.Sprintf("%s/%s", s.vms[i/nm], s.metrics[i%nm])
}

// Flatten converts per-VM samples into a vector ordered by the schema.
// Samples for VMs not in the schema are rejected; missing VMs flatten as
// zeros (a container that is not running uses nothing).
func (s *Schema) Flatten(samples []Sample) ([]float64, error) {
	out := make([]float64, s.Dim())
	nm := len(s.metrics)
	seen := make(map[string]bool, len(samples))
	for _, smp := range samples {
		pos, ok := s.index[smp.VM]
		if !ok {
			return nil, fmt.Errorf("metrics: sample for unknown VM %q", smp.VM)
		}
		if seen[smp.VM] {
			return nil, fmt.Errorf("metrics: duplicate sample for VM %q", smp.VM)
		}
		seen[smp.VM] = true
		for mi, m := range s.metrics {
			out[pos*nm+mi] = smp.Get(m)
		}
	}
	return out, nil
}

// SortSamples orders samples by VM name, for deterministic iteration in
// logs and tests.
func SortSamples(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool { return samples[i].VM < samples[j].VM })
}
