package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func newTestNormalizer(t *testing.T) *Normalizer {
	t.Helper()
	n, err := NewNormalizer(map[Metric]Range{
		MetricCPU:    {Max: 400}, // fixed: 4 cores
		MetricMemory: {Max: 1000, Adaptive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNormalizerValidation(t *testing.T) {
	if _, err := NewNormalizer(nil); err == nil {
		t.Error("empty ranges should error")
	}
	if _, err := NewNormalizer(map[Metric]Range{MetricCPU: {Max: 0}}); err == nil {
		t.Error("zero max should error")
	}
	if _, err := NewNormalizer(map[Metric]Range{MetricCPU: {Max: -5}}); err == nil {
		t.Error("negative max should error")
	}
	if _, err := NewNormalizer(map[Metric]Range{MetricCPU: {Max: math.NaN()}}); err == nil {
		t.Error("NaN max should error")
	}
}

func TestNormalizeFixedRange(t *testing.T) {
	n := newTestNormalizer(t)
	s := NewSample("vm", map[Metric]float64{MetricCPU: 200})
	out := n.Normalize(s)
	if out.Get(MetricCPU) != 0.5 {
		t.Errorf("cpu = %v, want 0.5", out.Get(MetricCPU))
	}
}

func TestNormalizeClamps(t *testing.T) {
	n := newTestNormalizer(t)
	tests := []struct {
		name string
		in   float64
		want float64
	}{
		{"above max", 800, 1},
		{"negative", -10, 0},
		{"nan", math.NaN(), 0},
		{"zero", 0, 0},
		{"at max", 400, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := n.Normalize(NewSample("vm", map[Metric]float64{MetricCPU: tt.in}))
			if got := out.Get(MetricCPU); got != tt.want {
				t.Errorf("normalize(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestNormalizeAdaptiveRangeGrows(t *testing.T) {
	n := newTestNormalizer(t)
	// Observe a value beyond the initial adaptive max.
	n.Observe(NewSample("vm", map[Metric]float64{MetricMemory: 2000}))
	r, ok := n.RangeFor(MetricMemory)
	if !ok || r.Max != 2000 {
		t.Fatalf("adaptive max = %v, want 2000", r.Max)
	}
	out := n.Normalize(NewSample("vm", map[Metric]float64{MetricMemory: 1000}))
	if got := out.Get(MetricMemory); got != 0.5 {
		t.Errorf("memory = %v, want 0.5 after range growth", got)
	}
}

func TestObserveIgnoresFixedAndInvalid(t *testing.T) {
	n := newTestNormalizer(t)
	n.Observe(NewSample("vm", map[Metric]float64{
		MetricCPU:    900,         // fixed range must not grow
		MetricMemory: math.Inf(1), // invalid must be ignored
	}))
	if r, _ := n.RangeFor(MetricCPU); r.Max != 400 {
		t.Errorf("fixed range grew to %v", r.Max)
	}
	if r, _ := n.RangeFor(MetricMemory); r.Max != 1000 {
		t.Errorf("adaptive range absorbed Inf: %v", r.Max)
	}
}

func TestNormalizeUnknownMetricPassesThrough(t *testing.T) {
	n := newTestNormalizer(t)
	out := n.Normalize(NewSample("vm", map[Metric]float64{"custom": 7}))
	if out.Get("custom") != 7 {
		t.Errorf("unknown metric = %v, want 7", out.Get("custom"))
	}
}

func TestNormalizeAllSharesRanges(t *testing.T) {
	n := newTestNormalizer(t)
	samples := []Sample{
		NewSample("a", map[Metric]float64{MetricMemory: 4000}),
		NewSample("b", map[Metric]float64{MetricMemory: 1000}),
	}
	out := n.NormalizeAll(samples)
	// Both samples must be scaled by the same (grown) max of 4000.
	if out[0].Get(MetricMemory) != 1 {
		t.Errorf("a = %v, want 1", out[0].Get(MetricMemory))
	}
	if out[1].Get(MetricMemory) != 0.25 {
		t.Errorf("b = %v, want 0.25", out[1].Get(MetricMemory))
	}
}

func TestSnapshotRestore(t *testing.T) {
	n := newTestNormalizer(t)
	n.Observe(NewSample("vm", map[Metric]float64{MetricMemory: 5000}))
	snap := n.Snapshot()

	m, err := NewNormalizer(map[Metric]Range{MetricCPU: {Max: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	r, ok := m.RangeFor(MetricMemory)
	if !ok || r.Max != 5000 || !r.Adaptive {
		t.Errorf("restored range = %+v", r)
	}
	// Restore validates like the constructor.
	if err := m.Restore(map[Metric]Range{MetricCPU: {Max: -1}}); err == nil {
		t.Error("restoring invalid ranges should error")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	n := newTestNormalizer(t)
	snap := n.Snapshot()
	snap[MetricCPU] = Range{Max: 1}
	if r, _ := n.RangeFor(MetricCPU); r.Max != 400 {
		t.Error("snapshot aliased internal state")
	}
}

// Property: normalized values always land in [0,1] for configured metrics.
func TestNormalizeBoundsProperty(t *testing.T) {
	n := newTestNormalizer(t)
	f := func(raw int32) bool {
		v := float64(raw)
		out := n.Normalize(NewSample("vm", map[Metric]float64{MetricCPU: v}))
		got := out.Get(MetricCPU)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
