package metrics

import "testing"

func TestAggregateSums(t *testing.T) {
	samples := []Sample{
		NewSample("b1", map[Metric]float64{MetricCPU: 30, MetricMemory: 100}),
		NewSample("b2", map[Metric]float64{MetricCPU: 50, MetricIO: 5}),
	}
	out := Aggregate("batch", samples)
	if out.VM != "batch" {
		t.Errorf("VM = %q, want batch", out.VM)
	}
	if out.Get(MetricCPU) != 80 {
		t.Errorf("cpu = %v, want 80", out.Get(MetricCPU))
	}
	if out.Get(MetricMemory) != 100 {
		t.Errorf("memory = %v, want 100", out.Get(MetricMemory))
	}
	if out.Get(MetricIO) != 5 {
		t.Errorf("io = %v, want 5", out.Get(MetricIO))
	}
}

func TestAggregateEmpty(t *testing.T) {
	out := Aggregate("batch", nil)
	if out.VM != "batch" || len(out.Values) != 0 {
		t.Errorf("empty aggregate = %+v", out)
	}
}

func TestAggregateByRole(t *testing.T) {
	samples := []Sample{
		NewSample("web", map[Metric]float64{MetricCPU: 40}),
		NewSample("b1", map[Metric]float64{MetricCPU: 10}),
		NewSample("b2", map[Metric]float64{MetricCPU: 20}),
	}
	isBatch := func(vm string) bool { return vm == "b1" || vm == "b2" }
	out := AggregateByRole("batch", samples, isBatch)
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2 (sensitive + logical batch)", len(out))
	}
	// Sorted: "batch" < "web".
	if out[0].VM != "batch" || out[0].Get(MetricCPU) != 30 {
		t.Errorf("batch sample = %+v", out[0])
	}
	if out[1].VM != "web" || out[1].Get(MetricCPU) != 40 {
		t.Errorf("web sample = %+v", out[1])
	}
}

func TestAggregateByRoleNoBatch(t *testing.T) {
	samples := []Sample{NewSample("web", map[Metric]float64{MetricCPU: 40})}
	out := AggregateByRole("batch", samples, func(string) bool { return false })
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2", len(out))
	}
	// The logical batch VM exists with zero usage — a stable schema even
	// when no batch container runs.
	if out[0].VM != "batch" || out[0].Get(MetricCPU) != 0 {
		t.Errorf("zero batch sample = %+v", out[0])
	}
}
