package metrics

import (
	"reflect"
	"testing"
)

func TestSelectAndLaneFilter(t *testing.T) {
	samples := []Sample{
		NewSample("web", map[Metric]float64{MetricCPU: 10}),
		NewSample("kv", map[Metric]float64{MetricCPU: 20}),
		NewSample("b1", map[Metric]float64{MetricCPU: 30}),
		NewSample("b2", map[Metric]float64{MetricCPU: 40}),
	}

	// Lane protecting "web" over batch {b1,b2} must not see "kv".
	got := Select(samples, LaneFilter("web", []string{"b1", "b2"}))
	var vms []string
	for _, s := range got {
		vms = append(vms, s.VM)
	}
	if want := []string{"web", "b1", "b2"}; !reflect.DeepEqual(vms, want) {
		t.Fatalf("selected VMs = %v, want %v", vms, want)
	}

	// The lane's vector must flatten cleanly through its schema — the
	// whole point of the filter.
	schema, err := NewSchema([]string{"web", "batch"}, DefaultMetrics())
	if err != nil {
		t.Fatal(err)
	}
	isBatch := func(vm string) bool { return vm == "b1" || vm == "b2" }
	agg := AggregateByRole("batch", got, isBatch)
	vec, err := schema.Flatten(agg)
	if err != nil {
		t.Fatalf("flatten after fan-out: %v", err)
	}
	if vec[0] != 10 {
		t.Fatalf("web cpu = %v, want 10", vec[0])
	}
	if vec[len(DefaultMetrics())] != 70 {
		t.Fatalf("batch cpu = %v, want 70", vec[len(DefaultMetrics())])
	}

	// Unfiltered samples fail: exactly the bug the fan-out prevents.
	if _, err := schema.Flatten(AggregateByRole("batch", samples, isBatch)); err == nil {
		t.Fatal("flatten without fan-out should reject the foreign sensitive VM")
	}

	if got := Select(nil, LaneFilter("web", nil)); got != nil {
		t.Fatalf("Select(nil) = %v", got)
	}
}
