package metrics

import (
	"fmt"
	"math"
)

// Normalization (§4): "the problem is overcome by normalizing all the
// metric values between [0,1]". CPU has a natural fixed range; memory does
// not ("each VM could be assigned different amounts of memory"), so ranges
// are either fixed by configuration or learned adaptively from the maximum
// observed value.

// Range describes how one metric is scaled into [0,1].
type Range struct {
	// Max is the value that maps to 1. For adaptive ranges this grows as
	// larger values are observed.
	Max float64
	// Adaptive indicates the range stretches to cover new maxima instead
	// of clamping.
	Adaptive bool
}

// Normalizer scales raw metric values into [0,1] per metric.
// The zero value is not usable; use NewNormalizer.
type Normalizer struct {
	ranges map[Metric]*Range
}

// NewNormalizer builds a normalizer from per-metric ranges. Every metric
// must have Max > 0 (adaptive ranges use Max as the initial guess).
func NewNormalizer(ranges map[Metric]Range) (*Normalizer, error) {
	if len(ranges) == 0 {
		return nil, fmt.Errorf("metrics: normalizer needs at least one range")
	}
	n := &Normalizer{ranges: make(map[Metric]*Range, len(ranges))}
	for m, r := range ranges {
		if r.Max <= 0 || math.IsNaN(r.Max) || math.IsInf(r.Max, 0) {
			return nil, fmt.Errorf("metrics: metric %q has invalid max %v", m, r.Max)
		}
		rc := r
		n.ranges[m] = &rc
	}
	return n, nil
}

// DefaultRanges returns sensible ranges for the default metric set on a
// host with the given core count, memory, disk and network capacity.
// CPU is a fixed 0..100·cores range; the others adapt from the host
// capacity.
func DefaultRanges(cores int, memoryMB, diskMBps, netMbps float64) map[Metric]Range {
	return map[Metric]Range{
		MetricCPU:     {Max: 100 * float64(cores)},
		MetricMemory:  {Max: memoryMB, Adaptive: true},
		MetricIO:      {Max: diskMBps, Adaptive: true},
		MetricNetwork: {Max: netMbps, Adaptive: true},
	}
}

// Observe updates adaptive ranges with a raw sample. Call once per period
// before Normalize so that all samples from the same period share ranges.
func (n *Normalizer) Observe(s Sample) {
	for m, v := range s.Values {
		r, ok := n.ranges[m]
		if !ok || !r.Adaptive {
			continue
		}
		if v > r.Max && !math.IsInf(v, 0) && !math.IsNaN(v) {
			r.Max = v
		}
	}
}

// Normalize returns a copy of s with every known metric scaled into [0,1].
// Values above a fixed range clamp to 1; negative or NaN values clamp to 0.
// Metrics without a configured range pass through unchanged (the caller
// opted them out of normalization).
func (n *Normalizer) Normalize(s Sample) Sample {
	out := Sample{VM: s.VM, Values: make(map[Metric]float64, len(s.Values))}
	for m, v := range s.Values {
		r, ok := n.ranges[m]
		if !ok {
			out.Values[m] = v
			continue
		}
		if math.IsNaN(v) || v < 0 {
			out.Values[m] = 0
			continue
		}
		nv := v / r.Max
		if nv > 1 {
			nv = 1
		}
		out.Values[m] = nv
	}
	return out
}

// NormalizeAll observes and then normalizes a batch of samples from one
// monitoring period.
func (n *Normalizer) NormalizeAll(samples []Sample) []Sample {
	for _, s := range samples {
		n.Observe(s)
	}
	out := make([]Sample, len(samples))
	for i, s := range samples {
		out[i] = n.Normalize(s)
	}
	return out
}

// RangeFor reports the current range for a metric.
func (n *Normalizer) RangeFor(m Metric) (Range, bool) {
	r, ok := n.ranges[m]
	if !ok {
		return Range{}, false
	}
	return *r, true
}

// Snapshot returns a copy of all current ranges, for template export: a
// reused map is only valid when the new run normalizes with the same
// ranges.
func (n *Normalizer) Snapshot() map[Metric]Range {
	out := make(map[Metric]Range, len(n.ranges))
	for m, r := range n.ranges {
		out[m] = *r
	}
	return out
}

// Restore overwrites the normalizer's ranges with a previously captured
// snapshot.
func (n *Normalizer) Restore(ranges map[Metric]Range) error {
	nn, err := NewNormalizer(ranges)
	if err != nil {
		return err
	}
	n.ranges = nn.ranges
	return nil
}
