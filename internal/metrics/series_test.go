package metrics

import "testing"

func TestNewSeriesValidation(t *testing.T) {
	if _, err := NewSeries(0); err == nil {
		t.Error("capacity 0 should error")
	}
	if _, err := NewSeries(-1); err == nil {
		t.Error("negative capacity should error")
	}
}

func TestSeriesPushAndAt(t *testing.T) {
	s, _ := NewSeries(3)
	if s.Len() != 0 || s.Cap() != 3 {
		t.Fatalf("fresh series len=%d cap=%d", s.Len(), s.Cap())
	}
	s.Push(1, []float64{1})
	s.Push(2, []float64{2})
	if s.Len() != 2 {
		t.Errorf("len = %d, want 2", s.Len())
	}
	if s.At(0).Period != 1 || s.At(1).Period != 2 {
		t.Errorf("order wrong: %v %v", s.At(0), s.At(1))
	}
}

func TestSeriesEviction(t *testing.T) {
	s, _ := NewSeries(3)
	for p := 1; p <= 5; p++ {
		s.Push(p, []float64{float64(p)})
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	want := []int{3, 4, 5}
	for i, w := range want {
		if s.At(i).Period != w {
			t.Errorf("At(%d).Period = %d, want %d", i, s.At(i).Period, w)
		}
	}
}

func TestSeriesLast(t *testing.T) {
	s, _ := NewSeries(2)
	if _, ok := s.Last(); ok {
		t.Error("empty series should report no last")
	}
	s.Push(7, []float64{7})
	last, ok := s.Last()
	if !ok || last.Period != 7 {
		t.Errorf("last = %v, %v", last, ok)
	}
}

func TestSeriesWindow(t *testing.T) {
	s, _ := NewSeries(5)
	for p := 1; p <= 4; p++ {
		s.Push(p, []float64{float64(p)})
	}
	w := s.Window(2)
	if len(w) != 2 || w[0].Period != 3 || w[1].Period != 4 {
		t.Errorf("window = %v", w)
	}
	// Requesting more than stored returns all.
	w = s.Window(10)
	if len(w) != 4 {
		t.Errorf("oversized window len = %d, want 4", len(w))
	}
}

func TestSeriesPushCopiesValues(t *testing.T) {
	s, _ := NewSeries(2)
	v := []float64{1, 2}
	s.Push(1, v)
	v[0] = 99
	if s.At(0).Values[0] != 1 {
		t.Error("series aliased caller's slice")
	}
}

func TestSeriesAtPanicsOutOfRange(t *testing.T) {
	s, _ := NewSeries(2)
	s.Push(1, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	s.At(5)
}
