package metrics

import (
	"testing"
)

func TestNewSampleCopies(t *testing.T) {
	src := map[Metric]float64{MetricCPU: 50}
	s := NewSample("vm1", src)
	src[MetricCPU] = 99
	if s.Get(MetricCPU) != 50 {
		t.Error("NewSample aliased caller's map")
	}
	if s.Get(MetricMemory) != 0 {
		t.Error("missing metric should read 0")
	}
}

func TestNewSchemaValidation(t *testing.T) {
	ms := DefaultMetrics()
	tests := []struct {
		name    string
		vms     []string
		metrics []Metric
		wantErr bool
	}{
		{"valid", []string{"a", "b"}, ms, false},
		{"no vms", nil, ms, true},
		{"no metrics", []string{"a"}, nil, true},
		{"duplicate vm", []string{"a", "a"}, ms, true},
		{"empty vm name", []string{""}, ms, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSchema(tt.vms, tt.metrics)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSchemaDimAndLabel(t *testing.T) {
	s, err := NewSchema([]string{"web", "batch"}, DefaultMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 8 {
		t.Errorf("Dim = %d, want 8", s.Dim())
	}
	if got := s.Label(0); got != "web/cpu" {
		t.Errorf("Label(0) = %q, want web/cpu", got)
	}
	if got := s.Label(5); got != "batch/memory" {
		t.Errorf("Label(5) = %q, want batch/memory", got)
	}
}

func TestSchemaFlatten(t *testing.T) {
	s, _ := NewSchema([]string{"web", "batch"}, []Metric{MetricCPU, MetricMemory})
	samples := []Sample{
		NewSample("batch", map[Metric]float64{MetricCPU: 30, MetricMemory: 200}),
		NewSample("web", map[Metric]float64{MetricCPU: 70, MetricMemory: 500}),
	}
	v, err := s.Flatten(samples)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{70, 500, 30, 200}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("v[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

func TestSchemaFlattenMissingVMIsZero(t *testing.T) {
	s, _ := NewSchema([]string{"web", "batch"}, []Metric{MetricCPU})
	v, err := s.Flatten([]Sample{NewSample("web", map[Metric]float64{MetricCPU: 40})})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 40 || v[1] != 0 {
		t.Errorf("v = %v, want [40 0]", v)
	}
}

func TestSchemaFlattenErrors(t *testing.T) {
	s, _ := NewSchema([]string{"web"}, []Metric{MetricCPU})
	if _, err := s.Flatten([]Sample{NewSample("ghost", nil)}); err == nil {
		t.Error("unknown VM should error")
	}
	dup := []Sample{
		NewSample("web", map[Metric]float64{MetricCPU: 1}),
		NewSample("web", map[Metric]float64{MetricCPU: 2}),
	}
	if _, err := s.Flatten(dup); err == nil {
		t.Error("duplicate VM should error")
	}
}

func TestSchemaAccessorsCopy(t *testing.T) {
	s, _ := NewSchema([]string{"a", "b"}, DefaultMetrics())
	vms := s.VMs()
	vms[0] = "mutated"
	if s.VMs()[0] != "a" {
		t.Error("VMs() leaked internal slice")
	}
	ms := s.Metrics()
	ms[0] = "mutated"
	if s.Metrics()[0] != MetricCPU {
		t.Error("Metrics() leaked internal slice")
	}
}

func TestSortSamples(t *testing.T) {
	samples := []Sample{{VM: "c"}, {VM: "a"}, {VM: "b"}}
	SortSamples(samples)
	if samples[0].VM != "a" || samples[1].VM != "b" || samples[2].VM != "c" {
		t.Errorf("sorted order wrong: %v", samples)
	}
}
