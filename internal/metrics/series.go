package metrics

import "fmt"

// TimedVector is one flattened, normalized measurement vector with its
// monitoring period index.
type TimedVector struct {
	// Period is the monitoring period the vector was captured in.
	Period int
	// Values is the flattened vector (schema order).
	Values []float64
}

// Series is a bounded ring buffer of measurement vectors, oldest first.
// Trajectory analysis only needs a recent window; a bounded buffer keeps
// the runtime's memory footprint constant over long executions
// (the paper: "negligible memory consumption").
type Series struct {
	buf   []TimedVector
	start int
	count int
}

// NewSeries returns a series retaining at most capacity vectors.
func NewSeries(capacity int) (*Series, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("metrics: series capacity must be positive, got %d", capacity)
	}
	return &Series{buf: make([]TimedVector, capacity)}, nil
}

// Len returns the number of stored vectors.
func (s *Series) Len() int { return s.count }

// Cap returns the maximum number of retained vectors.
func (s *Series) Cap() int { return len(s.buf) }

// Push appends a vector, evicting the oldest when full. The values slice
// is copied.
func (s *Series) Push(period int, values []float64) {
	tv := TimedVector{Period: period, Values: append([]float64(nil), values...)}
	if s.count < len(s.buf) {
		s.buf[(s.start+s.count)%len(s.buf)] = tv
		s.count++
		return
	}
	s.buf[s.start] = tv
	s.start = (s.start + 1) % len(s.buf)
}

// At returns the i-th oldest stored vector (0 = oldest).
func (s *Series) At(i int) TimedVector {
	if i < 0 || i >= s.count {
		panic(fmt.Sprintf("metrics: series index %d out of range [0,%d)", i, s.count))
	}
	return s.buf[(s.start+i)%len(s.buf)]
}

// Last returns the most recent vector and true, or a zero value and false
// when empty.
func (s *Series) Last() (TimedVector, bool) {
	if s.count == 0 {
		return TimedVector{}, false
	}
	return s.At(s.count - 1), true
}

// Window returns up to n most recent vectors, oldest first.
func (s *Series) Window(n int) []TimedVector {
	if n > s.count {
		n = s.count
	}
	out := make([]TimedVector, n)
	for i := 0; i < n; i++ {
		out[i] = s.At(s.count - n + i)
	}
	return out
}
