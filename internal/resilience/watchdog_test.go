package resilience

import (
	"context"
	"testing"
	"time"
)

// fakeClock drives the watchdog deterministically.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }

func TestWatchdogValidation(t *testing.T) {
	if _, err := NewWatchdog(WatchdogConfig{}); err == nil {
		t.Error("zero period should error")
	}
}

func TestWatchdogFiresOncePerEpisodeAndRearms(t *testing.T) {
	clock := newFakeClock()
	fired := 0
	wd, err := NewWatchdog(WatchdogConfig{
		Period:  time.Second,
		Grace:   3,
		OnStall: func(time.Duration) { fired++ },
		Now:     clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy loop: beats within grace never fire.
	for i := 0; i < 5; i++ {
		clock.advance(time.Second)
		wd.Beat()
		if wd.Check() {
			t.Fatalf("beat %d: healthy loop declared stalled", i)
		}
	}
	if fired != 0 {
		t.Fatalf("fired %d times while healthy", fired)
	}

	// Exactly at the grace limit: 3 periods since the last beat is still
	// tolerated (the stall condition is strictly greater).
	clock.advance(3 * time.Second)
	if wd.Check() {
		t.Error("stalled exactly at grace limit; boundary must be exclusive")
	}
	if fired != 0 {
		t.Errorf("fired at the boundary: %d", fired)
	}

	// Past the limit: fires, and only once for the episode.
	clock.advance(time.Millisecond)
	if !wd.Check() {
		t.Error("not stalled past grace limit")
	}
	wd.Check()
	wd.Check()
	if fired != 1 {
		t.Fatalf("fired %d times in one episode, want 1", fired)
	}
	stalled, stalls, _, _ := wd.Status()
	if !stalled || stalls != 1 {
		t.Errorf("status = stalled %v stalls %d", stalled, stalls)
	}

	// A beat re-arms the watchdog; the next stall is a fresh episode.
	wd.Beat()
	if stalled, _, _, _ := wd.Status(); stalled {
		t.Error("still stalled after a beat")
	}
	clock.advance(10 * time.Second)
	wd.Check()
	if fired != 2 {
		t.Errorf("second episode fired %d total, want 2", fired)
	}
}

func TestWatchdogRunStopsOnContextCancel(t *testing.T) {
	wd, err := NewWatchdog(WatchdogConfig{Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		wd.Run(ctx)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop after cancel")
	}
}

func TestWatchdogRunDetectsRealStall(t *testing.T) {
	fired := make(chan struct{}, 1)
	wd, err := NewWatchdog(WatchdogConfig{
		Period: 5 * time.Millisecond,
		Grace:  2,
		OnStall: func(time.Duration) {
			select {
			case fired <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go wd.Run(ctx)
	// No beats at all: the loop "stalled" immediately after start.
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired on a real stall")
	}
}
