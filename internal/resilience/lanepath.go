package resilience

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strings"
)

// Per-lane checkpoint layout: a multi-tenant host keeps one learned-state
// checkpoint per protected application under its -state-dir,
//
//	<state-dir>/checkpoint-<app>.json
//
// next to the single shared actuation ledger (ledger.json — actuations on
// the shared batch pool are merged before they reach the ledger, so one
// write-ahead log covers every lane). The single-tenant layout
// (<state-dir>/checkpoint.json) is unchanged.

// LaneCheckpointPath returns the checkpoint file path for one
// application's lane under stateDir. Application names are fleet-wide
// identifiers, not filenames, so the name is sanitized; when
// sanitization loses information a short hash of the original name is
// appended so distinct applications can never share a checkpoint file.
func LaneCheckpointPath(stateDir, app string) string {
	return filepath.Join(stateDir, fmt.Sprintf("checkpoint-%s.json", sanitizeLaneName(app)))
}

// sanitizeLaneName maps an application name onto a safe filename
// fragment: [a-zA-Z0-9._-] pass through, everything else becomes '_'.
func sanitizeLaneName(app string) string {
	if app == "" {
		app = "lane"
	}
	var b strings.Builder
	changed := false
	for _, r := range app {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
			changed = true
		}
	}
	out := b.String()
	// "." / ".." would escape the directory entry; a lossy rewrite could
	// collide two distinct names ("a/b" vs "a_b"). Both get a
	// disambiguating hash of the raw name.
	if out == "." || out == ".." {
		out = strings.ReplaceAll(out, ".", "_")
		changed = true
	}
	if changed {
		h := fnv.New32a()
		h.Write([]byte(app))
		out = fmt.Sprintf("%s-%08x", out, h.Sum32())
	}
	return out
}
