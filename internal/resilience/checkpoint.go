package resilience

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/fsatomic"
	"repro/internal/statespace"
	"repro/internal/throttle"
	"repro/internal/trajectory"
)

// checkpointVersion is the current checkpoint format version.
const checkpointVersion = 1

// ErrCorruptCheckpoint marks a checkpoint file that could not be parsed
// or failed validation. Callers log it and start fresh — a corrupt
// checkpoint costs relearning, never a crash.
var ErrCorruptCheckpoint = errors.New("corrupt checkpoint")

// Checkpoint is an atomic snapshot of everything the daemon has learned:
// the state-space template (violation-states, ranges, schema), the
// per-mode trajectory histograms, and the throttle controller's learned
// state (β). Restoring it at boot gives a restarted daemon the same
// violation map and prediction models it had before the crash, skipping
// the relearning phase entirely.
type Checkpoint struct {
	// Version is the checkpoint format version.
	Version int `json:"version"`
	// Periods is how many control periods the run had completed when the
	// snapshot was taken (observability; the restored runtime restarts its
	// own period counter).
	Periods int `json:"periods"`
	// Template is the learned state space.
	Template *statespace.Template `json:"template"`
	// Models carries the per-mode trajectory histograms.
	Models *trajectory.ModelsSnapshot `json:"models,omitempty"`
	// Controller carries the throttle controller's learned state.
	Controller *throttle.ControllerSnapshot `json:"controller,omitempty"`
}

// Validate checks the checkpoint's internal consistency without touching
// any runtime. Template validation reuses statespace's corrupt-JSON
// hardening.
func (c *Checkpoint) Validate() error {
	if c == nil {
		return fmt.Errorf("resilience: nil checkpoint: %w", ErrCorruptCheckpoint)
	}
	if c.Version < 1 || c.Version > checkpointVersion {
		return fmt.Errorf("resilience: checkpoint version %d, support 1..%d: %w",
			c.Version, checkpointVersion, ErrCorruptCheckpoint)
	}
	if c.Periods < 0 {
		return fmt.Errorf("resilience: checkpoint periods %d: %w", c.Periods, ErrCorruptCheckpoint)
	}
	if c.Template == nil {
		return fmt.Errorf("resilience: checkpoint without template: %w", ErrCorruptCheckpoint)
	}
	if err := c.Template.Validate(); err != nil {
		return fmt.Errorf("resilience: checkpoint template: %w", err)
	}
	return nil
}

// WriteTo serializes the checkpoint as indented JSON.
func (c *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("resilience: marshal checkpoint: %w", err)
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// SaveCheckpoint atomically writes the checkpoint to path: a crash
// mid-write leaves the previous checkpoint intact, never a torn file.
func SaveCheckpoint(path string, c *Checkpoint) error {
	if err := c.Validate(); err != nil {
		return err
	}
	return fsatomic.WriteFileFunc(path, 0o644, func(w io.Writer) error {
		_, err := c.WriteTo(w)
		return err
	})
}

// ReadCheckpoint parses and validates a checkpoint from JSON. Truncated,
// garbage-suffixed and structurally invalid input all surface as errors
// (wrapping ErrCorruptCheckpoint where structural) — never panics.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	dec := json.NewDecoder(r)
	if err := dec.Decode(&c); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("resilience: decode checkpoint: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("resilience: trailing data after checkpoint: %w", ErrCorruptCheckpoint)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadCheckpoint reads a checkpoint file. A missing file returns
// (nil, nil): no checkpoint simply means a cold start.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resilience: open checkpoint %s: %w", path, err)
	}
	defer f.Close()
	c, err := ReadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("resilience: checkpoint %s: %w", path, err)
	}
	return c, nil
}
