package resilience

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/throttle"
)

// gradedFunc lets a test observe the ledger's state at the exact moment
// the inner actuator runs — the write-ahead ordering under test.
type gradedFunc struct {
	pause    func(ids []string) error
	resume   func(ids []string) error
	setLevel func(ids []string, level float64) error
}

func (g gradedFunc) Pause(ids []string) error { return g.pause(ids) }
func (g gradedFunc) Resume(ids []string) error {
	if g.resume == nil {
		return nil
	}
	return g.resume(ids)
}
func (g gradedFunc) SetLevel(ids []string, level float64) error { return g.setLevel(ids, level) }

func TestLedgeredPauseRecordsBeforeActuating(t *testing.T) {
	l, _ := OpenLedger(filepath.Join(t.TempDir(), "ledger.json"))
	var sawDuringPause []LedgerEntry
	inner := gradedFunc{
		pause: func(ids []string) error {
			sawDuringPause = l.Outstanding()
			return nil
		},
		setLevel: func([]string, float64) error { return nil },
	}
	la, err := NewLedgeredActuator(inner, l)
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Pause([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	// The freeze must already be durable when the actuation runs: a crash
	// inside Pause leaves the entry for recovery to replay.
	if len(sawDuringPause) != 1 || !sawDuringPause[0].Frozen {
		t.Errorf("ledger during pause = %+v, want frozen entry", sawDuringPause)
	}
}

func TestLedgeredResumeClearsAfterActuating(t *testing.T) {
	l, _ := OpenLedger(filepath.Join(t.TempDir(), "ledger.json"))
	var sawDuringResume []LedgerEntry
	inner := gradedFunc{
		pause: func([]string) error { return nil },
		resume: func(ids []string) error {
			sawDuringResume = l.Outstanding()
			return nil
		},
		setLevel: func([]string, float64) error { return nil },
	}
	la, _ := NewLedgeredActuator(inner, l)
	if err := la.Pause([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := la.Resume([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	// The record must still be present while the thaw runs — it is only
	// cleared after the thaw succeeded. A crash inside Resume re-thaws at
	// boot, which is harmless; the reverse order would strand a freeze.
	if len(sawDuringResume) != 1 {
		t.Errorf("ledger during resume = %+v, want the frozen entry still present", sawDuringResume)
	}
	if out := l.Outstanding(); len(out) != 0 {
		t.Errorf("ledger after resume = %+v, want empty", out)
	}
}

func TestLedgeredResumeFailureKeepsRecord(t *testing.T) {
	l, _ := OpenLedger(filepath.Join(t.TempDir(), "ledger.json"))
	boom := errors.New("freezer jammed")
	inner := gradedFunc{
		pause:    func([]string) error { return nil },
		resume:   func([]string) error { return boom },
		setLevel: func([]string, float64) error { return nil },
	}
	la, _ := NewLedgeredActuator(inner, l)
	if err := la.Pause([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := la.Resume([]string{"a"}); !errors.Is(err, boom) {
		t.Fatalf("resume err = %v, want %v", err, boom)
	}
	if out := l.Outstanding(); len(out) != 1 {
		t.Errorf("failed resume must keep the freeze record, got %v", out)
	}
}

func TestLedgeredSetLevelOrdering(t *testing.T) {
	l, _ := OpenLedger(filepath.Join(t.TempDir(), "ledger.json"))
	var duringTighten, duringLoosen []LedgerEntry
	inner := gradedFunc{
		pause: func([]string) error { return nil },
		setLevel: func(ids []string, level float64) error {
			if level < 1 {
				duringTighten = l.Outstanding()
			} else {
				duringLoosen = l.Outstanding()
			}
			return nil
		},
	}
	la, _ := NewLedgeredActuator(inner, l)

	// Tightening: the level record must precede the actuation.
	if err := la.SetLevel([]string{"a"}, 0.5); err != nil {
		t.Fatal(err)
	}
	if len(duringTighten) != 1 || duringTighten[0].Level != 0.5 {
		t.Errorf("ledger during tighten = %+v, want level-0.5 entry", duringTighten)
	}

	// Loosening: the record is cleared only after the actuation, so the
	// ledger still shows the old restriction while the release runs.
	if err := la.SetLevel([]string{"a"}, 1); err != nil {
		t.Fatal(err)
	}
	if len(duringLoosen) != 1 || duringLoosen[0].Level != 0.5 {
		t.Errorf("ledger during loosen = %+v, want old level-0.5 entry", duringLoosen)
	}
	if out := l.Outstanding(); len(out) != 0 {
		t.Errorf("ledger after loosen = %+v, want empty", out)
	}
}

func TestLedgeredSetLevelOnBinaryActuatorErrors(t *testing.T) {
	l, _ := OpenLedger(filepath.Join(t.TempDir(), "ledger.json"))
	la, _ := NewLedgeredActuator(throttle.FuncActuator{}, l)
	if err := la.SetLevel([]string{"a"}, 0.5); err == nil {
		t.Error("SetLevel on a non-graded inner actuator should error")
	}
}

func TestLedgerWriteFailureAbortsActuation(t *testing.T) {
	// Ledger in a missing directory: every record fails. The actuation
	// must be aborted — throttling without a durable record reopens the
	// crash-starvation hole.
	l := &Ledger{
		path:    filepath.Join(t.TempDir(), "missing", "ledger.json"),
		entries: map[string]LedgerEntry{},
	}
	innerCalled := false
	inner := gradedFunc{
		pause:    func([]string) error { innerCalled = true; return nil },
		setLevel: func([]string, float64) error { innerCalled = true; return nil },
	}
	la, _ := NewLedgeredActuator(inner, l)
	if err := la.Pause([]string{"a"}); err == nil {
		t.Error("pause with unwritable ledger should error")
	}
	if err := la.SetLevel([]string{"a"}, 0.5); err == nil {
		t.Error("tighten with unwritable ledger should error")
	}
	if innerCalled {
		t.Error("inner actuator ran despite failed ledger record")
	}
}

func TestRecoverThawsOutstandingAndExtras(t *testing.T) {
	l, _ := OpenLedger(filepath.Join(t.TempDir(), "ledger.json"))
	if err := l.RecordFreeze([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordLevel([]string{"b"}, 0.25); err != nil {
		t.Fatal(err)
	}
	act := throttle.NewRecordingActuator()
	thawed, err := Recover(l, act, []string{"b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(thawed) != 3 {
		t.Fatalf("thawed = %v, want a, b and c", thawed)
	}
	events := act.Events()
	if len(events) != 2 || events[0].Action != throttle.ActionResume || events[1].Action != throttle.ActionLimit {
		t.Fatalf("events = %+v, want resume then quota clear", events)
	}
	if events[1].Level != 1 {
		t.Errorf("quota clear level = %v, want 1", events[1].Level)
	}
	if len(act.Paused()) != 0 {
		t.Errorf("still paused: %v", act.Paused())
	}
	if out := l.Outstanding(); len(out) != 0 {
		t.Errorf("ledger after recovery = %v, want empty", out)
	}
}

func TestRecoverEmptyLedgerNoActuation(t *testing.T) {
	l, _ := OpenLedger(filepath.Join(t.TempDir(), "ledger.json"))
	act := throttle.NewRecordingActuator()
	thawed, err := Recover(l, act, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(thawed) != 0 || len(act.Events()) != 0 {
		t.Errorf("empty recovery actuated: thawed=%v events=%v", thawed, act.Events())
	}
}

func TestRecoverBinaryActuatorSkipsQuotaClear(t *testing.T) {
	l, _ := OpenLedger(filepath.Join(t.TempDir(), "ledger.json"))
	if err := l.RecordFreeze([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	resumed := false
	act := throttle.FuncActuator{
		ResumeFn: func(ids []string) error { resumed = true; return nil },
	}
	if _, err := Recover(l, act, nil); err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Error("binary actuator was not resumed")
	}
}
