package resilience

import (
	"fmt"

	"repro/internal/throttle"
)

// LedgeredActuator wraps a throttle actuator with write-ahead ledger
// records: restrictive actuations (freeze, quota below 1) are recorded
// before being applied, releases are recorded only after they succeed.
// After a crash at any instruction boundary the ledger therefore holds an
// upper bound on the throttling still in force, and replaying it (Recover)
// can only over-thaw — never leave a target starved.
//
// A ledger write failure fails the actuation: actuating without a durable
// record would reopen the crash-starvation hole the ledger exists to
// close. The inner actuator's own degradation paths (SIGSTOP fallback,
// vanished cgroups) are unaffected.
type LedgeredActuator struct {
	inner  throttle.Actuator
	graded throttle.GradedActuator // non-nil when inner implements it
	ledger *Ledger
}

var _ throttle.GradedActuator = (*LedgeredActuator)(nil)

// NewLedgeredActuator wraps inner so every actuation is recorded in l.
func NewLedgeredActuator(inner throttle.Actuator, l *Ledger) (*LedgeredActuator, error) {
	if inner == nil {
		return nil, fmt.Errorf("resilience: nil inner actuator")
	}
	if l == nil {
		return nil, fmt.Errorf("resilience: nil ledger")
	}
	la := &LedgeredActuator{inner: inner, ledger: l}
	if g, ok := inner.(throttle.GradedActuator); ok {
		la.graded = g
	}
	return la, nil
}

// Pause records the freeze intent, then freezes.
func (a *LedgeredActuator) Pause(ids []string) error {
	if err := a.ledger.RecordFreeze(ids); err != nil {
		return fmt.Errorf("resilience: ledger freeze record: %w", err)
	}
	return a.inner.Pause(ids)
}

// Resume thaws, then clears the record. A crash in between leaves a stale
// "frozen" entry whose replay re-thaws an already-thawed target —
// harmless.
func (a *LedgeredActuator) Resume(ids []string) error {
	if err := a.inner.Resume(ids); err != nil {
		return err
	}
	if err := a.ledger.RecordThaw(ids); err != nil {
		return fmt.Errorf("resilience: ledger thaw record: %w", err)
	}
	return nil
}

// SetLevel orders the record and the actuation by restrictiveness:
// tightening is recorded first, loosening is recorded after it succeeded.
func (a *LedgeredActuator) SetLevel(ids []string, level float64) error {
	if a.graded == nil {
		return fmt.Errorf("resilience: inner actuator %T is not graded", a.inner)
	}
	if level < 1 {
		if err := a.ledger.RecordLevel(ids, level); err != nil {
			return fmt.Errorf("resilience: ledger level record: %w", err)
		}
		return a.graded.SetLevel(ids, level)
	}
	if err := a.graded.SetLevel(ids, level); err != nil {
		return err
	}
	if err := a.ledger.RecordLevel(ids, level); err != nil {
		return fmt.Errorf("resilience: ledger level record: %w", err)
	}
	return nil
}

// Recover replays the ledger against the actuator and fails safe: every
// target with an outstanding restriction — plus every configured target
// in extraIDs, covering corrupt or missing ledgers — is resumed and, when
// the actuator is graded, has its CPU quota removed. On success the
// ledger is reset. This is what a restarted daemon (and `stayawayd
// -recover-only`) runs before its first control period.
//
// Thawing a target that was never throttled is deliberate: resume and
// quota-clear are idempotent, and over-thawing is the safe failure
// direction (the controller re-throttles within one period if needed,
// whereas a missed thaw starves the batch workload forever).
func Recover(l *Ledger, act throttle.Actuator, extraIDs []string) ([]string, error) {
	if l == nil {
		return nil, fmt.Errorf("resilience: nil ledger")
	}
	if act == nil {
		return nil, fmt.Errorf("resilience: nil actuator")
	}
	seen := make(map[string]bool)
	var ids []string
	for _, e := range l.Outstanding() {
		if !seen[e.ID] {
			seen[e.ID] = true
			ids = append(ids, e.ID)
		}
	}
	for _, id := range extraIDs {
		if id != "" && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, l.Reset()
	}
	if err := act.Resume(ids); err != nil {
		return ids, fmt.Errorf("resilience: recovery thaw: %w", err)
	}
	if g, ok := act.(throttle.GradedActuator); ok {
		if err := g.SetLevel(ids, 1); err != nil {
			return ids, fmt.Errorf("resilience: recovery quota clear: %w", err)
		}
	}
	if err := l.Reset(); err != nil {
		return ids, err
	}
	return ids, nil
}
