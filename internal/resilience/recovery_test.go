package resilience

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cgroup"
)

// TestKillAndRestartRecovery is the PR's headline invariant: a daemon
// SIGKILLed mid-throttle leaves frozen, quota-limited cgroups behind; the
// next incarnation's ledger replay must thaw every one of them and remove
// every quota, with no memory of the dead process beyond the ledger file.
func TestKillAndRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "ledger.json")
	ids := []string{"stayaway/b1", "stayaway/b2", "stayaway/b3"}

	// --- First incarnation: throttle, then "die" without releasing. ---
	fs := cgroup.NewFakeFS()
	for i, id := range ids {
		fs.AddCgroup(id, 100+i)
	}
	newActuator := func() *cgroup.Actuator {
		act, err := cgroup.NewActuator(fs, cgroup.ActuatorConfig{
			MaxCPU: 4,
			Kill:   func(int, syscall.Signal) error { return nil },
			Sleep:  func(time.Duration) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		return act
	}
	ledger, err := OpenLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	la, err := NewLedgeredActuator(newActuator(), ledger)
	if err != nil {
		t.Fatal(err)
	}
	if err := la.SetLevel(ids[:2], 0.25); err != nil {
		t.Fatal(err)
	}
	if err := la.Pause(ids[2:]); err != nil {
		t.Fatal(err)
	}
	// Sanity: the "kernel" state really is restricted.
	if c, _ := fs.Contents("stayaway/b3/cgroup.freeze"); strings.TrimSpace(c) != "1" {
		t.Fatalf("b3 freeze = %q before the crash", c)
	}
	if c, _ := fs.Contents("stayaway/b1/cpu.max"); strings.HasPrefix(c, "max") {
		t.Fatalf("b1 cpu.max = %q before the crash, want a quota", c)
	}
	// SIGKILL: the first incarnation simply stops existing. No deferred
	// cleanup runs; only the ledger file and the cgroup state survive.

	// --- Second incarnation: replay the ledger before the first period. ---
	ledger2, err := OpenLedger(ledgerPath)
	if err != nil {
		t.Fatalf("reopening the dead daemon's ledger: %v", err)
	}
	out := ledger2.Outstanding()
	if len(out) != 3 {
		t.Fatalf("outstanding after restart = %+v, want all 3 targets", out)
	}
	thawed, err := Recover(ledger2, newActuator(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(thawed) != 3 {
		t.Fatalf("recovery thawed %v, want all 3", thawed)
	}

	// The invariant: every batch cgroup unfrozen, every quota removed.
	for _, id := range ids {
		if c, _ := fs.Contents(id + "/cgroup.freeze"); strings.TrimSpace(c) != "0" {
			t.Errorf("%s still frozen after recovery: %q", id, c)
		}
		if c, _ := fs.Contents(id + "/cpu.max"); !strings.HasPrefix(c, "max") {
			t.Errorf("%s still quota-limited after recovery: %q", id, c)
		}
	}
	if out := ledger2.Outstanding(); len(out) != 0 {
		t.Errorf("ledger not reset after recovery: %v", out)
	}

	// A third incarnation (crash-free restart) finds a clean ledger.
	ledger3, err := OpenLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if out := ledger3.Outstanding(); len(out) != 0 {
		t.Errorf("clean restart sees outstanding entries: %v", out)
	}
}

// TestRecoveryWithCorruptLedgerThawsConfiguredTargets covers the
// fail-safe for an unreadable ledger: with the entries lost, recovery
// falls back to thawing every configured batch target.
func TestRecoveryWithCorruptLedgerThawsConfiguredTargets(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "ledger.json")
	ids := []string{"stayaway/b1", "stayaway/b2"}

	fs := cgroup.NewFakeFS()
	for i, id := range ids {
		fs.AddCgroup(id, 100+i)
	}
	act, err := cgroup.NewActuator(fs, cgroup.ActuatorConfig{
		MaxCPU: 4,
		Kill:   func(int, syscall.Signal) error { return nil },
		Sleep:  func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Freeze directly (as the dead daemon did), then corrupt the ledger.
	if err := act.Pause(ids); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ledgerPath, []byte("corrupt{"), 0o644); err != nil {
		t.Fatal(err)
	}

	ledger, err := OpenLedger(ledgerPath)
	if err == nil {
		t.Fatal("corrupt ledger should surface an error")
	}
	thawed, err := Recover(ledger, act, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(thawed) != 2 {
		t.Fatalf("thawed %v, want both configured targets", thawed)
	}
	for _, id := range ids {
		if c, _ := fs.Contents(id + "/cgroup.freeze"); strings.TrimSpace(c) != "0" {
			t.Errorf("%s still frozen: %q", id, c)
		}
	}
}
