package resilience

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// WatchdogConfig tunes control-loop stall detection.
type WatchdogConfig struct {
	// Period is the expected beat cadence — the control loop's monitoring
	// period.
	Period time.Duration
	// Grace is how many missed periods are tolerated before the watchdog
	// declares a stall. Minimum 1; default 3 (one slow cgroupfs read must
	// not thaw the world).
	Grace int
	// OnStall is the fail-safe action, fired once per stall episode from
	// the watchdog's own goroutine (the stalled loop cannot run it). The
	// default deployment passes a thaw-everything action: a stalled
	// controller must never leave batch workloads frozen. Nil disables the
	// action (status is still tracked).
	OnStall func(sinceLastBeat time.Duration)
	// Now overrides the clock for tests; nil uses time.Now.
	Now func() time.Time
}

func (c *WatchdogConfig) applyDefaults() {
	if c.Grace < 1 {
		c.Grace = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Watchdog detects control-loop stalls: the loop calls Beat every period,
// and a checker (Run's goroutine, or Check driven by tests) fires the
// fail-safe when beats stop arriving — e.g. the collector is blocked on a
// hung cgroupfs read, so the loop itself can never notice. Safe for
// concurrent use.
type Watchdog struct {
	cfg WatchdogConfig

	mu       sync.Mutex
	lastBeat time.Time
	beats    int
	stalls   int
	stalled  bool
}

// NewWatchdog returns a watchdog expecting one Beat per period.
func NewWatchdog(cfg WatchdogConfig) (*Watchdog, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("resilience: watchdog period must be positive, got %v", cfg.Period)
	}
	cfg.applyDefaults()
	return &Watchdog{cfg: cfg, lastBeat: cfg.Now()}, nil
}

// Beat records control-loop liveness. Call once per completed period.
func (w *Watchdog) Beat() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lastBeat = w.cfg.Now()
	w.beats++
	w.stalled = false
}

// Check evaluates liveness now, firing OnStall on the transition into a
// stall (once per episode — a beat re-arms it). It returns whether the
// loop is currently considered stalled.
func (w *Watchdog) Check() bool {
	w.mu.Lock()
	since := w.cfg.Now().Sub(w.lastBeat)
	limit := time.Duration(w.cfg.Grace) * w.cfg.Period
	fire := false
	if since > limit {
		if !w.stalled {
			w.stalled = true
			w.stalls++
			fire = true
		}
	} else {
		w.stalled = false
	}
	onStall := w.cfg.OnStall
	w.mu.Unlock()
	if fire && onStall != nil {
		onStall(since)
	}
	return fire || since > limit
}

// Run checks liveness every period until ctx is done. Start it in its own
// goroutine alongside the control loop.
func (w *Watchdog) Run(ctx context.Context) {
	t := time.NewTicker(w.cfg.Period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.Check()
		}
	}
}

// Status reports the watchdog's health: whether a stall is ongoing, how
// many stall episodes have fired, total beats, and the last beat time.
func (w *Watchdog) Status() (stalled bool, stalls, beats int, lastBeat time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stalled, w.stalls, w.beats, w.lastBeat
}
