package resilience

import (
	"path/filepath"
	"strings"
	"testing"
)

// FuzzReadCheckpoint: checkpoint parsing must never panic, and anything
// it accepts must pass its own validation — the daemon restores whatever
// ReadCheckpoint returns directly into its learned state.
func FuzzReadCheckpoint(f *testing.F) {
	f.Add(`{"version":1,"periods":3,"template":{"version":2,"sensitive_app":"vlc","dim":2,"states":[{"x":1,"y":2,"label":"violation","weight":3,"vector":[0.4,0.5]}],"ranges":{"cpu":{"max":400}}}}`)
	f.Add(`{"version":1,"periods":0,"template":{"version":2,"dim":2,"states":[]}}`)
	f.Add(`{"version":1,"template":null}`)
	f.Add(`{"version":99,"template":{}}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Add(`{"version":1,"periods":-4,"template":{"version":2}}`)
	f.Add(`{"version":1,"template":{"version":2,"dim":2,"states":[]}}trailing`)
	f.Add(`{"version":1,"periods":3,"template":{"version":2,"dim":2,"states":[{"vector":[0.1`)
	f.Add(`{"version":1,"models":{"single_model":true,"models":[]},"controller":{"beta":0.05,"level":1}}`)
	f.Add(`{"version":1,"controller":{"beta":-1},"template":{"version":2,"dim":2,"states":[]}}`)
	f.Fuzz(func(t *testing.T, input string) {
		ck, err := ReadCheckpoint(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted checkpoints must be self-consistent: Validate is what
		// SaveCheckpoint and the daemon's restore path rely on.
		if err := ck.Validate(); err != nil {
			t.Fatalf("accepted checkpoint fails validation: %v", err)
		}
		if ck.Template == nil {
			t.Fatal("accepted checkpoint with nil template")
		}
	})
}

// FuzzLedgerLoad: ledger parsing must never panic, and anything it
// accepts must contain only well-formed entries — recovery replays these
// IDs straight into the actuator.
func FuzzLedgerLoad(f *testing.F) {
	f.Add(`{"version":1,"seq":3,"entries":[{"id":"a","frozen":true,"level":0,"seq":3}]}`)
	f.Add(`{"version":1,"entries":[]}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Add(`{"version":1,"entries":[{"id":"","frozen":true,"level":0}]}`)
	f.Add(`{"version":1,"entries":[{"id":"a","level":2}]}`)
	f.Add(`{"version":1,"entries":[{"id":"a","level":-0.5}]}`)
	f.Add(`{"version":99}`)
	f.Add(`{"version":1,"seq":`)
	f.Add(`{"version":1,"entries":[{"id":"a","level":0.5},{"id":"a","level":0.25}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		l := &Ledger{
			path:    filepath.Join(t.TempDir(), "ledger.json"),
			entries: map[string]LedgerEntry{},
		}
		if err := l.load([]byte(input)); err != nil {
			return
		}
		for _, e := range l.Outstanding() {
			if e.ID == "" {
				t.Fatal("accepted entry with empty ID")
			}
			if e.Level < 0 || e.Level > 1 || e.Level != e.Level {
				t.Fatalf("accepted entry with level %v", e.Level)
			}
			if !e.Frozen && e.Level >= 1 {
				t.Fatalf("unthrottled entry %q survived as outstanding", e.ID)
			}
		}
	})
}
