package resilience

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/statespace"
)

func sampleCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	s := statespace.NewSpace()
	s.Add(mds.Coord{X: 0, Y: 0}, []float64{0.1, 0.2}, 1)
	v := s.Add(mds.Coord{X: 3, Y: 4}, []float64{0.9, 0.8}, 2)
	if err := s.MarkViolation(v); err != nil {
		t.Fatal(err)
	}
	sch, err := metrics.NewSchema([]string{"vlc"},
		[]metrics.Metric{metrics.MetricCPU, metrics.MetricMemory})
	if err != nil {
		t.Fatal(err)
	}
	ranges := map[metrics.Metric]metrics.Range{
		metrics.MetricCPU:    {Max: 400},
		metrics.MetricMemory: {Max: 2048},
	}
	return &Checkpoint{
		Version:  1,
		Periods:  42,
		Template: statespace.Export(s, "vlc", ranges, sch),
	}
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	ck := sampleCheckpoint(t)
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("loaded nil checkpoint")
	}
	if got.Periods != 42 || len(got.Template.States) != 2 {
		t.Errorf("roundtrip = periods %d, %d states", got.Periods, len(got.Template.States))
	}
	if got.Template.SensitiveApp != "vlc" {
		t.Errorf("sensitive app = %q", got.Template.SensitiveApp)
	}
}

func TestLoadCheckpointMissingIsColdStart(t *testing.T) {
	ck, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || ck != nil {
		t.Errorf("missing checkpoint = (%v, %v), want (nil, nil)", ck, err)
	}
}

func TestSaveCheckpointRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	if err := SaveCheckpoint(path, nil); err == nil {
		t.Error("nil checkpoint should not save")
	}
	if err := SaveCheckpoint(path, &Checkpoint{Version: 1}); err == nil {
		t.Error("template-less checkpoint should not save")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("rejected checkpoint left a file behind")
	}
}

func TestReadCheckpointCorruptInputs(t *testing.T) {
	var buf bytes.Buffer
	if _, err := sampleCheckpoint(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.String()

	cases := map[string]struct {
		input   string
		wantErr error
	}{
		"empty":      {"", io.ErrUnexpectedEOF},
		"garbage":    {"not json", nil},
		"truncated":  {valid[:len(valid)/2], nil},
		"trailing":   {valid + "trailing", ErrCorruptCheckpoint},
		"badVersion": {`{"version":99,"template":{"version":2}}`, ErrCorruptCheckpoint},
		"noTemplate": {`{"version":1,"periods":3}`, ErrCorruptCheckpoint},
		"negPeriods": {strings.Replace(valid, `"periods": 42`, `"periods": -1`, 1), ErrCorruptCheckpoint},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			ck, err := ReadCheckpoint(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("accepted corrupt input, got %+v", ck)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Errorf("err = %v, want wrapping %v", err, tc.wantErr)
			}
		})
	}
}

func TestLoadCheckpointCorruptFileErrorsNotPanics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	if err := os.WriteFile(path, []byte(`{"version":1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("corrupt checkpoint file should error")
	}
}
