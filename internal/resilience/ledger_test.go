package resilience

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func ledgerPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "ledger.json")
}

func TestOpenLedgerMissingFileIsEmpty(t *testing.T) {
	l, err := OpenLedger(ledgerPath(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Outstanding(); len(got) != 0 {
		t.Errorf("fresh ledger outstanding = %v", got)
	}
}

func TestOpenLedgerEmptyPathErrors(t *testing.T) {
	if _, err := OpenLedger(""); err == nil {
		t.Error("empty path should error")
	}
}

func TestLedgerRecordAndReload(t *testing.T) {
	path := ledgerPath(t)
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RecordFreeze([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordLevel([]string{"b"}, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordThaw([]string{"a"}); err != nil {
		t.Fatal(err)
	}

	// A new incarnation reading the same file must see exactly the
	// restrictions that were never released.
	l2, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	out := l2.Outstanding()
	if len(out) != 1 || out[0].ID != "b" || !out[0].Frozen || out[0].Level != 0.5 {
		t.Fatalf("outstanding after reload = %+v", out)
	}
}

func TestLedgerThawDropsEntry(t *testing.T) {
	path := ledgerPath(t)
	l, _ := OpenLedger(path)
	if err := l.RecordFreeze([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordThaw([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if out := l.Outstanding(); len(out) != 0 {
		t.Errorf("outstanding after thaw = %v", out)
	}
	l2, _ := OpenLedger(path)
	if out := l2.Outstanding(); len(out) != 0 {
		t.Errorf("outstanding after reload = %v", out)
	}
}

func TestLedgerLevelOneDropsEntry(t *testing.T) {
	l, _ := OpenLedger(ledgerPath(t))
	if err := l.RecordLevel([]string{"a"}, 0.25); err != nil {
		t.Fatal(err)
	}
	if out := l.Outstanding(); len(out) != 1 {
		t.Fatalf("outstanding = %v", out)
	}
	if err := l.RecordLevel([]string{"a"}, 1); err != nil {
		t.Fatal(err)
	}
	if out := l.Outstanding(); len(out) != 0 {
		t.Errorf("level-1 record should drop the entry, got %v", out)
	}
}

func TestLedgerReset(t *testing.T) {
	path := ledgerPath(t)
	l, _ := OpenLedger(path)
	if err := l.RecordFreeze([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	l2, _ := OpenLedger(path)
	if out := l2.Outstanding(); len(out) != 0 {
		t.Errorf("outstanding after reset+reload = %v", out)
	}
}

func TestOpenLedgerCorruptFileFailsSafeButUsable(t *testing.T) {
	cases := map[string]string{
		"garbage":    "not json at all",
		"truncated":  `{"version":1,"entries":[{"id":"a","froz`,
		"badVersion": `{"version":99,"entries":[]}`,
		"emptyID":    `{"version":1,"entries":[{"id":"","frozen":true,"level":0}]}`,
		"badLevel":   `{"version":1,"entries":[{"id":"a","level":7}]}`,
		"nanLevel":   `{"version":1,"entries":[{"id":"a","level":null},{"id":"b","level":-1}]}`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := ledgerPath(t)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := OpenLedger(path)
			if !errors.Is(err, ErrCorruptLedger) {
				t.Fatalf("err = %v, want ErrCorruptLedger", err)
			}
			if l == nil {
				t.Fatal("corrupt ledger must still return a usable ledger")
			}
			// The empty ledger must be fully usable: the caller logs the
			// corruption, thaws everything, and keeps going.
			if out := l.Outstanding(); len(out) != 0 {
				t.Errorf("corrupt ledger leaked entries: %v", out)
			}
			if err := l.RecordFreeze([]string{"x"}); err != nil {
				t.Errorf("recording after corruption: %v", err)
			}
		})
	}
}

func TestLedgerUpdateSkipsEmptyIDs(t *testing.T) {
	l, _ := OpenLedger(ledgerPath(t))
	if err := l.RecordFreeze([]string{"", "a"}); err != nil {
		t.Fatal(err)
	}
	out := l.Outstanding()
	if len(out) != 1 || out[0].ID != "a" {
		t.Errorf("outstanding = %v, want just a", out)
	}
}

func TestLedgerPersistFailureSurfaces(t *testing.T) {
	// A path whose parent directory does not exist: every persist fails,
	// and that failure must reach the caller (the actuation is aborted).
	l := &Ledger{
		path:    filepath.Join(t.TempDir(), "missing-dir", "ledger.json"),
		entries: map[string]LedgerEntry{},
	}
	if err := l.RecordFreeze([]string{"a"}); err == nil {
		t.Error("persist into missing directory should error")
	}
}
