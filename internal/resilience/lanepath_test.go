package resilience

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestLaneCheckpointPath(t *testing.T) {
	got := LaneCheckpointPath("/var/lib/stayaway", "kv-store")
	if want := filepath.Join("/var/lib/stayaway", "checkpoint-kv-store.json"); got != want {
		t.Fatalf("path = %q, want %q", got, want)
	}

	// Hostile names stay inside the state dir.
	for _, app := range []string{"../escape", "a/b", ".", "..", "", "web app"} {
		p := LaneCheckpointPath("/state", app)
		if filepath.Dir(p) != "/state" {
			t.Fatalf("app %q escaped the state dir: %q", app, p)
		}
		base := filepath.Base(p)
		if !strings.HasPrefix(base, "checkpoint-") || !strings.HasSuffix(base, ".json") {
			t.Fatalf("app %q: unexpected file name %q", app, base)
		}
	}

	// Lossy sanitization must not collide distinct applications.
	if a, b := LaneCheckpointPath("/s", "a/b"), LaneCheckpointPath("/s", "a_b"); a == b {
		t.Fatalf("distinct apps map to one checkpoint file: %q", a)
	}
	if a, b := LaneCheckpointPath("/s", "a/b"), LaneCheckpointPath("/s", "a:b"); a == b {
		t.Fatalf("distinct apps map to one checkpoint file: %q", a)
	}
}
