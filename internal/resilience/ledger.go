// Package resilience makes the Stay-Away daemon crash-safe. A stayawayd
// that dies mid-freeze silently inverts the system's guarantee: batch
// cgroups stay frozen forever (starvation) and every learned
// violation-state, per-mode histogram and resume threshold β is lost.
// This package provides the three pieces that close that hole:
//
//   - Ledger: a write-ahead record of every freeze/quota/memory.high
//     actuation, persisted atomically before the actuation is applied, so
//     a restarted daemon knows exactly which throttles may have outlived
//     the crash and can thaw them (Recover).
//   - Checkpoint: periodic atomic snapshots of the learned state — the
//     state-space template, per-mode trajectory histograms, β — restored
//     at boot so a crash never forces the host to relearn from scratch.
//   - Watchdog: control-loop liveness detection with a configurable
//     fail-safe action (default: thaw everything), for stalls the loop
//     itself cannot observe, e.g. a collector blocked on a hung cgroupfs
//     read.
package resilience

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"repro/internal/fsatomic"
)

// ledgerVersion is the current on-disk ledger format version.
const ledgerVersion = 1

// ErrCorruptLedger marks a ledger file that could not be parsed or failed
// structural validation. OpenLedger still returns a usable (empty) ledger
// alongside it: a corrupt ledger means the throttle state is unknown, and
// the caller's correct response is to fail safe (thaw everything), not to
// crash.
var ErrCorruptLedger = errors.New("corrupt actuation ledger")

// LedgerEntry is the recorded actuation intent for one throttle target
// (a cgroup path or the logical batch ID in PID mode). It describes the
// most restrictive state the target may be in: the write-ahead discipline
// records intent *before* freezing/limiting and clears it only *after* a
// successful full release, so after a crash the entry is an upper bound
// on the throttling that may still be applied.
type LedgerEntry struct {
	// ID is the throttle target (cgroup path or logical batch ID).
	ID string `json:"id"`
	// Frozen records a pause intent (cgroup.freeze = 1 / SIGSTOP).
	Frozen bool `json:"frozen,omitempty"`
	// Level is the last intended CPU fraction; 1 means no quota.
	Level float64 `json:"level"`
	// Seq is the ledger sequence number of the last update, for
	// post-mortem ordering.
	Seq uint64 `json:"seq"`
}

// throttledEntry reports whether the entry still describes any applied
// restriction; fully released entries are dropped from the ledger.
func (e LedgerEntry) throttled() bool {
	return e.Frozen || e.Level < 1
}

// ledgerFile is the serialized form.
type ledgerFile struct {
	Version int           `json:"version"`
	Seq     uint64        `json:"seq"`
	Entries []LedgerEntry `json:"entries"`
}

// Ledger is the on-disk actuation ledger. It is safe for concurrent use;
// every mutation is persisted atomically (fsatomic) before the method
// returns, so the file on disk never runs behind the actuations the
// daemon is about to apply.
type Ledger struct {
	path string

	mu      sync.Mutex
	seq     uint64
	entries map[string]LedgerEntry
}

// OpenLedger opens (or creates) the ledger at path. A missing file is an
// empty ledger. A corrupt or truncated file returns a usable empty ledger
// together with an error wrapping ErrCorruptLedger — never a panic: the
// caller should log it and fail safe.
func OpenLedger(path string) (*Ledger, error) {
	if path == "" {
		return nil, fmt.Errorf("resilience: empty ledger path")
	}
	l := &Ledger{path: path, entries: make(map[string]LedgerEntry)}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return l, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resilience: read ledger %s: %w", path, err)
	}
	if err := l.load(data); err != nil {
		// Reset anything a partial parse may have left behind.
		l.seq = 0
		l.entries = make(map[string]LedgerEntry)
		return l, fmt.Errorf("resilience: ledger %s: %w", path, err)
	}
	return l, nil
}

// load parses and validates serialized ledger content.
func (l *Ledger) load(data []byte) error {
	var f ledgerFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptLedger, err)
	}
	if f.Version < 1 || f.Version > ledgerVersion {
		return fmt.Errorf("%w: version %d, support 1..%d", ErrCorruptLedger, f.Version, ledgerVersion)
	}
	for _, e := range f.Entries {
		if e.ID == "" {
			return fmt.Errorf("%w: entry with empty ID", ErrCorruptLedger)
		}
		if math.IsNaN(e.Level) || math.IsInf(e.Level, 0) || e.Level < 0 || e.Level > 1 {
			return fmt.Errorf("%w: entry %q has level %v", ErrCorruptLedger, e.ID, e.Level)
		}
		l.entries[e.ID] = e
	}
	l.seq = f.Seq
	return nil
}

// Path returns the ledger's file location.
func (l *Ledger) Path() string { return l.path }

// update applies fn to the entry for each ID and persists the result
// before returning — the write-ahead step.
func (l *Ledger) update(ids []string, fn func(*LedgerEntry)) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, id := range ids {
		if id == "" {
			continue
		}
		l.seq++
		e, ok := l.entries[id]
		if !ok {
			e = LedgerEntry{ID: id, Level: 1}
		}
		fn(&e)
		e.Seq = l.seq
		if e.throttled() {
			l.entries[id] = e
		} else {
			delete(l.entries, id)
		}
	}
	return l.persistLocked()
}

// RecordFreeze records the intent to freeze the given targets. Call it
// BEFORE actuating: a crash between the record and the freeze makes
// recovery thaw an already-thawed target, which is harmless; the reverse
// order would leave a frozen target invisible to recovery.
func (l *Ledger) RecordFreeze(ids []string) error {
	return l.update(ids, func(e *LedgerEntry) { e.Frozen = true })
}

// RecordLevel records the intent to cap the targets at the given CPU
// fraction. Levels below 1 must be recorded before actuating; level >= 1
// (a release) should be recorded after the actuation succeeded.
func (l *Ledger) RecordLevel(ids []string, level float64) error {
	if level < 0 {
		level = 0
	}
	if level > 1 {
		level = 1
	}
	return l.update(ids, func(e *LedgerEntry) { e.Level = level })
}

// RecordThaw records a completed thaw/release of the given targets. Call
// it AFTER the actuation succeeded: recovery re-thawing a target whose
// clear record was lost is harmless.
func (l *Ledger) RecordThaw(ids []string) error {
	return l.update(ids, func(e *LedgerEntry) { e.Frozen = false; e.Level = 1 })
}

// Outstanding returns every entry still describing an applied
// restriction, sorted by ID.
func (l *Ledger) Outstanding() []LedgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LedgerEntry, 0, len(l.entries))
	for _, e := range l.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Reset drops every entry and persists the empty ledger — the final step
// of a successful recovery.
func (l *Ledger) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = make(map[string]LedgerEntry)
	return l.persistLocked()
}

// persistLocked writes the ledger atomically. The caller holds l.mu.
func (l *Ledger) persistLocked() error {
	f := ledgerFile{Version: ledgerVersion, Seq: l.seq}
	for _, e := range l.entries {
		f.Entries = append(f.Entries, e)
	}
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].ID < f.Entries[j].ID })
	return fsatomic.WriteFileFunc(l.path, 0o644, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(f)
	})
}
