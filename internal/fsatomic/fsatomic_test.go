package fsatomic

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2" {
		t.Errorf("content = %q, want v2", data)
	}
}

func TestWriteFileFuncFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileFunc(path, 0o644, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "old" {
		t.Errorf("failed write clobbered content: %q", data)
	}
	// No stray temp files either.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Error("missing directory should error")
	}
}
