// Package fsatomic provides crash-safe file replacement: content is
// written to a temporary file in the destination directory and renamed
// into place, so concurrent readers (and a crash mid-write) never observe
// a torn file. It is the persistence pattern of internal/registry,
// extracted for every map/report writer in the repository.
package fsatomic

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temporary file is
// created in path's directory so the final rename never crosses a
// filesystem boundary.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFileFunc(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteFileFunc atomically replaces path with whatever write produces.
// On any failure the temporary file is removed and the previous content
// of path (if any) is left untouched.
func WriteFileFunc(path string, perm os.FileMode, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*.tmp")
	if err != nil {
		return fmt.Errorf("fsatomic: temp file for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if err := write(tmp); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("fsatomic: write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("fsatomic: chmod %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("fsatomic: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("fsatomic: rename into %s: %w", path, err)
	}
	return nil
}
