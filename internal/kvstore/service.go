package kvstore

import (
	"fmt"
	"math/rand"
)

// OpKind is a Webservice operation class (§7.1: "capable of performing
// statistical analysis and aggregation of data for each monitored metric
// and to serve requested data for any specific period").
type OpKind int

const (
	// OpGet serves one record for a specific period.
	OpGet OpKind = iota
	// OpAggregate aggregates one node's metric over a period window.
	OpAggregate
	// OpAnalyze runs statistical analysis of one metric across the whole
	// fleet for a period window — the CPU-heavy operation.
	OpAnalyze
)

// String names the operation.
func (o OpKind) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpAggregate:
		return "aggregate"
	case OpAnalyze:
		return "analyze"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Request is one client operation.
type Request struct {
	Op          OpKind
	Node        int
	MetricIdx   int
	PeriodStart int
	// PeriodCount is the window length for aggregate/analyze.
	PeriodCount int
	// NodeCount bounds how many nodes an analysis scans, starting at
	// Node; 0 scans the whole fleet.
	NodeCount int
}

// Cost is the resource consumption of executing one request: the request-
// driven Webservice model translates accumulated costs into a sim.Demand.
type Cost struct {
	// CPUUnits is abstract compute (1 ≈ the work of serving one cached
	// record).
	CPUUnits float64
	// HotBytes is data actually touched (drives the active working set).
	HotBytes int64
	// DiskBytes is backend traffic for cache misses.
	DiskBytes int64
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) {
	c.CPUUnits += o.CPUUnits
	c.HotBytes += o.HotBytes
	c.DiskBytes += o.DiskBytes
}

// Mix is a distribution over operation kinds; weights need not sum to 1.
type Mix map[OpKind]float64

// Service executes requests against the Memcached layer, faulting misses
// in from the (simulated) backing store.
type Service struct {
	data  *Dataset
	cache *LRU

	// analyzeCPUPerRecord scales OpAnalyze's per-record compute: analysis
	// does statistics on top of fetching.
	analyzeCPUPerRecord float64
}

// NewService builds a service over the dataset with a Memcached layer of
// the given byte capacity.
func NewService(data *Dataset, cacheBytes int64) (*Service, error) {
	if data == nil {
		return nil, fmt.Errorf("kvstore: nil dataset")
	}
	if err := data.Validate(); err != nil {
		return nil, err
	}
	cache, err := NewLRU(cacheBytes)
	if err != nil {
		return nil, err
	}
	return &Service{data: data, cache: cache, analyzeCPUPerRecord: 4}, nil
}

// Cache exposes the Memcached layer for inspection.
func (s *Service) Cache() *LRU { return s.cache }

// touch fetches one record through the cache and returns its cost.
func (s *Service) touch(key string) Cost {
	if size, ok := s.cache.Get(key); ok {
		return Cost{CPUUnits: 1, HotBytes: size}
	}
	size := s.data.RecordSize(key)
	// A miss reads the backend and populates the cache.
	_ = s.cache.Put(key, size)
	return Cost{CPUUnits: 1.5, HotBytes: size, DiskBytes: size}
}

// Execute runs one request and returns its cost.
func (s *Service) Execute(req Request) Cost {
	var cost Cost
	switch req.Op {
	case OpGet:
		cost = s.touch(s.data.Key(req.Node, req.MetricIdx, req.PeriodStart))
	case OpAggregate:
		// Aggregation windows look backward from the requested period
		// ("average the last n samples"), keeping them inside the hot set
		// when the request targets the present.
		n := req.PeriodCount
		if n < 1 {
			n = 1
		}
		for p := 0; p < n; p++ {
			cost.Add(s.touch(s.data.Key(req.Node, req.MetricIdx, req.PeriodStart-p)))
		}
		cost.CPUUnits += 0.5 * float64(n) // the aggregation itself
	case OpAnalyze:
		n := req.PeriodCount
		if n < 1 {
			n = 1
		}
		nodes := req.NodeCount
		if nodes <= 0 || nodes > s.data.Nodes {
			nodes = s.data.Nodes
		}
		for i := 0; i < nodes; i++ {
			for p := 0; p < n; p++ {
				cost.Add(s.touch(s.data.Key(req.Node+i, req.MetricIdx, req.PeriodStart-p)))
			}
		}
		cost.CPUUnits += s.analyzeCPUPerRecord * float64(nodes*n)
	}
	return cost
}

// IngestPeriod writes one monitoring period's records for the whole fleet
// into the Memcached layer — the collector pipeline that keeps "now"
// queries hot. It returns the ingestion cost (CPU for deserialization and
// the bytes touched; the data arrives over the network, not from disk).
func (s *Service) IngestPeriod(period int) Cost {
	var cost Cost
	for node := 0; node < s.data.Nodes; node++ {
		for m := range s.data.Metrics {
			key := s.data.Key(node, m, period)
			size := s.data.RecordSize(key)
			_ = s.cache.Put(key, size)
			cost.CPUUnits += 0.3
			cost.HotBytes += size
		}
	}
	return cost
}

// hotWindowPeriods and hotFraction shape request locality: most
// monitoring queries ask about the recently completed periods.
const (
	hotWindowPeriods = 4
	hotFraction      = 0.85
)

// SampleRequest draws a request from the mix, with locality: hotFraction
// of requests address the last hotWindowPeriods periods ("what is the
// fleet doing now"), the rest spread uniformly over the archive. The hot
// window is what makes the Memcached layer effective.
func (s *Service) SampleRequest(rng *rand.Rand, mix Mix, nowPeriod int) Request {
	op := sampleOp(rng, mix)
	var back int
	if rng.Float64() < hotFraction {
		back = 1 + rng.Intn(hotWindowPeriods) // completed, ingested periods
	} else {
		back = rng.Intn(s.data.Periods)
	}
	req := Request{
		Op:          op,
		Node:        rng.Intn(s.data.Nodes),
		MetricIdx:   rng.Intn(len(s.data.Metrics)),
		PeriodStart: nowPeriod - back,
	}
	switch op {
	case OpAggregate:
		req.PeriodCount = 5 + rng.Intn(20)
	case OpAnalyze:
		// Analyses scan node groups, not the whole fleet per request —
		// dashboards fan one fleet sweep out into many group queries.
		req.PeriodCount = 1 + rng.Intn(3)
		req.NodeCount = 4 + rng.Intn(8)
	}
	return req
}

func sampleOp(rng *rand.Rand, mix Mix) OpKind {
	total := 0.0
	for _, w := range mix {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return OpGet
	}
	u := rng.Float64() * total
	for _, op := range []OpKind{OpGet, OpAggregate, OpAnalyze} {
		w := mix[op]
		if w <= 0 {
			continue
		}
		if u < w {
			return op
		}
		u -= w
	}
	return OpGet
}
