package kvstore

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNewLRUValidation(t *testing.T) {
	if _, err := NewLRU(0); err == nil {
		t.Error("zero capacity should error")
	}
	if _, err := NewLRU(-5); err == nil {
		t.Error("negative capacity should error")
	}
}

func TestLRUBasics(t *testing.T) {
	c, err := NewLRU(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	if err := c.Put("a", 40); err != nil {
		t.Fatal(err)
	}
	size, ok := c.Get("a")
	if !ok || size != 40 {
		t.Errorf("get a = %d,%v", size, ok)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	if c.Len() != 1 || c.UsedBytes() != 40 || c.Capacity() != 100 {
		t.Errorf("len=%d used=%d cap=%d", c.Len(), c.UsedBytes(), c.Capacity())
	}
}

func TestLRUPutValidation(t *testing.T) {
	c, _ := NewLRU(100)
	if err := c.Put("x", 0); err == nil {
		t.Error("zero size should error")
	}
	if err := c.Put("x", 101); err == nil {
		t.Error("oversized value should error")
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := NewLRU(100)
	for i := 0; i < 5; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), 25); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 100 holds 4 of the 5: k0 evicted.
	if c.Contains("k0") {
		t.Error("k0 should have been evicted")
	}
	for i := 1; i < 5; i++ {
		if !c.Contains(fmt.Sprintf("k%d", i)) {
			t.Errorf("k%d missing", i)
		}
	}
	_, _, ev := c.Stats()
	if ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c, _ := NewLRU(100)
	for i := 0; i < 4; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), 25); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 becomes the eviction victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 should be present")
	}
	if err := c.Put("k4", 25); err != nil {
		t.Fatal(err)
	}
	if !c.Contains("k0") {
		t.Error("recently used k0 was evicted")
	}
	if c.Contains("k1") {
		t.Error("LRU victim k1 survived")
	}
}

func TestLRUUpdateSize(t *testing.T) {
	c, _ := NewLRU(100)
	if err := c.Put("a", 30); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", 60); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 || c.UsedBytes() != 60 {
		t.Errorf("len=%d used=%d after resize", c.Len(), c.UsedBytes())
	}
	// Shrinking works too.
	if err := c.Put("a", 10); err != nil {
		t.Fatal(err)
	}
	if c.UsedBytes() != 10 {
		t.Errorf("used = %d after shrink", c.UsedBytes())
	}
}

func TestLRUHitRate(t *testing.T) {
	c, _ := NewLRU(100)
	if c.HitRate() != 0 {
		t.Error("fresh hit rate should be 0")
	}
	_ = c.Put("a", 10)
	c.Get("a")
	c.Get("b")
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", c.HitRate())
	}
}

// Property: occupancy never exceeds capacity and equals the sum of
// resident entry sizes.
func TestLRUInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c, err := NewLRU(1000)
		if err != nil {
			return false
		}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%50)
			size := int64(op%400) + 1
			if op%3 == 0 {
				c.Get(key)
			} else if err := c.Put(key, size); err != nil {
				return false
			}
			if c.UsedBytes() > c.Capacity() || c.UsedBytes() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
