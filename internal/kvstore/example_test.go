package kvstore_test

import (
	"fmt"

	"repro/internal/kvstore"
)

// The Memcached layer: byte-bounded LRU with eviction.
func ExampleLRU() {
	cache, _ := kvstore.NewLRU(100)
	_ = cache.Put("a", 60)
	_ = cache.Put("b", 60) // evicts "a"
	_, hitA := cache.Get("a")
	_, hitB := cache.Get("b")
	fmt.Printf("a cached: %v, b cached: %v\n", hitA, hitB)
	// Output:
	// a cached: false, b cached: true
}

// Serving a record twice: the first access misses to the backend, the
// second hits the cache at lower cost.
func ExampleService_Execute() {
	svc, _ := kvstore.NewService(kvstore.DefaultDataset(), 1<<20)
	req := kvstore.Request{Op: kvstore.OpGet, Node: 3, MetricIdx: 0, PeriodStart: 42}
	first := svc.Execute(req)
	second := svc.Execute(req)
	fmt.Printf("first from backend: %v\n", first.DiskBytes > 0)
	fmt.Printf("second from cache:  %v\n", second.DiskBytes == 0)
	// Output:
	// first from backend: true
	// second from cache:  true
}
