package kvstore

import (
	"fmt"
	"hash/fnv"
)

// Dataset describes a CONFINE-like monitoring dataset: periodic host
// metrics and topology records for a fleet of community-network nodes.
// Records are addressed (node, metric, period); sizes are deterministic
// pseudo-random so experiments are reproducible without storing payloads.
type Dataset struct {
	// Nodes is the fleet size (the paper's dataset covers "more than 80
	// nodes").
	Nodes int
	// Metrics are the monitored per-node series.
	Metrics []string
	// Periods is the number of stored monitoring periods per series.
	Periods int
	// MinRecordBytes and MaxRecordBytes bound record sizes.
	MinRecordBytes, MaxRecordBytes int64
}

// DefaultDataset mirrors the community-lab testbed's shape.
func DefaultDataset() *Dataset {
	return &Dataset{
		Nodes:          84,
		Metrics:        []string{"cpu", "memory", "traffic", "links", "uptime"},
		Periods:        1440, // a day of minute-granularity records
		MinRecordBytes: 256,
		MaxRecordBytes: 4096,
	}
}

// Validate checks the dataset's shape.
func (d *Dataset) Validate() error {
	if d.Nodes <= 0 || len(d.Metrics) == 0 || d.Periods <= 0 {
		return fmt.Errorf("kvstore: empty dataset dimensions: %+v", d)
	}
	if d.MinRecordBytes <= 0 || d.MaxRecordBytes < d.MinRecordBytes {
		return fmt.Errorf("kvstore: invalid record size bounds [%d,%d]", d.MinRecordBytes, d.MaxRecordBytes)
	}
	return nil
}

// NumKeys returns the total number of addressable records.
func (d *Dataset) NumKeys() int { return d.Nodes * len(d.Metrics) * d.Periods }

// Key renders the record address. Indices are taken modulo the dataset
// dimensions so samplers cannot address outside the dataset.
func (d *Dataset) Key(node, metricIdx, period int) string {
	node = mod(node, d.Nodes)
	metricIdx = mod(metricIdx, len(d.Metrics))
	period = mod(period, d.Periods)
	return fmt.Sprintf("%d/%s/%d", node, d.Metrics[metricIdx], period)
}

// RecordSize returns the deterministic size of a record in bytes.
func (d *Dataset) RecordSize(key string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	span := d.MaxRecordBytes - d.MinRecordBytes + 1
	return d.MinRecordBytes + int64(h.Sum64()%uint64(span))
}

// TotalBytes estimates the whole dataset's size from the mean record size.
func (d *Dataset) TotalBytes() int64 {
	mean := (d.MinRecordBytes + d.MaxRecordBytes) / 2
	return int64(d.NumKeys()) * mean
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}
