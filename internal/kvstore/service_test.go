package kvstore

import (
	"math/rand"
	"testing"
)

func TestDatasetValidate(t *testing.T) {
	d := DefaultDataset()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *d
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nodes should error")
	}
	bad = *d
	bad.MaxRecordBytes = 1
	if err := bad.Validate(); err == nil {
		t.Error("max < min should error")
	}
}

func TestDatasetKeys(t *testing.T) {
	d := DefaultDataset()
	k := d.Key(3, 1, 100)
	if k != "3/memory/100" {
		t.Errorf("key = %q", k)
	}
	// Indices wrap instead of panicking.
	if d.Key(-1, 0, 0) == "" || d.Key(d.Nodes+2, 0, -5) == "" {
		t.Error("wrapped keys should render")
	}
	if d.NumKeys() != 84*5*1440 {
		t.Errorf("NumKeys = %d", d.NumKeys())
	}
}

func TestDatasetRecordSizeDeterministic(t *testing.T) {
	d := DefaultDataset()
	k := d.Key(1, 2, 3)
	a, b := d.RecordSize(k), d.RecordSize(k)
	if a != b {
		t.Errorf("sizes differ: %d vs %d", a, b)
	}
	if a < d.MinRecordBytes || a > d.MaxRecordBytes {
		t.Errorf("size %d outside [%d,%d]", a, d.MinRecordBytes, d.MaxRecordBytes)
	}
	if d.TotalBytes() <= 0 {
		t.Error("total bytes should be positive")
	}
}

func newTestService(t *testing.T, cacheBytes int64) *Service {
	t.Helper()
	s, err := NewService(DefaultDataset(), cacheBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := NewService(nil, 1024); err == nil {
		t.Error("nil dataset should error")
	}
	bad := DefaultDataset()
	bad.Periods = 0
	if _, err := NewService(bad, 1024); err == nil {
		t.Error("invalid dataset should error")
	}
	if _, err := NewService(DefaultDataset(), 0); err == nil {
		t.Error("zero cache should error")
	}
}

func TestExecuteGetMissThenHit(t *testing.T) {
	s := newTestService(t, 1<<20)
	req := Request{Op: OpGet, Node: 1, MetricIdx: 0, PeriodStart: 10}
	miss := s.Execute(req)
	if miss.DiskBytes == 0 {
		t.Error("first get should miss and read the backend")
	}
	hit := s.Execute(req)
	if hit.DiskBytes != 0 {
		t.Error("second get should hit the cache")
	}
	if hit.CPUUnits >= miss.CPUUnits {
		t.Errorf("hit CPU %v should be below miss CPU %v", hit.CPUUnits, miss.CPUUnits)
	}
	if hit.HotBytes == 0 {
		t.Error("hits still touch memory")
	}
}

func TestExecuteAggregateTouchesWindow(t *testing.T) {
	s := newTestService(t, 1<<22)
	req := Request{Op: OpAggregate, Node: 2, MetricIdx: 1, PeriodStart: 0, PeriodCount: 20}
	cost := s.Execute(req)
	if cost.CPUUnits < 20 {
		t.Errorf("aggregate over 20 periods cost %v CPU, want ≥ 20", cost.CPUUnits)
	}
	if s.Cache().Len() < 20 {
		t.Errorf("cache has %d entries, want ≥ 20", s.Cache().Len())
	}
	// Degenerate window clamps to 1.
	c2 := s.Execute(Request{Op: OpAggregate, Node: 2, MetricIdx: 1, PeriodStart: 5})
	if c2.CPUUnits <= 0 {
		t.Error("zero-window aggregate should still do work")
	}
}

func TestExecuteAnalyzeIsCPUHeavy(t *testing.T) {
	s := newTestService(t, 1<<24)
	get := s.Execute(Request{Op: OpGet, Node: 0, MetricIdx: 0, PeriodStart: 0})
	analyze := s.Execute(Request{Op: OpAnalyze, MetricIdx: 0, PeriodStart: 0, PeriodCount: 1})
	if analyze.CPUUnits < 100*get.CPUUnits {
		t.Errorf("analyze CPU %v should dwarf get CPU %v", analyze.CPUUnits, get.CPUUnits)
	}
	// Analysis touches every node's record.
	if s.Cache().Len() < DefaultDataset().Nodes {
		t.Errorf("cache has %d entries after fleet analysis", s.Cache().Len())
	}
}

func TestSmallCacheThrashes(t *testing.T) {
	// A cache far smaller than the working set must keep missing: this is
	// the memory-pressure regime of the memory-intensive workload.
	small := newTestService(t, 64<<10)
	big := newTestService(t, 64<<20)
	rng := rand.New(rand.NewSource(1))
	mix := Mix{OpGet: 1}
	for i := 0; i < 3000; i++ {
		req := small.SampleRequest(rng, mix, 1000)
		small.Execute(req)
		big.Execute(req)
	}
	if small.Cache().HitRate() >= big.Cache().HitRate() {
		t.Errorf("small cache hit rate %v should trail big cache %v",
			small.Cache().HitRate(), big.Cache().HitRate())
	}
	_, _, ev := small.Cache().Stats()
	if ev == 0 {
		t.Error("small cache should evict")
	}
}

func TestRecencyBiasImprovesHitRate(t *testing.T) {
	// With a cache sized to the hot window (the last few periods of every
	// series plus recent aggregation spans ≈ 25 MB, ~14% of the dataset),
	// the recency-biased sampler should achieve a solid hit rate.
	s := newTestService(t, 32<<20)
	rng := rand.New(rand.NewSource(2))
	mix := Mix{OpGet: 0.8, OpAggregate: 0.2}
	for i := 0; i < 5000; i++ {
		s.Execute(s.SampleRequest(rng, mix, 1000))
	}
	if hr := s.Cache().HitRate(); hr < 0.4 {
		t.Errorf("hit rate = %v, want ≥ 0.4 with recency bias", hr)
	}
}

func TestSampleRequestMix(t *testing.T) {
	s := newTestService(t, 1<<20)
	rng := rand.New(rand.NewSource(3))
	counts := map[OpKind]int{}
	mix := Mix{OpGet: 0.7, OpAnalyze: 0.3}
	for i := 0; i < 2000; i++ {
		counts[s.SampleRequest(rng, mix, 100).Op]++
	}
	if counts[OpAggregate] != 0 {
		t.Errorf("aggregate sampled %d times with zero weight", counts[OpAggregate])
	}
	frac := float64(counts[OpGet]) / 2000
	if frac < 0.63 || frac > 0.77 {
		t.Errorf("get fraction = %v, want ≈0.7", frac)
	}
	// Empty mix defaults to OpGet.
	if op := s.SampleRequest(rng, Mix{}, 0).Op; op != OpGet {
		t.Errorf("empty mix sampled %v", op)
	}
}

func TestOpKindString(t *testing.T) {
	if OpGet.String() != "get" || OpAggregate.String() != "aggregate" || OpAnalyze.String() != "analyze" {
		t.Error("op strings wrong")
	}
	if OpKind(9).String() == "" {
		t.Error("unknown op should format")
	}
}
