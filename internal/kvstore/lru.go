// Package kvstore implements the Webservice's storage substrate (§7.1):
// "It consists of a Memcached layer for in-memory data storage and
// performs analytics, if necessary, before serving the data. The data
// used for storage and analysis is the open dataset [of] periodic network
// topology information and monitored host metrics of more than 80 nodes."
//
// The package provides a byte-bounded LRU cache (the Memcached layer), a
// synthetic monitoring dataset shaped like the CONFINE open data, and a
// request engine whose operation costs drive the request-driven
// Webservice application model.
package kvstore

import (
	"container/list"
	"fmt"
)

// LRU is a byte-capacity-bounded least-recently-used cache. It is not safe
// for concurrent use; the Webservice model serializes requests.
type LRU struct {
	capacity  int64
	used      int64
	order     *list.List // front = most recent
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type lruEntry struct {
	key  string
	size int64
}

// NewLRU returns a cache holding at most capacity bytes.
func NewLRU(capacity int64) (*LRU, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("kvstore: capacity must be positive, got %d", capacity)
	}
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}, nil
}

// Get looks the key up, promoting it on hit. It returns the stored size.
func (c *LRU) Get(key string) (size int64, ok bool) {
	el, found := c.items[key]
	if !found {
		c.misses++
		return 0, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).size, true
}

// Put inserts or updates the key, evicting LRU entries until the value
// fits. Values larger than the whole cache are rejected.
func (c *LRU) Put(key string, size int64) error {
	if size <= 0 {
		return fmt.Errorf("kvstore: value size must be positive, got %d", size)
	}
	if size > c.capacity {
		return fmt.Errorf("kvstore: value of %d bytes exceeds cache capacity %d", size, c.capacity)
	}
	if el, ok := c.items[key]; ok {
		c.used += size - el.Value.(*lruEntry).size
		el.Value.(*lruEntry).size = size
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&lruEntry{key: key, size: size})
		c.used += size
	}
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*lruEntry)
		c.order.Remove(back)
		delete(c.items, e.key)
		c.used -= e.size
		c.evictions++
	}
	return nil
}

// Contains reports presence without touching recency or stats.
func (c *LRU) Contains(key string) bool {
	_, ok := c.items[key]
	return ok
}

// Len returns the number of cached entries.
func (c *LRU) Len() int { return c.order.Len() }

// UsedBytes returns the current cache occupancy.
func (c *LRU) UsedBytes() int64 { return c.used }

// Capacity returns the configured byte capacity.
func (c *LRU) Capacity() int64 { return c.capacity }

// Stats returns cumulative hit/miss/eviction counters.
func (c *LRU) Stats() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *LRU) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
