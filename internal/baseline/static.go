// Package baseline implements the comparison points the paper argues
// against: running co-locations with no prevention at all (the
// "without prevention" upper bands of §7.2, available by running an
// experiments.Scenario with StayAway=false), and a Bubble-Up-style static
// profiling policy (§1, §8) that profiles applications in isolation and
// admits a co-location only when the summed peak demands fit the host.
//
// The static policy demonstrates the limitation the paper motivates
// Stay-Away with: because it keys on isolated *peaks*, it rejects
// co-locations whose contention is rare or phase-dependent, forfeiting
// all the utilization Stay-Away harvests from low-intensity periods.
package baseline

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Profile captures an application's peak isolated resource demands, the
// information a static profiler extracts before deployment.
type Profile struct {
	// App names the profiled application.
	App string
	// PeakCPU, PeakActiveMemMB and PeakMemBWMBps are the maxima observed
	// over the profiling window.
	PeakCPU         float64
	PeakActiveMemMB float64
	PeakMemBWMBps   float64
	// Ticks is the length of the profiling window.
	Ticks int
}

// ProfileApp runs the application alone on the given host for the given
// number of ticks and records its peak demands. The application instance
// is consumed (its state advances); pass a fresh instance.
func ProfileApp(host sim.HostConfig, app sim.App, ticks int) (Profile, error) {
	if app == nil {
		return Profile{}, fmt.Errorf("baseline: nil app")
	}
	if ticks <= 0 {
		return Profile{}, fmt.Errorf("baseline: profiling ticks must be positive, got %d", ticks)
	}
	s, err := sim.NewSimulator(host)
	if err != nil {
		return Profile{}, err
	}
	c, err := s.AddContainer("profilee", app)
	if err != nil {
		return Profile{}, err
	}
	p := Profile{App: app.Name(), Ticks: ticks}
	for i := 0; i < ticks; i++ {
		s.Step()
		d := c.LastDemand()
		if d.CPU > p.PeakCPU {
			p.PeakCPU = d.CPU
		}
		if d.ActiveMemMB > p.PeakActiveMemMB {
			p.PeakActiveMemMB = d.ActiveMemMB
		}
		if d.MemBWMBps > p.PeakMemBWMBps {
			p.PeakMemBWMBps = d.MemBWMBps
		}
		if c.State() != sim.StateRunning {
			break
		}
	}
	return p, nil
}

// Decision is a static admission verdict.
type Decision struct {
	Allow  bool
	Reason string
}

// Decide applies the static peak-fit test: the co-location is admitted
// only when, for every resource, the summed isolated peaks fit within the
// host capacity scaled by headroom (e.g. 0.9 keeps a 10% safety margin).
func Decide(host sim.HostConfig, sensitive Profile, batch []Profile, headroom float64) Decision {
	if headroom <= 0 || headroom > 1 {
		headroom = 1
	}
	cpu := sensitive.PeakCPU
	mem := sensitive.PeakActiveMemMB
	bw := sensitive.PeakMemBWMBps
	for _, b := range batch {
		cpu += b.PeakCPU
		mem += b.PeakActiveMemMB
		bw += b.PeakMemBWMBps
	}
	if cap := host.CPUCapacity() * headroom; cpu > cap {
		return Decision{Reason: fmt.Sprintf("peak CPU %.0f exceeds %.0f", cpu, cap)}
	}
	if cap := host.MemoryMB * headroom; mem > cap {
		return Decision{Reason: fmt.Sprintf("peak active memory %.0f MB exceeds %.0f MB", mem, cap)}
	}
	if cap := host.MemBWMBps * headroom; bw > cap {
		return Decision{Reason: fmt.Sprintf("peak memory bandwidth %.0f exceeds %.0f", bw, cap)}
	}
	return Decision{Allow: true, Reason: "peak demands fit"}
}

// Outcome summarizes a policy's result on one co-location.
type Outcome struct {
	// Admitted reports the static decision.
	Admitted bool
	// Reason is the decision's explanation.
	Reason string
	// ViolationRate is the sensitive application's violation fraction
	// over the run (0 when the batch was rejected: isolation is safe).
	ViolationRate float64
	// MeanGain is the mean batch CPU share of the machine.
	MeanGain float64
}

// AppFactory builds a fresh application instance.
type AppFactory func(rng *rand.Rand) sim.App

// QoSAppFactory builds a fresh QoS-reporting application instance.
type QoSAppFactory func(rng *rand.Rand) sim.QoSApp

// RunStatic evaluates the static policy on one co-location: profile both
// sides in isolation, admit or reject, and if admitted run the co-location
// with no runtime control. seed drives all randomness.
func RunStatic(host sim.HostConfig, sensitive QoSAppFactory, batch []AppFactory,
	profileTicks, runTicks int, headroom float64, seed int64) (Outcome, error) {
	rng := rand.New(rand.NewSource(seed))

	sensProfile, err := ProfileApp(host, sensitive(rand.New(rand.NewSource(rng.Int63()))), profileTicks)
	if err != nil {
		return Outcome{}, err
	}
	batchProfiles := make([]Profile, len(batch))
	for i, f := range batch {
		p, err := ProfileApp(host, f(rand.New(rand.NewSource(rng.Int63()))), profileTicks)
		if err != nil {
			return Outcome{}, err
		}
		batchProfiles[i] = p
	}
	d := Decide(host, sensProfile, batchProfiles, headroom)
	out := Outcome{Admitted: d.Allow, Reason: d.Reason}
	if !d.Allow {
		// The batch never runs: QoS is perfect, gain is zero.
		return out, nil
	}

	s, err := sim.NewSimulator(host)
	if err != nil {
		return Outcome{}, err
	}
	qosApp := sensitive(rand.New(rand.NewSource(rng.Int63())))
	if _, err := s.AddContainer("sensitive", qosApp); err != nil {
		return Outcome{}, err
	}
	batchIDs := make([]string, len(batch))
	for i, f := range batch {
		batchIDs[i] = fmt.Sprintf("batch%d", i)
		if _, err := s.AddContainer(batchIDs[i], f(rand.New(rand.NewSource(rng.Int63())))); err != nil {
			return Outcome{}, err
		}
	}
	var violations int
	var gainSum float64
	for tick := 0; tick < runTicks; tick++ {
		s.Step()
		if value, threshold := qosApp.QoS(); value < threshold {
			violations++
		}
		var batchCPU float64
		for _, id := range batchIDs {
			if c, err := s.Container(id); err == nil {
				batchCPU += c.LastGrant().CPU
			}
		}
		gainSum += batchCPU / host.CPUCapacity()
	}
	out.ViolationRate = float64(violations) / float64(runTicks)
	out.MeanGain = gainSum / float64(runTicks)
	return out, nil
}
