package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

func host() sim.HostConfig { return sim.DefaultHostConfig() }

func TestProfileAppValidation(t *testing.T) {
	if _, err := ProfileApp(host(), nil, 10); err == nil {
		t.Error("nil app should error")
	}
	bomb := apps.NewCPUBomb(apps.DefaultCPUBombConfig())
	if _, err := ProfileApp(host(), bomb, 0); err == nil {
		t.Error("zero ticks should error")
	}
}

func TestProfileAppCapturesPeaks(t *testing.T) {
	p, err := ProfileApp(host(), apps.NewCPUBomb(apps.DefaultCPUBombConfig()), 20)
	if err != nil {
		t.Fatal(err)
	}
	if p.PeakCPU != 400 {
		t.Errorf("bomb peak CPU = %v, want 400", p.PeakCPU)
	}
	if p.App != "cpubomb" {
		t.Errorf("app name = %q", p.App)
	}

	// Twitter's memory phase peak requires profiling past its CPU phase.
	cfg := apps.DefaultTwitterConfig()
	cfg.TotalWork = 0
	p2, err := ProfileApp(host(), apps.NewTwitterAnalysis(cfg, rand.New(rand.NewSource(1))), 40)
	if err != nil {
		t.Fatal(err)
	}
	if p2.PeakActiveMemMB < cfg.MemPhaseMemoryMB*0.95 {
		t.Errorf("twitter peak memory = %v, want ≈%v", p2.PeakActiveMemMB, cfg.MemPhaseMemoryMB)
	}
	if p2.PeakCPU < cfg.CPUPhaseCPU*0.9 {
		t.Errorf("twitter peak CPU = %v, want ≈%v", p2.PeakCPU, cfg.CPUPhaseCPU)
	}
}

func TestDecide(t *testing.T) {
	sens := Profile{PeakCPU: 230, PeakActiveMemMB: 150, PeakMemBWMBps: 2000}
	tests := []struct {
		name  string
		batch Profile
		allow bool
	}{
		{"fits", Profile{PeakCPU: 100, PeakActiveMemMB: 100, PeakMemBWMBps: 500}, true},
		{"cpu overshoot", Profile{PeakCPU: 300}, false},
		{"memory overshoot", Profile{PeakActiveMemMB: 4000}, false},
		{"bandwidth overshoot", Profile{PeakMemBWMBps: 9000}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := Decide(host(), sens, []Profile{tt.batch}, 0.95)
			if d.Allow != tt.allow {
				t.Errorf("allow = %v (%s), want %v", d.Allow, d.Reason, tt.allow)
			}
			if d.Reason == "" {
				t.Error("decision must carry a reason")
			}
		})
	}
	// Degenerate headroom falls back to 1.
	d := Decide(host(), sens, nil, -1)
	if !d.Allow {
		t.Errorf("sensitive alone should fit: %s", d.Reason)
	}
}

func TestRunStaticRejectsTwitterWithVLC(t *testing.T) {
	// The paper's motivating limitation: static peak-fit rejects the
	// VLC+Twitter co-location (peak CPU 230+245 exceeds the margin), so
	// the batch never runs and the utilization Stay-Away harvests is
	// forfeited.
	out, err := RunStatic(host(),
		func(rng *rand.Rand) sim.QoSApp { return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng) },
		[]AppFactory{func(rng *rand.Rand) sim.App {
			cfg := apps.DefaultTwitterConfig()
			cfg.TotalWork = 0
			return apps.NewTwitterAnalysis(cfg, rng)
		}},
		60, 100, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.Admitted {
		t.Fatalf("static policy admitted VLC+Twitter (%s)", out.Reason)
	}
	if out.MeanGain != 0 || out.ViolationRate != 0 {
		t.Errorf("rejected co-location: gain=%v violations=%v, want zeros", out.MeanGain, out.ViolationRate)
	}
}

func TestRunStaticAdmitsSmallBatch(t *testing.T) {
	small := func(rng *rand.Rand) sim.App {
		return apps.NewCPUBomb(apps.CPUBombConfig{CPU: 80, TotalWork: 0})
	}
	out, err := RunStatic(host(),
		func(rng *rand.Rand) sim.QoSApp { return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng) },
		[]AppFactory{small}, 60, 100, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Admitted {
		t.Fatalf("static policy rejected a fitting batch: %s", out.Reason)
	}
	if out.MeanGain <= 0.15 {
		t.Errorf("gain = %v, want ≈0.2 (80/400)", out.MeanGain)
	}
	if out.ViolationRate > 0.02 {
		t.Errorf("violation rate = %v, want ≈0 for a fitting co-location", out.ViolationRate)
	}
}
