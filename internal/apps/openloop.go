package apps

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/workload"
)

// ArrivalIntensity adapts an open-loop arrival process into the closed-loop
// Intensity signal: the process's rate divided by peak, clamped to [0,1].
// This is the bridge that lets the legacy closed-loop apps and the new
// open-loop services replay the *same* load shape, which is what makes the
// open-vs-closed ablation an apples-to-apples comparison.
func ArrivalIntensity(p workload.Process, peak float64) Intensity {
	if p == nil || peak <= 0 {
		return ConstantIntensity(0)
	}
	return func(tick int) float64 {
		v := p.Arrivals(tick) / peak
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
}

// OpenLoopConfig assembles an open-loop service.
type OpenLoopConfig struct {
	// Name labels the app; empty defaults to "openloop-<kind>".
	Name string
	// Kind selects the resource footprint shape (same calibration as the
	// closed-loop Webservice).
	Kind WorkloadKind
	// Engine is the open-loop queueing configuration. Engine.Process is
	// required.
	Engine workload.Config
	// DiskPerRequest is storage traffic per in-flight request (MB/s). When
	// set, the service rate is also bounded by the granted disk throughput,
	// so disk contention (a bursty batch neighbour) degrades latency QoS
	// even while CPU is plentiful.
	DiskPerRequest float64
}

// DefaultOpenLoopConfig returns an open-loop service of the given kind
// driven by the given arrival process, calibrated so full concurrency
// matches the closed-loop Webservice's peak CPU demand.
func DefaultOpenLoopConfig(kind WorkloadKind, p workload.Process) OpenLoopConfig {
	return OpenLoopConfig{
		Kind: kind,
		Engine: workload.Config{
			Process:        p,
			CPUPerRequest:  2,
			MaxConcurrency: 120, // × CPUPerRequest = the closed-loop peak of 240 CPU
			TargetLatency:  3,
			Percentile:     0.99,
			WindowTicks:    40,
			Threshold:      0.95,
		},
	}
}

// OpenLoopService is the open-loop refactor of the sensitive Webservice:
// requests arrive from an arrival process whether or not the container can
// serve them, queue in a bounded buffer, and QoS is the p99 (configurable)
// queueing latency against an SLO target rather than the instantaneous
// grant/demand ratio. The difference matters under actuation: a freeze or
// quota that the closed-loop QoS shrugs off leaves a backlog whose
// queueing delay violates the SLO for many ticks after the grant recovers.
type OpenLoopService struct {
	cfg     OpenLoopConfig
	name    string
	baseCPU float64
	engine  *workload.Engine

	lastWorkCPU float64
}

var (
	_ sim.QoSApp   = (*OpenLoopService)(nil)
	_ sim.QueueApp = (*OpenLoopService)(nil)
)

// NewOpenLoopService builds the service.
func NewOpenLoopService(cfg OpenLoopConfig) (*OpenLoopService, error) {
	eng, err := workload.NewEngine(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("apps: open-loop %s: %w", cfg.Kind, err)
	}
	name := cfg.Name
	if name == "" {
		name = "openloop-" + cfg.Kind.String()
	}
	return &OpenLoopService{
		cfg:     cfg,
		name:    name,
		baseCPU: baseCPUFor(cfg.Kind),
		engine:  eng,
	}, nil
}

// baseCPUFor is the load-independent CPU overhead per kind, matching the
// closed-loop Webservice's intercept so the two models agree at idle.
func baseCPUFor(kind WorkloadKind) float64 {
	switch kind {
	case CPUIntensive:
		return 60
	case MemoryIntensive:
		return 80
	default:
		return 70
	}
}

// Name implements sim.App.
func (s *OpenLoopService) Name() string { return s.name }

// Engine exposes the underlying queueing engine (experiments read it for
// per-tick accounting).
func (s *OpenLoopService) Engine() *workload.Engine { return s.engine }

// Demand implements sim.App: baseline overhead plus whatever CPU it takes
// to work the queue at full concurrency, with the non-CPU footprint scaled
// by queue utilization exactly as the closed-loop shapes scale with
// intensity.
func (s *OpenLoopService) Demand(tick int) sim.Demand {
	work := s.engine.BeginTick(tick)
	s.lastWorkCPU = work
	ecfg := s.engine.Config()
	u := work / (ecfg.MaxConcurrency * ecfg.CPUPerRequest) // utilization in [0,1]
	d := footprintFor(s.cfg.Kind, u)
	d.CPU = s.baseCPU + work
	if s.cfg.DiskPerRequest > 0 {
		d.DiskMBps += s.cfg.DiskPerRequest * math.Min(s.engine.Queue().Depth(), ecfg.MaxConcurrency)
	}
	return d
}

// footprintFor mirrors the closed-loop Webservice's non-CPU demand shapes
// at intensity x (the CPU term is supplied by the queue engine).
func footprintFor(kind WorkloadKind, x float64) sim.Demand {
	switch kind {
	case CPUIntensive:
		return sim.Demand{MemoryMB: 700, ActiveMemMB: 300, MemBWMBps: 600, NetMbps: 30 + 40*x}
	case MemoryIntensive:
		return sim.Demand{
			MemoryMB:    800 + 2400*x,
			ActiveMemMB: 600 + 2400*x,
			MemBWMBps:   2000,
			DiskMBps:    10,
			NetMbps:     30 + 40*x,
		}
	default:
		return sim.Demand{
			MemoryMB:    700 + 1700*x,
			ActiveMemMB: 500 + 1700*x,
			MemBWMBps:   1200,
			DiskMBps:    5,
			NetMbps:     30 + 40*x,
		}
	}
}

// Advance implements sim.App: the baseline overhead consumes effective CPU
// first, the remainder serves requests — bounded by granted disk
// throughput when the service is storage-coupled.
func (s *OpenLoopService) Advance(tick int, g sim.Grant) bool {
	served := math.Max(0, g.EffectiveCPU()-s.baseCPU) / s.engine.Config().CPUPerRequest
	if s.cfg.DiskPerRequest > 0 {
		served = math.Min(served, g.DiskMBps/s.cfg.DiskPerRequest)
	}
	s.engine.EndTick(tick, served)
	return false // a service never finishes
}

// QoS implements sim.QoSApp: percentile latency vs the SLO target.
func (s *OpenLoopService) QoS() (value, threshold float64) { return s.engine.QoS() }

// QueueStats implements sim.QueueApp.
func (s *OpenLoopService) QueueStats() sim.QueueStats {
	st := s.engine.Stats()
	return sim.QueueStats{
		Depth:             st.Depth,
		OldestAge:         st.OldestAge,
		PercentileLatency: st.PercentileLatency,
		Arrived:           st.TotalArrived,
		Served:            st.TotalServed,
		Dropped:           st.TotalDropped,
	}
}

// ChainStage is one container of a microservice chain: it demands CPU for
// its own stage queue and forwards completions downstream. The chain's QoS
// is end-to-end, so only the front stage (ChainFront) reports QoS — one
// violation signal per chain, measured across every dependent container.
type ChainStage struct {
	chain   *workload.Chain
	index   int
	name    string
	baseCPU float64
}

var _ sim.QueueApp = (*ChainStage)(nil)

// ChainFront is the chain's entry stage; it additionally ingests arrivals
// and reports the end-to-end QoS, making it the sensitive app the
// controller watches.
type ChainFront struct {
	ChainStage
}

var _ sim.QoSApp = (*ChainFront)(nil)

// NewChainService builds the per-stage apps for a chain: the front plus
// one ChainStage per remaining stage, to be hosted in separate containers
// in order (the simulator advances containers in insertion order, so a
// request can traverse the whole chain within one tick when every stage
// has capacity).
func NewChainService(name string, cfg workload.ChainConfig) (*ChainFront, []*ChainStage, error) {
	ch, err := workload.NewChain(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("apps: chain %s: %w", name, err)
	}
	if name == "" {
		name = "chain"
	}
	front := &ChainFront{ChainStage{chain: ch, index: 0, name: fmt.Sprintf("%s-stage0", name), baseCPU: 40}}
	rest := make([]*ChainStage, 0, ch.NumStages()-1)
	for i := 1; i < ch.NumStages(); i++ {
		rest = append(rest, &ChainStage{chain: ch, index: i, name: fmt.Sprintf("%s-stage%d", name, i), baseCPU: 40})
	}
	return front, rest, nil
}

// Chain exposes the underlying chain.
func (c *ChainStage) Chain() *workload.Chain { return c.chain }

// Name implements sim.App.
func (c *ChainStage) Name() string { return c.name }

// Demand implements sim.App. The front stage ingests arrivals first.
func (c *ChainStage) Demand(tick int) sim.Demand {
	if c.index == 0 {
		c.chain.BeginTick(tick)
	}
	work := c.chain.StageDemand(c.index)
	u := math.Min(1, work/math.Max(1, c.cfg().MaxConcurrency*c.cfg().CPUPerRequest))
	return sim.Demand{
		CPU:         c.baseCPU + work,
		MemoryMB:    400,
		ActiveMemMB: 150 + 150*u,
		MemBWMBps:   400,
		NetMbps:     20 + 30*u,
	}
}

func (c *ChainStage) cfg() workload.StageConfig { return c.chain.Config().Stages[c.index] }

// Advance implements sim.App; the last stage closes the chain's tick.
func (c *ChainStage) Advance(tick int, g sim.Grant) bool {
	served := math.Max(0, g.EffectiveCPU()-c.baseCPU) / c.cfg().CPUPerRequest
	c.chain.ServeStage(c.index, tick, served)
	if c.index == c.chain.NumStages()-1 {
		c.chain.EndTick(tick)
	}
	return false
}

// QueueStats implements sim.QueueApp with this stage's backlog and the
// chain's end-to-end percentile.
func (c *ChainStage) QueueStats() sim.QueueStats {
	st := c.chain.Stats()
	var depth, oldest float64
	if c.index < len(st.StageDepths) {
		depth = st.StageDepths[c.index]
	}
	oldest = st.OldestAge
	return sim.QueueStats{
		Depth:             depth,
		OldestAge:         oldest,
		PercentileLatency: st.PercentileLatency,
		Arrived:           st.TotalArrived,
		Served:            st.TotalServed,
		Dropped:           st.TotalDropped,
	}
}

// QoS implements sim.QoSApp on the front stage only: end-to-end latency vs
// the chain SLO.
func (c *ChainFront) QoS() (value, threshold float64) { return c.chain.QoS() }
