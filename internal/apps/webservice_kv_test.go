package apps

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func newKVWeb(t *testing.T, kind WorkloadKind, seed int64) *RequestWebservice {
	t.Helper()
	w, err := NewRequestWebservice(DefaultRequestWebserviceConfig(kind), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRequestWebserviceDefaults(t *testing.T) {
	// Zero-ish config gets sane defaults.
	w, err := NewRequestWebservice(RequestWebserviceConfig{
		Kind:    Mixed,
		CacheMB: 100,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if d := w.Demand(0); d.CPU <= 0 {
		t.Errorf("demand = %+v", d)
	}
	if w.Name() == "" {
		t.Error("name empty")
	}
}

func TestRequestWebserviceInvalidCache(t *testing.T) {
	cfg := DefaultRequestWebserviceConfig(Mixed)
	cfg.CacheMB = 0
	if _, err := NewRequestWebservice(cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero cache should error")
	}
}

func TestRequestWebserviceIsolatedQoS(t *testing.T) {
	for _, kind := range []WorkloadKind{CPUIntensive, MemoryIntensive, Mixed} {
		t.Run(kind.String(), func(t *testing.T) {
			w := newKVWeb(t, kind, 1)
			runAlone(t, w, 40)
			value, threshold := w.QoS()
			if value < threshold {
				t.Errorf("isolated QoS %v below threshold %v", value, threshold)
			}
		})
	}
}

func TestRequestWebserviceDemandShapes(t *testing.T) {
	// After warmup, the CPU-intensive mix must demand more compute than
	// the memory-intensive mix, and the memory-intensive mix must hold a
	// larger resident and active set.
	cpu := newKVWeb(t, CPUIntensive, 2)
	mem := newKVWeb(t, MemoryIntensive, 2)
	var cpuD, memD sim.Demand
	for i := 0; i < 30; i++ {
		cpuD = cpu.Demand(i)
		cpu.Advance(i, sim.Grant{CPU: cpuD.CPU, CPUEfficiency: 1})
		memD = mem.Demand(i)
		mem.Advance(i, sim.Grant{CPU: memD.CPU, CPUEfficiency: 1})
	}
	if cpuD.CPU <= memD.CPU {
		t.Errorf("cpu-mix CPU %v should exceed memory-mix %v", cpuD.CPU, memD.CPU)
	}
	if memD.MemoryMB <= cpuD.MemoryMB {
		t.Errorf("memory-mix resident %v should exceed cpu-mix %v", memD.MemoryMB, cpuD.MemoryMB)
	}
	// Memory-intensive at full load should hold a multi-GB hot set — the
	// regime where batch memory pressure forces swapping.
	if memD.ActiveMemMB < 1500 {
		t.Errorf("memory-mix active set = %v MB, want > 1500", memD.ActiveMemMB)
	}
	// Neither should overshoot the host alone.
	if cpuD.CPU > 390 {
		t.Errorf("cpu-mix demand %v should fit the host alone", cpuD.CPU)
	}
}

func TestRequestWebserviceCacheWarming(t *testing.T) {
	w := newKVWeb(t, MemoryIntensive, 3)
	for i := 0; i < 5; i++ {
		w.Demand(i)
		w.Advance(i, sim.Grant{CPU: 100, CPUEfficiency: 1})
	}
	early := w.Service().Cache().HitRate()
	for i := 5; i < 60; i++ {
		w.Demand(i)
		w.Advance(i, sim.Grant{CPU: 100, CPUEfficiency: 1})
	}
	late := w.Service().Cache().HitRate()
	if late <= early {
		t.Errorf("hit rate should improve with warming: early %v late %v", early, late)
	}
	// Misses generate disk traffic at least initially.
	if w.Service().Cache().UsedBytes() == 0 {
		t.Error("cache never populated")
	}
}

func TestRequestWebserviceIntensityScales(t *testing.T) {
	low, err := NewRequestWebservice(RequestWebserviceConfig{
		Kind: CPUIntensive, Intensity: ConstantIntensity(0.1), CacheMB: 600,
	}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	high, err := NewRequestWebservice(RequestWebserviceConfig{
		Kind: CPUIntensive, Intensity: ConstantIntensity(1), CacheMB: 600,
	}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	var lowSum, highSum float64
	for i := 0; i < 20; i++ {
		ld := low.Demand(i)
		lowSum += ld.CPU
		low.Advance(i, sim.Grant{CPU: ld.CPU, CPUEfficiency: 1})
		hd := high.Demand(i)
		highSum += hd.CPU
		high.Advance(i, sim.Grant{CPU: hd.CPU, CPUEfficiency: 1})
	}
	if lowSum*3 > highSum {
		t.Errorf("low-intensity CPU %v should be far below high %v", lowSum, highSum)
	}
}

func TestRequestWebserviceVsMemoryBomb(t *testing.T) {
	// The request-driven memory-intensive Webservice must reproduce the
	// analytic model's contention story: MemoryBomb's reading bursts force
	// swapping and QoS collapses intermittently.
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := newKVWeb(t, MemoryIntensive, 5)
	if _, err := s.AddContainer("web", w); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("bomb", NewMemoryBomb(DefaultMemoryBombConfig(), rand.New(rand.NewSource(6)))); err != nil {
		t.Fatal(err)
	}
	violations := 0
	for i := 0; i < 120; i++ {
		s.Step()
		if value, threshold := w.QoS(); value < threshold {
			violations++
		}
	}
	if violations == 0 {
		t.Error("expected swap-driven violations against MemoryBomb")
	}
	if violations > 110 {
		t.Errorf("violations = %d/120, want intermittent", violations)
	}
}
