package apps

import (
	"math/rand"

	"repro/internal/sim"
)

// SoplexConfig tunes the SPEC CPU 2006 soplex model.
type SoplexConfig struct {
	// CPU is the solver's steady compute demand.
	CPU float64
	// CPUJitter is the small per-tick variation ("slightly varying step
	// length").
	CPUJitter float64
	// StartMemoryMB and EndMemoryMB bound the linearly growing working
	// set; the monotone growth is what draws Soplex's characteristic
	// "linear trajectory with a consistent orientation" in the mapped
	// space (Fig 5).
	StartMemoryMB float64
	EndMemoryMB   float64
	// GrowthTicks is how many running ticks the working set takes to grow
	// from start to end.
	GrowthTicks int
	// MemBWMBps is the solver's bandwidth demand.
	MemBWMBps float64
	// TotalWork is the job size in effective-CPU units; <= 0 never
	// finishes.
	TotalWork float64
}

// DefaultSoplexConfig returns the evaluation's soplex instance: a hungry
// LP solver whose demand alongside VLC overshoots the 4-core host.
func DefaultSoplexConfig() SoplexConfig {
	return SoplexConfig{
		CPU:           280,
		CPUJitter:     0.05,
		StartMemoryMB: 200,
		EndMemoryMB:   900,
		GrowthTicks:   120,
		MemBWMBps:     2500,
		TotalWork:     50000,
	}
}

// Soplex models the SPEC CPU 2006 linear-programming solver used as a
// batch co-runner in Figs 5 and 18.
type Soplex struct {
	cfg       SoplexConfig
	rng       *rand.Rand
	ranTicks  int
	remaining float64
}

var _ sim.App = (*Soplex)(nil)

// NewSoplex returns a solver instance.
func NewSoplex(cfg SoplexConfig, rng *rand.Rand) *Soplex {
	return &Soplex{cfg: cfg, rng: rng, remaining: cfg.TotalWork}
}

// Name implements sim.App.
func (s *Soplex) Name() string { return "soplex" }

// Demand implements sim.App. The working set grows with *running* ticks,
// not wall ticks: a frozen solver does not allocate.
func (s *Soplex) Demand(tick int) sim.Demand {
	frac := 1.0
	if s.cfg.GrowthTicks > 0 && s.ranTicks < s.cfg.GrowthTicks {
		frac = float64(s.ranTicks) / float64(s.cfg.GrowthTicks)
	}
	mem := s.cfg.StartMemoryMB + (s.cfg.EndMemoryMB-s.cfg.StartMemoryMB)*frac
	return sim.Demand{
		CPU:         jitter(s.rng, s.cfg.CPU, s.cfg.CPUJitter),
		MemoryMB:    mem,
		ActiveMemMB: mem * 0.8,
		MemBWMBps:   s.cfg.MemBWMBps,
	}
}

// Advance implements sim.App.
func (s *Soplex) Advance(tick int, g sim.Grant) bool {
	s.ranTicks++
	if s.cfg.TotalWork <= 0 {
		return false
	}
	s.remaining -= g.EffectiveCPU()
	return s.remaining <= 0
}

// Remaining returns outstanding work.
func (s *Soplex) Remaining() float64 { return s.remaining }
