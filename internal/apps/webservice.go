package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// WorkloadKind selects the Webservice's operation mix (§7.1: "The workload
// comprises of CPU intensive, Memory intensive and mix of CPU and memory
// intensive operations").
type WorkloadKind int

const (
	// CPUIntensive: statistical analysis and aggregation over cached data.
	CPUIntensive WorkloadKind = iota
	// MemoryIntensive: serving from the Memcached layer with a large hot
	// working set.
	MemoryIntensive
	// Mixed: both operation classes interleaved.
	Mixed
)

// String names the workload kind.
func (k WorkloadKind) String() string {
	switch k {
	case CPUIntensive:
		return "cpu-intensive"
	case MemoryIntensive:
		return "memory-intensive"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("workload(%d)", int(k))
	}
}

// WebserviceConfig tunes the sensitive Webservice.
type WebserviceConfig struct {
	// Kind is the operation mix.
	Kind WorkloadKind
	// Intensity drives the request rate over time (trace-driven in the
	// timeline experiments). Nil means constant full load.
	Intensity Intensity
	// Threshold is the normalized minimum transactions/s rate.
	Threshold float64
	// Jitter is the per-tick relative demand variation.
	Jitter float64
}

// DefaultWebserviceConfig returns a full-load Webservice of the given
// kind.
func DefaultWebserviceConfig(kind WorkloadKind) WebserviceConfig {
	return WebserviceConfig{
		Kind:      kind,
		Intensity: ConstantIntensity(1),
		Threshold: 0.9,
		Jitter:    0.06,
	}
}

// Webservice is the second sensitive application of the evaluation
// (Figs 12–16): a Memcached-backed analytics service. Its QoS is the
// achieved transaction rate relative to the offered load; swap stalls and
// CPU starvation both depress it.
type Webservice struct {
	cfg WebserviceConfig
	rng *rand.Rand

	lastDemandCPU float64
	lastQoS       float64
}

var _ sim.QoSApp = (*Webservice)(nil)

// NewWebservice returns a Webservice. rng may be nil for a deterministic
// instance.
func NewWebservice(cfg WebserviceConfig, rng *rand.Rand) *Webservice {
	if cfg.Intensity == nil {
		cfg.Intensity = ConstantIntensity(1)
	}
	return &Webservice{cfg: cfg, rng: rng, lastQoS: 1}
}

// Name implements sim.App.
func (w *Webservice) Name() string { return "webservice-" + w.cfg.Kind.String() }

// Kind returns the workload kind.
func (w *Webservice) Kind() WorkloadKind { return w.cfg.Kind }

// Demand implements sim.App. Per kind, at intensity x in [0,1]:
//
//	CPU-intensive:    CPU 60+240x, active memory ≈300 MB, light bandwidth;
//	Memory-intensive: CPU 80+60x,  active memory 600+2400x MB, heavy
//	                  bandwidth — at high intensity its hot set alone
//	                  approaches the host's RAM, so any co-located active
//	                  memory forces swapping (§7.2);
//	Mixed:            CPU 70+170x, active memory 500+1700x MB.
func (w *Webservice) Demand(tick int) sim.Demand {
	x := w.cfg.Intensity(tick)
	var d sim.Demand
	switch w.cfg.Kind {
	case CPUIntensive:
		d = sim.Demand{
			CPU:         60 + 240*x,
			MemoryMB:    700,
			ActiveMemMB: 300,
			MemBWMBps:   600,
			NetMbps:     30 + 40*x,
		}
	case MemoryIntensive:
		d = sim.Demand{
			CPU:         80 + 60*x,
			MemoryMB:    800 + 2400*x,
			ActiveMemMB: 600 + 2400*x,
			MemBWMBps:   2000,
			DiskMBps:    10,
			NetMbps:     30 + 40*x,
		}
	default: // Mixed
		d = sim.Demand{
			CPU:         70 + 170*x,
			MemoryMB:    700 + 1700*x,
			ActiveMemMB: 500 + 1700*x,
			MemBWMBps:   1200,
			DiskMBps:    5,
			NetMbps:     30 + 40*x,
		}
	}
	d.CPU = jitter(w.rng, d.CPU, w.cfg.Jitter)
	w.lastDemandCPU = d.CPU
	return d
}

// Advance implements sim.App.
func (w *Webservice) Advance(tick int, g sim.Grant) bool {
	w.lastQoS = qosFromGrant(w.lastDemandCPU, g.EffectiveCPU())
	return false // a service never finishes
}

// QoS implements sim.QoSApp.
func (w *Webservice) QoS() (value, threshold float64) {
	return w.lastQoS, w.cfg.Threshold
}
