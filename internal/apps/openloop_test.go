package apps

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestArrivalIntensityAdapter(t *testing.T) {
	in := ArrivalIntensity(workload.Constant(50), 100)
	if got := in(0); got != 0.5 {
		t.Fatalf("intensity = %v, want 0.5", got)
	}
	over := ArrivalIntensity(workload.Constant(500), 100)
	if got := over(0); got != 1 {
		t.Fatalf("over-peak intensity should clamp to 1, got %v", got)
	}
	if got := ArrivalIntensity(nil, 100)(0); got != 0 {
		t.Fatalf("nil process intensity = %v, want 0", got)
	}
	// SeriesIntensity is now the same adapter with peak 1.
	s := SeriesIntensity([]float64{0.2, 1.5, -3})
	if got := s(0); got != 0.2 {
		t.Fatalf("series[0] = %v, want 0.2", got)
	}
	if got := s(1); got != 1 {
		t.Fatalf("series[1] should clamp to 1, got %v", got)
	}
	if got := s(2); got != 0 {
		t.Fatalf("series[2] should clamp to 0, got %v", got)
	}
	if got := s(99); got != 0 {
		t.Fatalf("series past end holds final value, got %v", got)
	}
}

func TestOpenLoopServiceHealthyAlone(t *testing.T) {
	svc, err := NewOpenLoopService(DefaultOpenLoopConfig(CPUIntensive, workload.Constant(60)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.AddContainer("web", svc)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(60)
	if v, thr := svc.QoS(); v < thr {
		t.Fatalf("uncontended open-loop QoS = %v, want ≥ %v", v, thr)
	}
	st, ok := c.QueueStats()
	if !ok {
		t.Fatal("open-loop container should expose queue stats")
	}
	if st.Depth != 0 {
		t.Fatalf("uncontended queue depth = %v, want 0", st.Depth)
	}
	if st.Served < 0.9*st.Arrived {
		t.Fatalf("served %v of %v arrived", st.Served, st.Arrived)
	}
}

// TestOpenLoopFreezeLeavesBacklogViolation is the sim-level half of the
// freeze/thaw story: the closed-loop Webservice's QoS is perfect the very
// tick after a thaw (fresh grant ratio), while the open-loop service is
// still violating — its backlog carries the freeze's cost forward.
func TestOpenLoopFreezeLeavesBacklogViolation(t *testing.T) {
	svc, err := NewOpenLoopService(DefaultOpenLoopConfig(CPUIntensive, workload.Constant(60)))
	if err != nil {
		t.Fatal(err)
	}
	closed := NewWebservice(WebserviceConfig{Kind: CPUIntensive, Intensity: ConstantIntensity(0.5), Threshold: 0.9}, nil)
	// Separate hosts so the open-loop service's post-thaw catch-up demand
	// does not CPU-contend the closed-loop app — the schedules must be
	// identical and independent.
	sOpen, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	sClosed, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sOpen.AddContainer("open", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := sClosed.AddContainer("closed", closed); err != nil {
		t.Fatal(err)
	}
	both := func(f func(s *sim.Simulator, id string) error) {
		if err := f(sOpen, "open"); err != nil {
			t.Fatal(err)
		}
		if err := f(sClosed, "closed"); err != nil {
			t.Fatal(err)
		}
	}
	sOpen.Run(50)
	sClosed.Run(50)
	both((*sim.Simulator).Freeze)
	sOpen.Run(10)
	sClosed.Run(10)
	both((*sim.Simulator).Thaw)
	sOpen.Step() // one post-thaw tick
	sClosed.Step()
	if v, thr := closed.QoS(); v < thr {
		t.Fatalf("closed-loop QoS right after thaw = %v: the grant ratio has no memory, want ≥ %v", v, thr)
	}
	if v, thr := svc.QoS(); v >= thr {
		t.Fatalf("open-loop QoS right after thaw = %v, want violation (< %v): 600 queued requests", v, thr)
	}
	// And it recovers once the backlog drains and the window slides.
	sOpen.Run(80)
	if v, thr := svc.QoS(); v < thr {
		t.Fatalf("open-loop QoS after drain = %v, want recovered ≥ %v", v, thr)
	}
}

func TestChainServiceAcrossContainers(t *testing.T) {
	front, rest, err := NewChainService("svc", workload.ChainConfig{
		Process: workload.Constant(20),
		Stages: []workload.StageConfig{
			{CPUPerRequest: 2, MaxConcurrency: 50},
			{CPUPerRequest: 1, MaxConcurrency: 50},
			{CPUPerRequest: 1, MaxConcurrency: 50},
		},
		TargetLatency: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("stage0", front); err != nil {
		t.Fatal(err)
	}
	for i, st := range rest {
		if _, err := s.AddContainer(st.Name(), st); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	s.Run(40)
	if v, thr := front.QoS(); v < thr {
		t.Fatalf("uncontended chain QoS = %v, want ≥ %v", v, thr)
	}
	// Freeze a mid-chain stage: the *front* reports the end-to-end
	// violation even though its own container is untouched.
	if err := s.Freeze("svc-stage1"); err != nil {
		t.Fatal(err)
	}
	s.Run(12)
	if v, thr := front.QoS(); v >= thr {
		t.Fatalf("chain QoS with frozen mid-stage = %v, want violation (< %v)", v, thr)
	}
	c1, err := s.Container("svc-stage1")
	if err != nil {
		t.Fatal(err)
	}
	st, ok := c1.QueueStats()
	if !ok {
		t.Fatal("chain stage should expose queue stats")
	}
	if st.Depth < 200 {
		t.Fatalf("frozen stage backlog = %v, want the freeze's 12×20 arrivals parked there", st.Depth)
	}
}

func TestIOBurstStarvesStorageCoupledService(t *testing.T) {
	cfg := DefaultOpenLoopConfig(CPUIntensive, workload.Constant(40))
	// 40 req/tick × 4 MB/s = 160 MB/s steady disk need: fine alone, but
	// during a storm even the service's maximum proportional share serves
	// fewer than 40 requests/tick, so the backlog grows for the storm's
	// whole duration.
	cfg.DiskPerRequest = 4
	cfg.Engine.TargetLatency = 2 // the storm drives p99 to 3 ticks
	svc, err := NewOpenLoopService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("web", svc); err != nil {
		t.Fatal(err)
	}
	batch := NewIOBurstBatch(DefaultIOBurstConfig(), nil)
	if _, err := s.AddContainer("batch", batch); err != nil {
		t.Fatal(err)
	}
	violated := false
	for tick := 0; tick < 80; tick++ {
		s.Step()
		if v, thr := svc.QoS(); v < thr {
			violated = true
		}
	}
	if !violated {
		t.Fatal("disk storms (180 of 200 MB/s) should push the storage-coupled service into latency violations")
	}
	if batch.Progress() <= 0 {
		t.Fatal("batch made no progress")
	}
}

func TestIOBurstFinishes(t *testing.T) {
	batch := NewIOBurstBatch(IOBurstConfig{TotalWorkCPU: 100, PeriodTicks: 10, BurstTicks: 2, BurstDiskMBps: 50}, nil)
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.AddContainer("batch", batch)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	if c.State() != sim.StateFinished {
		t.Fatalf("batch state = %v, want finished", c.State())
	}
}
