package apps

import (
	"math/rand"

	"repro/internal/sim"
)

// CPUBombConfig tunes the CPU stressor.
type CPUBombConfig struct {
	// CPU is the bomb's demand; the isolation-benchmark bomb saturates
	// every core, so the default equals a 4-core host's full capacity.
	CPU float64
	// TotalWork is the job size in effective-CPU units; <= 0 runs forever.
	TotalWork float64
}

// DefaultCPUBombConfig returns the isolation-benchmark CPU bomb.
func DefaultCPUBombConfig() CPUBombConfig {
	return CPUBombConfig{CPU: 400, TotalWork: 0}
}

// CPUBomb is the isolation benchmark's CPU stressor: it "constantly
// consumes CPU and does not experience any phase transition" (§7.2) — the
// worst-case co-runner.
type CPUBomb struct {
	cfg       CPUBombConfig
	remaining float64
}

var _ sim.App = (*CPUBomb)(nil)

// NewCPUBomb returns a CPU bomb.
func NewCPUBomb(cfg CPUBombConfig) *CPUBomb {
	return &CPUBomb{cfg: cfg, remaining: cfg.TotalWork}
}

// Name implements sim.App.
func (b *CPUBomb) Name() string { return "cpubomb" }

// Demand implements sim.App.
func (b *CPUBomb) Demand(tick int) sim.Demand {
	return sim.Demand{CPU: b.cfg.CPU, MemoryMB: 50, ActiveMemMB: 20}
}

// Advance implements sim.App.
func (b *CPUBomb) Advance(tick int, g sim.Grant) bool {
	if b.cfg.TotalWork <= 0 {
		return false
	}
	b.remaining -= g.EffectiveCPU()
	return b.remaining <= 0
}

// MemoryBombConfig tunes the synthetic memory stressor of §7.1: it
// "generates stress on the memory subsystem by allocating large chunks of
// memory and occasionally reading the allocated content".
type MemoryBombConfig struct {
	// CPU is the bomb's modest compute demand.
	CPU float64
	// PeakMemoryMB is the allocation target.
	PeakMemoryMB float64
	// RampTicks is how many running ticks the allocation ramp takes —
	// producing the gradual state-space transition of Fig 7's kind.
	RampTicks int
	// ReadEveryTicks is the cadence of the "occasionally reading" bursts;
	// between bursts only a small fraction of the allocation stays hot.
	ReadEveryTicks int
	// ReadBurstTicks is how long each reading burst lasts.
	ReadBurstTicks int
	// IdleActiveFraction is the hot fraction between bursts.
	IdleActiveFraction float64
	// MemBWMBps is the bandwidth demand during reading bursts.
	MemBWMBps float64
	// TotalWork is the job size in effective-CPU units; <= 0 runs forever.
	TotalWork float64
}

// DefaultMemoryBombConfig returns the evaluation's memory bomb.
func DefaultMemoryBombConfig() MemoryBombConfig {
	return MemoryBombConfig{
		CPU:                60,
		PeakMemoryMB:       3400,
		RampTicks:          30,
		ReadEveryTicks:     12,
		ReadBurstTicks:     5,
		IdleActiveFraction: 0.15,
		MemBWMBps:          8000,
		TotalWork:          0,
	}
}

// MemoryBomb is the custom synthetic memory stressor.
type MemoryBomb struct {
	cfg       MemoryBombConfig
	rng       *rand.Rand
	ranTicks  int
	remaining float64
}

var _ sim.App = (*MemoryBomb)(nil)

// NewMemoryBomb returns a memory bomb. rng may be nil.
func NewMemoryBomb(cfg MemoryBombConfig, rng *rand.Rand) *MemoryBomb {
	return &MemoryBomb{cfg: cfg, rng: rng, remaining: cfg.TotalWork}
}

// Name implements sim.App.
func (b *MemoryBomb) Name() string { return "memorybomb" }

// Demand implements sim.App.
func (b *MemoryBomb) Demand(tick int) sim.Demand {
	frac := 1.0
	if b.cfg.RampTicks > 0 && b.ranTicks < b.cfg.RampTicks {
		frac = float64(b.ranTicks) / float64(b.cfg.RampTicks)
	}
	resident := b.cfg.PeakMemoryMB * frac

	reading := false
	if b.cfg.ReadEveryTicks > 0 {
		cycle := b.cfg.ReadEveryTicks + b.cfg.ReadBurstTicks
		reading = b.ranTicks%cycle >= b.cfg.ReadEveryTicks
	}
	active := resident * b.cfg.IdleActiveFraction
	bw := 200.0
	if reading {
		active = resident
		bw = b.cfg.MemBWMBps
	}
	return sim.Demand{
		CPU:         jitter(b.rng, b.cfg.CPU, 0.05),
		MemoryMB:    resident,
		ActiveMemMB: active,
		MemBWMBps:   bw,
	}
}

// Advance implements sim.App.
func (b *MemoryBomb) Advance(tick int, g sim.Grant) bool {
	b.ranTicks++
	if b.cfg.TotalWork <= 0 {
		return false
	}
	b.remaining -= g.EffectiveCPU()
	return b.remaining <= 0
}
