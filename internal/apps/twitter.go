package apps

import (
	"math/rand"

	"repro/internal/sim"
)

// TwitterConfig tunes the CloudSuite Twitter-influence-ranking model.
type TwitterConfig struct {
	// CPUPhaseTicks and MemPhaseTicks are the lengths of the alternating
	// phases (in running ticks; a frozen job's phase clock pauses).
	CPUPhaseTicks int
	MemPhaseTicks int
	// CPUPhaseCPU is compute demand during the CPU-intensive phase. It is
	// sized to co-run with a moderately loaded sensitive application but
	// to overshoot the host when the sensitive load peaks — producing the
	// sporadic CPU-phase violations of Fig 9 and the workload-dependent
	// throttling of Fig 13.
	CPUPhaseCPU float64
	// MemPhaseCPU is compute demand during the memory-intensive phase.
	MemPhaseCPU float64
	// MemPhaseMemoryMB is the graph working set during the memory phase.
	// Against the memory-intensive Webservice at high intensity, the
	// combined active sets overflow RAM and force swapping — the §7.2
	// observation that Twitter "is throttled only when it performs
	// extensive memory operations".
	MemPhaseMemoryMB float64
	// CPUPhaseMemoryMB is the modest CPU-phase working set.
	CPUPhaseMemoryMB float64
	// MemPhaseBWMBps / CPUPhaseBWMBps are per-phase bandwidth demands.
	MemPhaseBWMBps float64
	CPUPhaseBWMBps float64
	// Jitter is the relative per-tick demand variation.
	Jitter float64
	// TotalWork is the job size in effective-CPU units; <= 0 never
	// finishes.
	TotalWork float64
}

// DefaultTwitterConfig returns the evaluation's Twitter-Analysis job.
func DefaultTwitterConfig() TwitterConfig {
	return TwitterConfig{
		CPUPhaseTicks:    14,
		MemPhaseTicks:    10,
		CPUPhaseCPU:      245,
		MemPhaseCPU:      90,
		MemPhaseMemoryMB: 2400,
		CPUPhaseMemoryMB: 500,
		MemPhaseBWMBps:   7000,
		CPUPhaseBWMBps:   1500,
		Jitter:           0.03,
		TotalWork:        55000,
	}
}

// TwitterAnalysis models the CloudSuite Twitter influence-ranking batch
// job: it alternates between a CPU-intensive ranking phase and a
// memory-intensive graph phase.
type TwitterAnalysis struct {
	cfg       TwitterConfig
	rng       *rand.Rand
	ranTicks  int
	remaining float64

	inMemPhase bool
}

var _ sim.App = (*TwitterAnalysis)(nil)

// NewTwitterAnalysis returns a Twitter-Analysis job.
func NewTwitterAnalysis(cfg TwitterConfig, rng *rand.Rand) *TwitterAnalysis {
	return &TwitterAnalysis{cfg: cfg, rng: rng, remaining: cfg.TotalWork}
}

// Name implements sim.App.
func (t *TwitterAnalysis) Name() string { return "twitter-analysis" }

// InMemoryPhase reports whether the job is currently in its
// memory-intensive phase.
func (t *TwitterAnalysis) InMemoryPhase() bool { return t.inMemPhase }

// Demand implements sim.App. The phase is derived from running ticks so
// that freezing pauses the phase clock, exactly like a SIGSTOPped process.
func (t *TwitterAnalysis) Demand(tick int) sim.Demand {
	cycle := t.cfg.CPUPhaseTicks + t.cfg.MemPhaseTicks
	pos := 0
	if cycle > 0 {
		pos = t.ranTicks % cycle
	}
	t.inMemPhase = pos >= t.cfg.CPUPhaseTicks
	if t.inMemPhase {
		return sim.Demand{
			CPU:         jitter(t.rng, t.cfg.MemPhaseCPU, t.cfg.Jitter),
			MemoryMB:    t.cfg.MemPhaseMemoryMB,
			ActiveMemMB: t.cfg.MemPhaseMemoryMB,
			MemBWMBps:   t.cfg.MemPhaseBWMBps,
		}
	}
	return sim.Demand{
		CPU:         jitter(t.rng, t.cfg.CPUPhaseCPU, t.cfg.Jitter),
		MemoryMB:    t.cfg.CPUPhaseMemoryMB,
		ActiveMemMB: t.cfg.CPUPhaseMemoryMB * 0.7,
		MemBWMBps:   t.cfg.CPUPhaseBWMBps,
	}
}

// Advance implements sim.App.
func (t *TwitterAnalysis) Advance(tick int, g sim.Grant) bool {
	t.ranTicks++
	if t.cfg.TotalWork <= 0 {
		return false
	}
	t.remaining -= g.EffectiveCPU()
	return t.remaining <= 0
}

// Remaining returns outstanding work.
func (t *TwitterAnalysis) Remaining() float64 { return t.remaining }
