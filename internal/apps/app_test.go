package apps

import (
	"math/rand"
	"testing"
)

func TestConstantIntensity(t *testing.T) {
	if got := ConstantIntensity(0.7)(99); got != 0.7 {
		t.Errorf("intensity = %v, want 0.7", got)
	}
	if got := ConstantIntensity(-1)(0); got != 0 {
		t.Errorf("negative clamps: %v", got)
	}
	if got := ConstantIntensity(2)(0); got != 1 {
		t.Errorf("overflow clamps: %v", got)
	}
}

func TestSeriesIntensity(t *testing.T) {
	f := SeriesIntensity([]float64{0.1, 0.5, 0.9})
	if f(0) != 0.1 || f(1) != 0.5 || f(2) != 0.9 {
		t.Error("series values wrong")
	}
	if f(10) != 0.9 {
		t.Errorf("past end = %v, want last value", f(10))
	}
	if f(-1) != 0.1 {
		t.Errorf("negative tick = %v, want first value", f(-1))
	}
	if got := SeriesIntensity(nil)(0); got != 0 {
		t.Errorf("empty series = %v, want 0", got)
	}
	// Out-of-range values clamp.
	g := SeriesIntensity([]float64{-0.5, 1.5})
	if g(0) != 0 || g(1) != 1 {
		t.Errorf("clamping failed: %v %v", g(0), g(1))
	}
	// Mutating the source does not affect the function.
	src := []float64{0.3}
	h := SeriesIntensity(src)
	src[0] = 0.9
	if h(0) != 0.3 {
		t.Error("series aliased source")
	}
}

func TestStepIntensity(t *testing.T) {
	// levels [0.2, 0.8, 0.4], boundaries [5, 10]:
	// ticks 0–4 → 0.2, 5–9 → 0.8, 10+ → 0.4.
	f := StepIntensity([]float64{0.2, 0.8, 0.4}, []int{5, 10})
	tests := []struct {
		tick int
		want float64
	}{
		{0, 0.2}, {4, 0.2}, {5, 0.8}, {9, 0.8}, {10, 0.4}, {100, 0.4},
	}
	for _, tt := range tests {
		if got := f(tt.tick); got != tt.want {
			t.Errorf("f(%d) = %v, want %v", tt.tick, got, tt.want)
		}
	}
	// Clamping of levels.
	g := StepIntensity([]float64{2}, nil)
	if g(0) != 1 {
		t.Errorf("level clamp = %v", g(0))
	}
}

func TestJitter(t *testing.T) {
	if got := jitter(nil, 100, 0.1); got != 100 {
		t.Errorf("nil rng jitter = %v, want base", got)
	}
	rng := rand.New(rand.NewSource(1))
	if got := jitter(rng, 100, 0); got != 100 {
		t.Errorf("zero rel jitter = %v, want base", got)
	}
	if got := jitter(rng, 0, 0.5); got != 0 {
		t.Errorf("zero base jitter = %v, want 0", got)
	}
	// Jitter never goes negative even with huge relative spread.
	for i := 0; i < 1000; i++ {
		if got := jitter(rng, 10, 3); got < 0 {
			t.Fatalf("negative jitter %v", got)
		}
	}
	// Mean stays near base.
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		sum += jitter(rng, 100, 0.1)
	}
	if mean := sum / n; mean < 95 || mean > 105 {
		t.Errorf("jitter mean = %v, want ≈100", mean)
	}
}

func TestQoSFromGrant(t *testing.T) {
	tests := []struct {
		demand, effective, want float64
	}{
		{100, 100, 1},
		{100, 50, 0.5},
		{100, 150, 1}, // over-delivery clamps
		{0, 50, 1},    // no demand = perfect service
		{100, -10, 0}, // garbage clamps
	}
	for _, tt := range tests {
		if got := qosFromGrant(tt.demand, tt.effective); got != tt.want {
			t.Errorf("qosFromGrant(%v,%v) = %v, want %v", tt.demand, tt.effective, got, tt.want)
		}
	}
}
