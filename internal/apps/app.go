// Package apps implements the workloads of the paper's evaluation (§7.1)
// as demand models for the sim substrate:
//
//   - VLCStream — the latency-sensitive streaming server (QoS: transcode
//     rate vs the real-time threshold);
//   - VLCTranscode — offline transcoding as a CPU-heavy batch job;
//   - Webservice — the memcached-backed analytics service with
//     CPU-intensive, memory-intensive and mixed workloads (QoS:
//     transactions/s);
//   - Soplex — SPEC CPU 2006 soplex: steady compute with a slowly growing
//     working set ("linear trajectory with a consistent orientation");
//   - TwitterAnalysis — CloudSuite Twitter influence ranking: alternating
//     CPU-intensive and memory-intensive phases;
//   - CPUBomb / MemoryBomb — the isolation-benchmark stressors.
//
// The numbers are calibrated against sim.DefaultHostConfig (4 cores = 400
// CPU units, 4096 MB RAM, 10 GB/s memory bandwidth) so that each
// co-location interferes through the channel the paper describes: CPU
// over-subscription for the bombs and Soplex, swap pressure for the memory
// stressors against the memory-intensive Webservice, and spiky CPU-phase
// contention for Twitter against VLC.
package apps

import (
	"math/rand"

	"repro/internal/workload"
)

// Intensity drives a workload's load level over time, in [0,1]. The
// Webservice experiments drive it from the diurnal trace.
type Intensity func(tick int) float64

// ConstantIntensity returns a fixed intensity, clamped to [0,1].
func ConstantIntensity(v float64) Intensity {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return func(int) float64 { return v }
}

// SeriesIntensity replays a normalized series, one value per tick,
// clamping past the end to the final value. An empty series yields 0. It
// is the closed-loop adapter over an open-loop workload.Series with peak 1
// — both loops can replay the same shape (see ArrivalIntensity).
func SeriesIntensity(series []float64) Intensity {
	return ArrivalIntensity(workload.NewSeries(series), 1)
}

// StepIntensity switches between levels at the given tick boundaries:
// value levels[i] holds for ticks in [boundaries[i-1], boundaries[i]),
// with boundaries[-1] = 0 and the last level holding forever.
// len(levels) must be len(boundaries)+1.
func StepIntensity(levels []float64, boundaries []int) Intensity {
	ls := append([]float64(nil), levels...)
	bs := append([]int(nil), boundaries...)
	return func(tick int) float64 {
		i := 0
		for i < len(bs) && tick >= bs[i] {
			i++
		}
		if i >= len(ls) {
			i = len(ls) - 1
		}
		v := ls[i]
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
}

// jitter multiplies base by (1 + rel·N(0,1)), floored at zero. A nil rng
// or rel ≤ 0 returns base unchanged, so tests can run deterministically.
func jitter(rng *rand.Rand, base, rel float64) float64 {
	if rng == nil || rel <= 0 || base == 0 {
		return base
	}
	v := base * (1 + rel*rng.NormFloat64())
	if v < 0 {
		return 0
	}
	return v
}

// qosFromGrant converts a demand/grant pair into a normalized service rate:
// effective CPU received over CPU demanded, in [0,1]. An idle period (no
// demand) counts as perfect service.
func qosFromGrant(demandCPU, effectiveCPU float64) float64 {
	if demandCPU <= 0 {
		return 1
	}
	r := effectiveCPU / demandCPU
	if r > 1 {
		return 1
	}
	if r < 0 {
		return 0
	}
	return r
}
