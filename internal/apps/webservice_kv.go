package apps

import (
	"math/rand"

	"repro/internal/kvstore"
	"repro/internal/sim"
)

// RequestWebservice is the request-driven variant of the Webservice: where
// the plain Webservice model prescribes resource demands analytically,
// this one derives them from actually executing requests against a real
// Memcached layer (internal/kvstore) over a CONFINE-like dataset — cache
// hits, misses, evictions and aggregation windows produce the CPU, memory
// and disk demands. It implements the same sim.QoSApp surface, so every
// experiment can swap it in for the analytic model.

// RequestWebserviceConfig tunes the request-driven Webservice.
type RequestWebserviceConfig struct {
	// Kind selects the operation mix per §7.1.
	Kind WorkloadKind
	// Intensity drives offered load; nil = constant full load.
	Intensity Intensity
	// MaxRPT is the offered requests per tick at intensity 1.
	MaxRPT int
	// Dataset is the backing dataset; nil uses a scaled default.
	Dataset *kvstore.Dataset
	// CacheMB is the Memcached layer's capacity in MB.
	CacheMB int64
	// BaseMemoryMB is the process's resident set outside the cache.
	BaseMemoryMB float64
	// ReuseWindowTicks approximates how many ticks of touched data stay
	// hot (drives the active working set).
	ReuseWindowTicks int
	// CPUPerUnit converts kvstore CPU units into percent-of-core demand.
	CPUPerUnit float64
	// MaxCPU caps per-tick CPU demand; offered work beyond the cap queues
	// as backlog and is demanded on later ticks (request bursts become
	// sustained demand, as a real thread pool would render them).
	MaxCPU float64
	// Threshold is the QoS threshold.
	Threshold float64
}

// DefaultRequestWebserviceConfig returns a request-driven Webservice
// calibrated to land in the same demand ranges as the analytic model:
// ≈300 CPU at full CPU-intensive load, ≈3 GB active set at full
// memory-intensive load.
func DefaultRequestWebserviceConfig(kind WorkloadKind) RequestWebserviceConfig {
	cfg := RequestWebserviceConfig{
		Kind:             kind,
		Intensity:        ConstantIntensity(1),
		MaxRPT:           60,
		BaseMemoryMB:     300,
		ReuseWindowTicks: 4,
		Threshold:        0.9,
	}
	switch kind {
	case CPUIntensive:
		// Analysis-heavy over compact summary records: a modest cache
		// suffices, compute dominates.
		cfg.CacheMB = 400
		cfg.CPUPerUnit = 0 // calibrated in NewRequestWebservice
		cfg.MaxCPU = 330
	case MemoryIntensive:
		// Serving-heavy over bulky records; the hot set approaches RAM.
		cfg.CacheMB = 2600
		cfg.MaxCPU = 170
	default: // Mixed
		cfg.CacheMB = 1400
		cfg.MaxCPU = 260
	}
	return cfg
}

// scaledDataset returns the CONFINE-like dataset with record sizes chosen
// per workload kind: analyses run over compact summary records; the
// serving-heavy workload handles bulky monitoring blobs.
func scaledDataset(kind WorkloadKind) *kvstore.Dataset {
	d := kvstore.DefaultDataset()
	switch kind {
	case CPUIntensive:
		d.MinRecordBytes = 8 << 10
		d.MaxRecordBytes = 64 << 10
	case MemoryIntensive:
		d.MinRecordBytes = 128 << 10
		d.MaxRecordBytes = 2 << 20
	default:
		d.MinRecordBytes = 64 << 10
		d.MaxRecordBytes = 1 << 20
	}
	return d
}

// defaultCPUPerUnit calibrates kvstore CPU units to percent-of-core so
// that full offered load sustains roughly the analytic model's demand
// (≈300 / ≈140 / ≈240 CPU for cpu / memory / mixed).
func defaultCPUPerUnit(kind WorkloadKind) float64 {
	switch kind {
	case CPUIntensive:
		return 0.49
	case MemoryIntensive:
		return 0.22
	default:
		return 0.32
	}
}

// mixFor maps workload kinds to operation mixes.
func mixFor(kind WorkloadKind) kvstore.Mix {
	switch kind {
	case CPUIntensive:
		return kvstore.Mix{kvstore.OpGet: 0.90, kvstore.OpAnalyze: 0.10}
	case MemoryIntensive:
		return kvstore.Mix{kvstore.OpGet: 0.65, kvstore.OpAggregate: 0.35}
	default:
		return kvstore.Mix{kvstore.OpGet: 0.75, kvstore.OpAggregate: 0.17, kvstore.OpAnalyze: 0.08}
	}
}

// RequestWebservice implements sim.QoSApp over the kvstore substrate.
type RequestWebservice struct {
	cfg RequestWebserviceConfig
	svc *kvstore.Service
	rng *rand.Rand
	mix kvstore.Mix

	// hotRing holds the hot MB touched in the most recent ticks; its sum
	// approximates the active working set.
	hotRing []float64
	ringPos int

	// backlogUnits is queued work beyond the per-tick CPU cap.
	backlogUnits float64
	// demandedUnits is the work demanded this tick (≤ cap).
	demandedUnits float64

	lastQoS float64
	tick    int
}

var _ sim.QoSApp = (*RequestWebservice)(nil)

// NewRequestWebservice builds the service. rng is required (request
// sampling is stochastic).
func NewRequestWebservice(cfg RequestWebserviceConfig, rng *rand.Rand) (*RequestWebservice, error) {
	if cfg.Intensity == nil {
		cfg.Intensity = ConstantIntensity(1)
	}
	if cfg.MaxRPT <= 0 {
		cfg.MaxRPT = 60
	}
	if cfg.ReuseWindowTicks <= 0 {
		cfg.ReuseWindowTicks = 4
	}
	if cfg.CPUPerUnit <= 0 {
		cfg.CPUPerUnit = defaultCPUPerUnit(cfg.Kind)
	}
	if cfg.MaxCPU <= 0 {
		cfg.MaxCPU = 330
	}
	data := cfg.Dataset
	if data == nil {
		data = scaledDataset(cfg.Kind)
	}
	svc, err := kvstore.NewService(data, cfg.CacheMB<<20)
	if err != nil {
		return nil, err
	}
	return &RequestWebservice{
		cfg:     cfg,
		svc:     svc,
		rng:     rng,
		mix:     mixFor(cfg.Kind),
		hotRing: make([]float64, cfg.ReuseWindowTicks),
		lastQoS: 1,
	}, nil
}

// Name implements sim.App.
func (w *RequestWebservice) Name() string {
	return "webservice-kv-" + w.cfg.Kind.String()
}

// Service exposes the underlying kvstore service for inspection.
func (w *RequestWebservice) Service() *kvstore.Service { return w.svc }

// Demand implements sim.App: execute this tick's offered requests against
// the Memcached layer and translate the accumulated cost — plus any queued
// backlog — into resource demand, capped at MaxCPU (the thread pool's
// width).
func (w *RequestWebservice) Demand(tick int) sim.Demand {
	x := w.cfg.Intensity(tick)
	n := int(float64(w.cfg.MaxRPT)*x + 0.5)
	// The collector pipeline ingests the current period's fleet records,
	// keeping the hot query window cached.
	cost := w.svc.IngestPeriod(w.tick)
	for i := 0; i < n; i++ {
		req := w.svc.SampleRequest(w.rng, w.mix, w.tick)
		cost.Add(w.svc.Execute(req))
	}
	w.backlogUnits += cost.CPUUnits
	w.demandedUnits = w.backlogUnits
	if capUnits := w.cfg.MaxCPU / w.cfg.CPUPerUnit; w.demandedUnits > capUnits {
		w.demandedUnits = capUnits
	}

	hotMB := float64(cost.HotBytes) / (1 << 20)
	w.hotRing[w.ringPos] = hotMB
	w.ringPos = (w.ringPos + 1) % len(w.hotRing)
	var active float64
	for _, h := range w.hotRing {
		active += h
	}

	cacheMB := float64(w.svc.Cache().UsedBytes()) / (1 << 20)
	return sim.Demand{
		CPU:         w.demandedUnits * w.cfg.CPUPerUnit,
		MemoryMB:    w.cfg.BaseMemoryMB + cacheMB,
		ActiveMemMB: w.cfg.BaseMemoryMB*0.3 + active,
		MemBWMBps:   hotMB * 2, // hot data streams through the caches
		DiskMBps:    float64(cost.DiskBytes) / (1 << 20),
		NetMbps:     float64(n) * 0.6,
	}
}

// Advance implements sim.App: the transaction rate is the fraction of
// demanded work actually completed; unfinished work stays queued.
func (w *RequestWebservice) Advance(tick int, g sim.Grant) bool {
	served := g.EffectiveCPU() / w.cfg.CPUPerUnit
	if served > w.demandedUnits {
		served = w.demandedUnits
	}
	w.backlogUnits -= served
	if w.backlogUnits < 0 {
		w.backlogUnits = 0
	}
	if w.demandedUnits > 0 {
		w.lastQoS = served / w.demandedUnits
	} else {
		w.lastQoS = 1
	}
	w.tick++
	return false
}

// Backlog returns the queued work in kvstore CPU units.
func (w *RequestWebservice) Backlog() float64 { return w.backlogUnits }

// QoS implements sim.QoSApp.
func (w *RequestWebservice) QoS() (value, threshold float64) {
	return w.lastQoS, w.cfg.Threshold
}
