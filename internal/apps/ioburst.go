package apps

import (
	"math/rand"

	"repro/internal/sim"
)

// IOBurstConfig tunes the bursty storage batch job.
type IOBurstConfig struct {
	// TotalWorkCPU is effective CPU until completion.
	TotalWorkCPU float64
	// PeriodTicks is the burst cycle length; BurstTicks of each period are
	// spent in a storage storm.
	PeriodTicks int
	BurstTicks  int
	// BurstDiskMBps is disk demand during a storm (quiet phases use a
	// trickle). Sized against sim.DefaultHostConfig's 200 MB/s disk, a
	// single storm saturates the device.
	BurstDiskMBps float64
	// Jitter is per-tick relative CPU variation.
	Jitter float64
}

// DefaultIOBurstConfig returns a batch job whose storms claim ~90% of the
// default host's disk for a quarter of each cycle.
func DefaultIOBurstConfig() IOBurstConfig {
	return IOBurstConfig{
		TotalWorkCPU:  30000,
		PeriodTicks:   40,
		BurstTicks:    10,
		BurstDiskMBps: 180,
		Jitter:        0.05,
	}
}

// IOBurstBatch is a compaction/backup-style batch job: moderate steady CPU
// with periodic disk storms. It is the aggressor of the bursty-I/O-batch
// scenario class — it barely contends for CPU, so a grant-ratio QoS on the
// victim sees nothing, while a storage-coupled open-loop service loses
// disk throughput during each storm and its latency percentile climbs.
type IOBurstBatch struct {
	cfg IOBurstConfig
	rng *rand.Rand

	doneCPU float64
}

var _ sim.App = (*IOBurstBatch)(nil)

// NewIOBurstBatch returns the batch job; rng may be nil for a
// deterministic instance.
func NewIOBurstBatch(cfg IOBurstConfig, rng *rand.Rand) *IOBurstBatch {
	if cfg.TotalWorkCPU <= 0 {
		cfg.TotalWorkCPU = DefaultIOBurstConfig().TotalWorkCPU
	}
	if cfg.PeriodTicks <= 0 {
		cfg.PeriodTicks = DefaultIOBurstConfig().PeriodTicks
	}
	if cfg.BurstTicks <= 0 || cfg.BurstTicks > cfg.PeriodTicks {
		cfg.BurstTicks = cfg.PeriodTicks / 4
	}
	if cfg.BurstDiskMBps <= 0 {
		cfg.BurstDiskMBps = DefaultIOBurstConfig().BurstDiskMBps
	}
	return &IOBurstBatch{cfg: cfg, rng: rng}
}

// Name implements sim.App.
func (b *IOBurstBatch) Name() string { return "io-burst-batch" }

// Progress returns completed work as a fraction of the total.
func (b *IOBurstBatch) Progress() float64 { return b.doneCPU / b.cfg.TotalWorkCPU }

// Demand implements sim.App.
func (b *IOBurstBatch) Demand(tick int) sim.Demand {
	inBurst := tick%b.cfg.PeriodTicks < b.cfg.BurstTicks
	disk := 5.0
	cpu := 80.0
	if inBurst {
		disk = b.cfg.BurstDiskMBps
		cpu = 110 // storms also checksum/compress
	}
	return sim.Demand{
		CPU:         jitter(b.rng, cpu, b.cfg.Jitter),
		MemoryMB:    500,
		ActiveMemMB: 250,
		MemBWMBps:   800,
		DiskMBps:    disk,
		NetMbps:     5,
	}
}

// Advance implements sim.App.
func (b *IOBurstBatch) Advance(tick int, g sim.Grant) bool {
	b.doneCPU += g.EffectiveCPU()
	return b.doneCPU >= b.cfg.TotalWorkCPU
}
