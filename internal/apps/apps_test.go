package apps

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// runAlone drives an app alone on a default host for n ticks and returns
// the container.
func runAlone(t *testing.T, app sim.App, n int) (*sim.Simulator, *sim.Container) {
	t.Helper()
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.AddContainer("c", app)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(n)
	return s, c
}

func TestVLCStreamAloneHasPerfectQoS(t *testing.T) {
	v := NewVLCStream(DefaultVLCStreamConfig(), rand.New(rand.NewSource(1)))
	runAlone(t, v, 50)
	value, threshold := v.QoS()
	if value < threshold {
		t.Errorf("isolated VLC QoS %v below threshold %v", value, threshold)
	}
	if value != 1 {
		t.Errorf("isolated VLC QoS = %v, want 1", value)
	}
}

func TestVLCStreamDuration(t *testing.T) {
	cfg := DefaultVLCStreamConfig()
	cfg.Duration = 10
	v := NewVLCStream(cfg, nil)
	_, c := runAlone(t, v, 20)
	if c.State() != sim.StateFinished {
		t.Errorf("state = %v, want finished after duration", c.State())
	}
	if c.TicksRun() != 10 {
		t.Errorf("ticks run = %d, want 10", c.TicksRun())
	}
}

func TestVLCStreamVsCPUBombViolates(t *testing.T) {
	// The paper's worst case: CPUBomb saturates all cores; without
	// prevention VLC's transcode rate collapses below threshold.
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := NewVLCStream(DefaultVLCStreamConfig(), rand.New(rand.NewSource(1)))
	if _, err := s.AddContainer("vlc", v); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("bomb", NewCPUBomb(DefaultCPUBombConfig())); err != nil {
		t.Fatal(err)
	}
	violations := 0
	for i := 0; i < 50; i++ {
		s.Step()
		if value, threshold := v.QoS(); value < threshold {
			violations++
		}
	}
	if violations < 45 {
		t.Errorf("violations = %d/50, want near-constant violation under CPUBomb", violations)
	}
	// Freezing the bomb must restore QoS immediately.
	if err := s.Freeze("bomb"); err != nil {
		t.Fatal(err)
	}
	s.Step()
	if value, threshold := v.QoS(); value < threshold {
		t.Errorf("QoS %v still below %v after freezing the bomb", value, threshold)
	}
}

func TestVLCStreamVsTwitterSporadicViolations(t *testing.T) {
	// Twitter's CPU phase co-runs with VLC most of the time but VLC's
	// scene-complexity spikes overshoot capacity sporadically; the memory
	// phase must be harmless to VLC.
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := NewVLCStream(DefaultVLCStreamConfig(), rand.New(rand.NewSource(7)))
	tw := NewTwitterAnalysis(DefaultTwitterConfig(), rand.New(rand.NewSource(8)))
	if _, err := s.AddContainer("vlc", v); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("tw", tw); err != nil {
		t.Fatal(err)
	}
	var cpuPhaseViol, memPhaseViol, total int
	for i := 0; i < 200; i++ {
		s.Step()
		value, threshold := v.QoS()
		if value < threshold {
			total++
			if tw.InMemoryPhase() {
				memPhaseViol++
			} else {
				cpuPhaseViol++
			}
		}
	}
	if total == 0 {
		t.Fatal("expected sporadic violations with Twitter co-location")
	}
	if total > 150 {
		t.Errorf("violations = %d/200; Twitter should not be as bad as CPUBomb", total)
	}
	if cpuPhaseViol <= memPhaseViol {
		t.Errorf("violations should concentrate in the CPU phase: cpu=%d mem=%d", cpuPhaseViol, memPhaseViol)
	}
}

func TestVLCTranscodeFinishes(t *testing.T) {
	cfg := DefaultVLCTranscodeConfig()
	cfg.TotalWork = 1000
	tr := NewVLCTranscode(cfg, nil)
	_, c := runAlone(t, tr, 20)
	if c.State() != sim.StateFinished {
		t.Errorf("state = %v, want finished", c.State())
	}
	if tr.Remaining() > 0 {
		t.Errorf("remaining = %v", tr.Remaining())
	}
}

func TestWebserviceKinds(t *testing.T) {
	for _, kind := range []WorkloadKind{CPUIntensive, MemoryIntensive, Mixed} {
		t.Run(kind.String(), func(t *testing.T) {
			w := NewWebservice(DefaultWebserviceConfig(kind), rand.New(rand.NewSource(1)))
			runAlone(t, w, 30)
			value, threshold := w.QoS()
			if value < threshold {
				t.Errorf("isolated %v QoS %v below threshold %v", kind, value, threshold)
			}
		})
	}
	if CPUIntensive.String() != "cpu-intensive" || MemoryIntensive.String() != "memory-intensive" || Mixed.String() != "mixed" {
		t.Error("kind strings wrong")
	}
	if WorkloadKind(9).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestWebserviceIntensityScalesDemand(t *testing.T) {
	low := NewWebservice(WebserviceConfig{Kind: CPUIntensive, Intensity: ConstantIntensity(0.1), Threshold: 0.9}, nil)
	high := NewWebservice(WebserviceConfig{Kind: CPUIntensive, Intensity: ConstantIntensity(1), Threshold: 0.9}, nil)
	dl := low.Demand(0)
	dh := high.Demand(0)
	if dl.CPU >= dh.CPU {
		t.Errorf("low intensity CPU %v should be below high %v", dl.CPU, dh.CPU)
	}
}

func TestWebserviceNilIntensityDefaults(t *testing.T) {
	w := NewWebservice(WebserviceConfig{Kind: Mixed, Threshold: 0.9}, nil)
	if d := w.Demand(0); d.CPU <= 0 {
		t.Errorf("nil intensity demand = %+v", d)
	}
}

func TestWebserviceMemoryVsMemoryBombSwaps(t *testing.T) {
	// Memory-intensive Webservice at full load plus the MemoryBomb's
	// reading bursts overflow RAM: QoS must collapse during bursts.
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWebservice(DefaultWebserviceConfig(MemoryIntensive), rand.New(rand.NewSource(1)))
	if _, err := s.AddContainer("web", w); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("bomb", NewMemoryBomb(DefaultMemoryBombConfig(), rand.New(rand.NewSource(2)))); err != nil {
		t.Fatal(err)
	}
	violations := 0
	for i := 0; i < 100; i++ {
		s.Step()
		if value, threshold := w.QoS(); value < threshold {
			violations++
		}
	}
	if violations == 0 {
		t.Error("expected swap-driven violations")
	}
	if violations > 90 {
		t.Errorf("violations = %d/100; bursts should be intermittent", violations)
	}
}

func TestWebserviceCPUVsMemoryBombCoexists(t *testing.T) {
	// The CPU-intensive Webservice barely touches memory: the MemoryBomb
	// should be able to co-run with only rare interference (§7.2: all
	// batch apps except MemoryBomb interfere with the CPU workload).
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWebservice(DefaultWebserviceConfig(CPUIntensive), rand.New(rand.NewSource(1)))
	if _, err := s.AddContainer("web", w); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("bomb", NewMemoryBomb(DefaultMemoryBombConfig(), rand.New(rand.NewSource(2)))); err != nil {
		t.Fatal(err)
	}
	violations := 0
	for i := 0; i < 100; i++ {
		s.Step()
		if value, threshold := w.QoS(); value < threshold {
			violations++
		}
	}
	if violations > 20 {
		t.Errorf("violations = %d/100, want mostly clean coexistence", violations)
	}
}

func TestSoplexLinearMemoryGrowth(t *testing.T) {
	cfg := DefaultSoplexConfig()
	cfg.TotalWork = 0 // never finish
	sp := NewSoplex(cfg, nil)
	_, c := runAlone(t, sp, 60)
	d := c.LastDemand()
	// After 60 of 120 growth ticks, memory is halfway between start/end.
	want := cfg.StartMemoryMB + (cfg.EndMemoryMB-cfg.StartMemoryMB)*0.5
	if diff := d.MemoryMB - want; diff < -50 || diff > 50 {
		t.Errorf("memory after 60 ticks = %v, want ≈%v", d.MemoryMB, want)
	}
	// Growth is monotone.
	sp2 := NewSoplex(cfg, nil)
	prev := -1.0
	s2, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s2.AddContainer("s", sp2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		s2.Step()
		if m := c2.LastDemand().MemoryMB; m < prev {
			t.Fatalf("memory shrank at tick %d: %v < %v", i, m, prev)
		} else {
			prev = m
		}
	}
}

func TestSoplexPhaseClockPausesWhenFrozen(t *testing.T) {
	cfg := DefaultSoplexConfig()
	cfg.TotalWork = 0
	sp := NewSoplex(cfg, nil)
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.AddContainer("s", sp)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	memAt10 := c.LastDemand().MemoryMB
	if err := s.Freeze("s"); err != nil {
		t.Fatal(err)
	}
	s.Run(20) // frozen: no growth
	if err := s.Thaw("s"); err != nil {
		t.Fatal(err)
	}
	s.Step()
	memAfter := c.LastDemand().MemoryMB
	growth := memAfter - memAt10
	perTick := (cfg.EndMemoryMB - cfg.StartMemoryMB) / float64(cfg.GrowthTicks)
	if growth > 2*perTick+1 {
		t.Errorf("frozen period grew memory by %v (>%v)", growth, 2*perTick)
	}
}

func TestTwitterPhaseAlternation(t *testing.T) {
	cfg := DefaultTwitterConfig()
	cfg.TotalWork = 0
	tw := NewTwitterAnalysis(cfg, nil)
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("t", tw); err != nil {
		t.Fatal(err)
	}
	var phases []bool
	for i := 0; i < cfg.CPUPhaseTicks+cfg.MemPhaseTicks; i++ {
		s.Step()
		phases = append(phases, tw.InMemoryPhase())
	}
	for i := 0; i < cfg.CPUPhaseTicks; i++ {
		if phases[i] {
			t.Errorf("tick %d should be CPU phase", i)
		}
	}
	for i := cfg.CPUPhaseTicks; i < len(phases); i++ {
		if !phases[i] {
			t.Errorf("tick %d should be memory phase", i)
		}
	}
}

func TestTwitterDemandDiffersByPhase(t *testing.T) {
	cfg := DefaultTwitterConfig()
	tw := NewTwitterAnalysis(cfg, nil)
	dCPU := tw.Demand(0)
	// Fast-forward the phase clock by advancing running ticks.
	for i := 0; i < cfg.CPUPhaseTicks; i++ {
		tw.Advance(i, sim.Grant{CPU: 1, CPUEfficiency: 1})
	}
	dMem := tw.Demand(0)
	if dCPU.CPU <= dMem.CPU {
		t.Errorf("CPU-phase compute %v should exceed memory-phase %v", dCPU.CPU, dMem.CPU)
	}
	if dMem.ActiveMemMB <= dCPU.ActiveMemMB {
		t.Errorf("memory-phase active set %v should exceed CPU-phase %v", dMem.ActiveMemMB, dCPU.ActiveMemMB)
	}
}

func TestCPUBombSaturates(t *testing.T) {
	b := NewCPUBomb(DefaultCPUBombConfig())
	_, c := runAlone(t, b, 10)
	if c.State() != sim.StateRunning {
		t.Errorf("default bomb should run forever: %v", c.State())
	}
	if c.LastGrant().CPU != 400 {
		t.Errorf("alone, bomb gets %v, want 400", c.LastGrant().CPU)
	}
	// Finite bomb finishes.
	fb := NewCPUBomb(CPUBombConfig{CPU: 400, TotalWork: 800})
	_, c2 := runAlone(t, fb, 10)
	if c2.State() != sim.StateFinished {
		t.Errorf("finite bomb state = %v", c2.State())
	}
}

func TestMemoryBombRampAndBursts(t *testing.T) {
	cfg := DefaultMemoryBombConfig()
	b := NewMemoryBomb(cfg, nil)
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.AddContainer("b", b)
	if err != nil {
		t.Fatal(err)
	}
	// During the ramp, resident memory grows.
	s.Run(10)
	early := c.LastDemand().MemoryMB
	s.Run(30)
	late := c.LastDemand().MemoryMB
	if late <= early {
		t.Errorf("resident set did not grow: %v -> %v", early, late)
	}
	if late < cfg.PeakMemoryMB*0.99 {
		t.Errorf("resident = %v, want ≈peak %v after ramp", late, cfg.PeakMemoryMB)
	}
	// Active memory alternates between idle fraction and full bursts.
	var sawIdle, sawBurst bool
	for i := 0; i < cfg.ReadEveryTicks+cfg.ReadBurstTicks+2; i++ {
		s.Step()
		d := c.LastDemand()
		if d.ActiveMemMB >= d.MemoryMB*0.99 {
			sawBurst = true
		}
		if d.ActiveMemMB <= d.MemoryMB*cfg.IdleActiveFraction*1.01 {
			sawIdle = true
		}
	}
	if !sawIdle || !sawBurst {
		t.Errorf("bursts not alternating: idle=%v burst=%v", sawIdle, sawBurst)
	}
}

func TestBatchAppsFinishEventually(t *testing.T) {
	// Every default-config finite batch app must complete when run alone.
	tests := []struct {
		name string
		app  sim.App
	}{
		{"vlc-transcode", NewVLCTranscode(DefaultVLCTranscodeConfig(), nil)},
		{"soplex", NewSoplex(DefaultSoplexConfig(), nil)},
		{"twitter", NewTwitterAnalysis(DefaultTwitterConfig(), nil)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, c := runAlone(t, tt.app, 800)
			if c.State() != sim.StateFinished {
				t.Errorf("state = %v after 800 ticks, want finished", c.State())
			}
		})
	}
}
