package apps

import (
	"math"
	"math/rand"

	"repro/internal/sim"
)

// VLCStreamConfig tunes the latency-sensitive streaming server.
type VLCStreamConfig struct {
	// CPU is the transcoding demand during ordinary (light) scenes, in
	// percent-of-core units. It is also the demand used when no scene
	// model is configured (SceneCPUs empty or nil RNG).
	CPU float64
	// SceneCPUs are the demand levels of the scene-complexity ladder
	// (light → heavy) and SceneProbs their stationary probabilities.
	// Scene changes are sudden and sustained — the paper's "instantaneous
	// jumps to violation states characterised by sudden increase in the
	// use of CPU" — while the intermediate levels produce the near-miss
	// safe states that let the violation-range anneal (§3.2.2).
	SceneCPUs  []float64
	SceneProbs []float64
	// SceneChangeProb is the per-tick probability that the current scene
	// ends and a new level is drawn (geometric scene durations).
	SceneChangeProb float64
	// CPUJitter is the small residual per-tick demand variation.
	CPUJitter float64
	// MemoryMB and ActiveMemMB size the streaming buffers.
	MemoryMB    float64
	ActiveMemMB float64
	// MemBWMBps is the frame-copy bandwidth.
	MemBWMBps float64
	// NetMbps is the streaming bitrate.
	NetMbps float64
	// Duration is how many ticks the stream lasts; <= 0 streams forever.
	Duration int
	// Threshold is the normalized minimum transcode rate for real-time
	// playback (the QoS threshold of §7.1).
	Threshold float64
}

// DefaultVLCStreamConfig returns the evaluation's streaming server.
func DefaultVLCStreamConfig() VLCStreamConfig {
	return VLCStreamConfig{
		CPU:             145,
		SceneCPUs:       []float64{145, 175, 230},
		SceneProbs:      []float64{0.65, 0.22, 0.13},
		SceneChangeProb: 0.25,
		CPUJitter:       0.02,
		MemoryMB:        400,
		ActiveMemMB:     150,
		MemBWMBps:       2000,
		NetMbps:         60,
		Duration:        0,
		Threshold:       0.9,
	}
}

// VLCStream is the sensitive application of Figs 5–11 and 17–18: it
// transcodes and streams a movie in real time; QoS is the achieved
// transcode rate normalized by demand ("the minimum transcoding rate
// required to provide real time viewing without any loss of frames").
type VLCStream struct {
	cfg  VLCStreamConfig
	rng  *rand.Rand
	tick int

	sceneLevel    int
	lastDemandCPU float64
	lastNetDemand float64
	lastQoS       float64
}

var _ sim.QoSApp = (*VLCStream)(nil)

// NewVLCStream returns a streaming server. rng may be nil for a fully
// deterministic (jitter-free) instance.
func NewVLCStream(cfg VLCStreamConfig, rng *rand.Rand) *VLCStream {
	return &VLCStream{cfg: cfg, rng: rng, lastQoS: 1}
}

// Name implements sim.App.
func (v *VLCStream) Name() string { return "vlc-stream" }

// SceneLevel returns the current scene-complexity level (0 = lightest).
func (v *VLCStream) SceneLevel() int { return v.sceneLevel }

// InHeavyScene reports whether the stream is transcoding a scene at the
// top complexity level.
func (v *VLCStream) InHeavyScene() bool {
	return len(v.cfg.SceneCPUs) > 0 && v.sceneLevel == len(v.cfg.SceneCPUs)-1
}

// drawScene samples a scene level from the stationary probabilities.
func (v *VLCStream) drawScene() int {
	u := v.rng.Float64()
	var cum float64
	for i, p := range v.cfg.SceneProbs {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(v.cfg.SceneCPUs) - 1
}

// Demand implements sim.App.
func (v *VLCStream) Demand(tick int) sim.Demand {
	base := v.cfg.CPU
	if v.rng != nil && len(v.cfg.SceneCPUs) > 0 && len(v.cfg.SceneProbs) == len(v.cfg.SceneCPUs) {
		if v.rng.Float64() < v.cfg.SceneChangeProb {
			v.sceneLevel = v.drawScene()
		}
		base = v.cfg.SceneCPUs[v.sceneLevel]
	}
	cpu := jitter(v.rng, base, v.cfg.CPUJitter)
	v.lastDemandCPU = cpu
	v.lastNetDemand = v.cfg.NetMbps
	return sim.Demand{
		CPU:         cpu,
		MemoryMB:    v.cfg.MemoryMB,
		ActiveMemMB: v.cfg.ActiveMemMB,
		MemBWMBps:   v.cfg.MemBWMBps,
		NetMbps:     v.cfg.NetMbps,
	}
}

// Advance implements sim.App: the transcode rate is the fraction of
// demanded compute actually received, further limited by the streaming
// path's network share.
func (v *VLCStream) Advance(tick int, g sim.Grant) bool {
	cpuRate := qosFromGrant(v.lastDemandCPU, g.EffectiveCPU())
	netRate := 1.0
	if v.lastNetDemand > 0 {
		netRate = math.Min(1, g.NetMbps/v.lastNetDemand)
	}
	v.lastQoS = math.Min(cpuRate, netRate)
	v.tick++
	return v.cfg.Duration > 0 && v.tick >= v.cfg.Duration
}

// QoS implements sim.QoSApp.
func (v *VLCStream) QoS() (value, threshold float64) {
	return v.lastQoS, v.cfg.Threshold
}

// VLCTranscodeConfig tunes the batch transcoding job.
type VLCTranscodeConfig struct {
	// CPU is the transcoder's demand; offline transcoding saturates all
	// the compute it can get.
	CPU float64
	// CPUJitter varies demand per tick.
	CPUJitter float64
	// MemoryMB / ActiveMemMB size the frame buffers.
	MemoryMB    float64
	ActiveMemMB float64
	// MemBWMBps is frame-copy bandwidth.
	MemBWMBps float64
	// TotalWork is the job size in effective-CPU units; <= 0 never
	// finishes.
	TotalWork float64
}

// DefaultVLCTranscodeConfig returns the Fig 6 batch transcoder.
func DefaultVLCTranscodeConfig() VLCTranscodeConfig {
	return VLCTranscodeConfig{
		CPU:         380,
		CPUJitter:   0.08,
		MemoryMB:    600,
		ActiveMemMB: 300,
		MemBWMBps:   2500,
		TotalWork:   60000,
	}
}

// VLCTranscode is offline video transcoding run as a batch application
// (the co-runner of Fig 6).
type VLCTranscode struct {
	cfg       VLCTranscodeConfig
	rng       *rand.Rand
	remaining float64
}

var _ sim.App = (*VLCTranscode)(nil)

// NewVLCTranscode returns a batch transcoder.
func NewVLCTranscode(cfg VLCTranscodeConfig, rng *rand.Rand) *VLCTranscode {
	return &VLCTranscode{cfg: cfg, rng: rng, remaining: cfg.TotalWork}
}

// Name implements sim.App.
func (v *VLCTranscode) Name() string { return "vlc-transcode" }

// Demand implements sim.App.
func (v *VLCTranscode) Demand(tick int) sim.Demand {
	return sim.Demand{
		CPU:         jitter(v.rng, v.cfg.CPU, v.cfg.CPUJitter),
		MemoryMB:    v.cfg.MemoryMB,
		ActiveMemMB: v.cfg.ActiveMemMB,
		MemBWMBps:   v.cfg.MemBWMBps,
	}
}

// Advance implements sim.App.
func (v *VLCTranscode) Advance(tick int, g sim.Grant) bool {
	if v.cfg.TotalWork <= 0 {
		return false
	}
	v.remaining -= g.EffectiveCPU()
	return v.remaining <= 0
}

// Remaining returns the outstanding work.
func (v *VLCTranscode) Remaining() float64 { return v.remaining }
