// Package stats provides the small statistical toolbox Stay-Away is built
// on: descriptive statistics, fixed-bin histograms, Gaussian kernel density
// estimation, inverse-transform sampling, the Rayleigh distance weighting
// used for violation ranges, and circular statistics for trajectory angles.
//
// Everything in this package is deterministic given the caller-supplied
// *rand.Rand; nothing reads the wall clock or global random state.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a meaningful result
// for an empty input slice.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs. An empty slice sums to 0.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1).
// It returns 0 for slices with fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (dividing by n-1).
// It returns 0 for slices with fewer than two elements.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return Variance(xs) * float64(len(xs)) / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It returns ErrEmpty for an empty slice.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns ErrEmpty for an empty slice.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// MinMax returns both extremes of xs in one pass.
// It returns ErrEmpty for an empty slice.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Median returns the median of xs without modifying it.
// It returns ErrEmpty for an empty slice.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks. The input is not modified.
// It returns ErrEmpty for an empty slice and an error for q outside [0,1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile fraction outside [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 {
	return a + (b-a)*t
}
