package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramSamplerReproducesDistribution(t *testing.T) {
	h := mustHistogram(t, 0, 1, 4)
	h.AddWeighted(0.125, 10) // bin 0
	h.AddWeighted(0.375, 20) // bin 1
	h.AddWeighted(0.625, 30) // bin 2
	h.AddWeighted(0.875, 40) // bin 3
	s := NewHistogramSampler(h)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		x := s.Sample(rng)
		idx := int(x * 4)
		if idx > 3 {
			idx = 3
		}
		counts[idx]++
	}
	want := []float64{0.1, 0.2, 0.3, 0.4}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-want[i]) > 0.015 {
			t.Errorf("bin %d fraction = %v, want ≈%v", i, frac, want[i])
		}
	}
}

func TestHistogramSamplerSeesLaterObservations(t *testing.T) {
	h := mustHistogram(t, 0, 10, 10)
	s := NewHistogramSampler(h)
	// After construction, shove all mass into bin 9.
	for i := 0; i < 100; i++ {
		h.Add(9.5)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if x := s.Sample(rng); x < 9 || x > 10 {
			t.Fatalf("sample %v outside the only populated bin [9,10]", x)
		}
	}
}

func TestHistogramSamplerDeterministic(t *testing.T) {
	h := mustHistogram(t, 0, 1, 8)
	rngFill := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		h.Add(rngFill.Float64())
	}
	s := NewHistogramSampler(h)
	a := s.SampleN(rand.New(rand.NewSource(99)), 20)
	b := s.SampleN(rand.New(rand.NewSource(99)), 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("samples diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEmpiricalSampler(t *testing.T) {
	vals := []float64{1, 2, 3}
	s := NewEmpiricalSampler(vals)
	rng := rand.New(rand.NewSource(11))
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		x := s.Sample(rng)
		if x != 1 && x != 2 && x != 3 {
			t.Fatalf("sample %v not in source set", x)
		}
		seen[x] = true
	}
	if len(seen) != 3 {
		t.Errorf("expected all 3 values to appear, saw %v", seen)
	}
	// Mutating the source after construction must not affect the sampler.
	vals[0] = 99
	for i := 0; i < 50; i++ {
		if x := s.Sample(rng); x == 99 {
			t.Fatal("sampler aliased caller's slice")
		}
	}
}

func TestEmpiricalSamplerEmpty(t *testing.T) {
	s := NewEmpiricalSampler(nil)
	if got := s.Sample(rand.New(rand.NewSource(1))); got != 0 {
		t.Errorf("empty empirical sample = %v, want 0", got)
	}
}

func TestUniformSampler(t *testing.T) {
	s := UniformSampler{Lo: -2, Hi: 4}
	rng := rand.New(rand.NewSource(8))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := s.Sample(rng)
		if x < -2 || x > 4 {
			t.Fatalf("sample %v outside [-2,4]", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Errorf("uniform mean = %v, want ≈1", mean)
	}
}
