package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRayleighWeightEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		d, c float64
		want float64
	}{
		{"zero distance", 0, 1, 0},
		{"negative distance", -1, 1, 0},
		{"zero scale", 1, 0, 0},
		{"negative scale", 1, -2, 0},
		{"nan distance", math.NaN(), 1, 0},
		{"nan scale", 1, math.NaN(), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := RayleighWeight(tt.d, tt.c); got != tt.want {
				t.Errorf("RayleighWeight(%v,%v) = %v, want %v", tt.d, tt.c, got, tt.want)
			}
		})
	}
}

func TestRayleighWeightKnownValues(t *testing.T) {
	// At d = c the weight peaks at c·e^(−1/2).
	c := 2.0
	want := c * math.Exp(-0.5)
	if got := RayleighWeight(c, c); !almostEqual(got, want, 1e-12) {
		t.Errorf("peak weight = %v, want %v", got, want)
	}
	// Far from the scale the weight decays towards zero.
	if got := RayleighWeight(100, 1); got > 1e-6 {
		t.Errorf("far weight = %v, want ≈0", got)
	}
}

func TestRayleighPeak(t *testing.T) {
	d, r := RayleighPeak(3)
	if d != 3 {
		t.Errorf("peak position = %v, want 3", d)
	}
	if !almostEqual(r, 3*math.Exp(-0.5), 1e-12) {
		t.Errorf("peak value = %v", r)
	}
	if d, r := RayleighPeak(0); d != 0 || r != 0 {
		t.Errorf("degenerate peak = %v,%v; want 0,0", d, r)
	}
}

// The central safety property from §3.2.2: the violation-range radius is
// strictly less than the distance to the nearest safe-state, so a known
// safe-state can never fall inside a violation-range derived from it.
func TestRayleighWeightBoundedByDistanceProperty(t *testing.T) {
	f := func(dRaw, cRaw uint32) bool {
		d := float64(dRaw)/1e6 + 1e-9
		c := float64(cRaw)/1e6 + 1e-9
		r := RayleighWeight(d, c)
		return r >= 0 && r < d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// The weight is unimodal: increasing on (0, c], decreasing on [c, ∞).
func TestRayleighWeightUnimodal(t *testing.T) {
	c := 1.7
	prev := 0.0
	for d := 0.01; d <= c; d += 0.01 {
		w := RayleighWeight(d, c)
		if w < prev-1e-12 {
			t.Fatalf("weight not increasing at d=%v", d)
		}
		prev = w
	}
	prev = RayleighWeight(c, c)
	for d := c; d <= 10*c; d += 0.05 {
		w := RayleighWeight(d, c)
		if w > prev+1e-12 {
			t.Fatalf("weight not decreasing at d=%v", d)
		}
		prev = w
	}
}

func TestRayleighPDFAndCDF(t *testing.T) {
	sigma := 1.5
	// CDF is the integral of the PDF: check via trapezoid rule.
	const n = 2000
	hi := 10 * sigma
	step := hi / n
	var integral float64
	for i := 0; i < n; i++ {
		x := (float64(i) + 0.5) * step
		integral += RayleighPDF(x, sigma) * step
	}
	if math.Abs(integral-1) > 1e-3 {
		t.Errorf("PDF integral = %v, want ≈1", integral)
	}
	if got := RayleighCDF(hi, sigma); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(far) = %v, want ≈1", got)
	}
	if RayleighCDF(0, sigma) != 0 {
		t.Error("CDF(0) should be 0")
	}
	if RayleighPDF(-1, sigma) != 0 || RayleighPDF(1, 0) != 0 {
		t.Error("PDF must be 0 for invalid inputs")
	}
	if RayleighCDF(-1, sigma) != 0 || RayleighCDF(1, -1) != 0 {
		t.Error("CDF must be 0 for invalid inputs")
	}
	// Median of Rayleigh is sigma·sqrt(2·ln2).
	median := sigma * math.Sqrt(2*math.Ln2)
	if got := RayleighCDF(median, sigma); !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("CDF(median) = %v, want 0.5", got)
	}
}
