package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// The violation-range radius of §3.2.2: zero at d=0, peaking at d=c,
// fading for distant safe states.
func ExampleRayleighWeight() {
	c := 1.0
	for _, d := range []float64{0.2, 1.0, 3.0} {
		fmt.Printf("d=%.1f R=%.3f\n", d, stats.RayleighWeight(d, c))
	}
	// Output:
	// d=0.2 R=0.196
	// d=1.0 R=0.607
	// d=3.0 R=0.033
}

// Inverse-transform sampling: draws reproduce the histogram's shape.
func ExampleHistogram_InverseCDF() {
	h, _ := stats.NewHistogram(0, 1, 4)
	h.AddWeighted(0.125, 3) // 75% of mass in the first bin
	h.AddWeighted(0.875, 1) // 25% in the last
	fmt.Printf("u=0.50 -> %.3f\n", h.InverseCDF(0.50))
	fmt.Printf("u=0.90 -> %.3f\n", h.InverseCDF(0.90))
	// Output:
	// u=0.50 -> 0.167
	// u=0.90 -> 0.900
}
