package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustHistogram(t *testing.T, lo, hi float64, bins int) *Histogram {
	t.Helper()
	h, err := NewHistogram(lo, hi, bins)
	if err != nil {
		t.Fatalf("NewHistogram(%v,%v,%d): %v", lo, hi, bins, err)
	}
	return h
}

func TestNewHistogramValidation(t *testing.T) {
	tests := []struct {
		name    string
		lo, hi  float64
		bins    int
		wantErr bool
	}{
		{"valid", 0, 1, 10, false},
		{"single bin", 0, 1, 1, false},
		{"zero bins", 0, 1, 0, true},
		{"negative bins", 0, 1, -3, true},
		{"empty range", 1, 1, 5, true},
		{"inverted range", 2, 1, 5, true},
		{"nan lo", math.NaN(), 1, 5, true},
		{"inf hi", 0, math.Inf(1), 5, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewHistogram(tt.lo, tt.hi, tt.bins)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestHistogramBinning(t *testing.T) {
	h := mustHistogram(t, 0, 10, 10)
	h.Add(0)    // bin 0
	h.Add(0.5)  // bin 0
	h.Add(1)    // bin 1
	h.Add(9.99) // bin 9
	h.Add(10)   // upper edge -> bin 9, not an outlier
	if got := h.Count(0); got != 2 {
		t.Errorf("bin 0 = %v, want 2", got)
	}
	if got := h.Count(1); got != 1 {
		t.Errorf("bin 1 = %v, want 1", got)
	}
	if got := h.Count(9); got != 2 {
		t.Errorf("bin 9 = %v, want 2", got)
	}
	if h.Outliers() != 0 {
		t.Errorf("outliers = %d, want 0", h.Outliers())
	}
	if h.Total() != 5 {
		t.Errorf("total = %v, want 5", h.Total())
	}
}

func TestHistogramOutlierClamping(t *testing.T) {
	h := mustHistogram(t, 0, 1, 4)
	h.Add(-5)         // clamps to bin 0
	h.Add(7)          // clamps to bin 3
	h.Add(math.NaN()) // dropped, counted as outlier
	if h.Outliers() != 3 {
		t.Errorf("outliers = %d, want 3", h.Outliers())
	}
	if h.Count(0) != 1 || h.Count(3) != 1 {
		t.Errorf("boundary bins = %v, %v; want 1, 1", h.Count(0), h.Count(3))
	}
	if h.Total() != 2 {
		t.Errorf("total = %v, want 2 (NaN must not add weight)", h.Total())
	}
}

func TestHistogramWeighted(t *testing.T) {
	h := mustHistogram(t, 0, 1, 2)
	h.AddWeighted(0.25, 3)
	h.AddWeighted(0.75, 1)
	h.AddWeighted(0.5, 0)  // zero weight ignored
	h.AddWeighted(0.5, -2) // negative weight ignored
	if h.Count(0) != 3 || h.Count(1) != 1 {
		t.Errorf("counts = %v,%v; want 3,1", h.Count(0), h.Count(1))
	}
	if h.Total() != 4 {
		t.Errorf("total = %v, want 4", h.Total())
	}
}

func TestHistogramPDFIntegratesToOne(t *testing.T) {
	h := mustHistogram(t, -2, 3, 7)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		h.Add(rng.Float64()*5 - 2)
	}
	pdf := h.PDF()
	var integral float64
	for _, p := range pdf {
		integral += p * h.BinWidth()
	}
	if !almostEqual(integral, 1, 1e-9) {
		t.Errorf("PDF integral = %v, want 1", integral)
	}
}

func TestHistogramEmptyPDFUniform(t *testing.T) {
	h := mustHistogram(t, 0, 2, 4)
	pdf := h.PDF()
	for i, p := range pdf {
		if !almostEqual(p, 0.5, 1e-12) {
			t.Errorf("empty PDF bin %d = %v, want 0.5", i, p)
		}
	}
}

func TestHistogramCDF(t *testing.T) {
	h := mustHistogram(t, 0, 4, 4)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	h.Add(3.5)
	cdf := h.CDF()
	want := []float64{0.25, 0.75, 0.75, 1}
	for i := range want {
		if !almostEqual(cdf[i], want[i], 1e-12) {
			t.Errorf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestHistogramEmptyCDFUniform(t *testing.T) {
	h := mustHistogram(t, 0, 1, 4)
	cdf := h.CDF()
	want := []float64{0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(cdf[i], want[i], 1e-12) {
			t.Errorf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestHistogramInverseCDF(t *testing.T) {
	h := mustHistogram(t, 0, 10, 10)
	// All mass in bin 4 ([4,5)).
	for i := 0; i < 100; i++ {
		h.Add(4.5)
	}
	for _, u := range []float64{0, 0.2, 0.5, 0.9, 1} {
		x := h.InverseCDF(u)
		if x < 4 || x > 5 {
			t.Errorf("InverseCDF(%v) = %v, want in [4,5]", u, x)
		}
	}
	// Out-of-range u is clamped, not panicking.
	if x := h.InverseCDF(-1); x < 4 || x > 5 {
		t.Errorf("InverseCDF(-1) = %v, want clamped into [4,5]", x)
	}
	if x := h.InverseCDF(2); x < 4 || x > 10 {
		t.Errorf("InverseCDF(2) = %v out of range", x)
	}
}

func TestHistogramInverseCDFRoundTrip(t *testing.T) {
	// Drawing many samples through the inverse CDF must reproduce the
	// source distribution (two-bin 80/20 split).
	h := mustHistogram(t, 0, 1, 2)
	h.AddWeighted(0.25, 80)
	h.AddWeighted(0.75, 20)
	rng := rand.New(rand.NewSource(42))
	var lowCount int
	const n = 10000
	for i := 0; i < n; i++ {
		if h.InverseCDF(rng.Float64()) < 0.5 {
			lowCount++
		}
	}
	frac := float64(lowCount) / n
	if math.Abs(frac-0.8) > 0.02 {
		t.Errorf("low-bin fraction = %v, want ≈0.8", frac)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := mustHistogram(t, 0, 1, 4)
	b := mustHistogram(t, 0, 1, 4)
	a.Add(0.1)
	b.Add(0.1)
	b.Add(0.9)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count(0) != 2 || a.Count(3) != 1 || a.Total() != 3 {
		t.Errorf("after merge: counts=%v total=%v", a.Counts(), a.Total())
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("Merge(nil) = %v, want nil", err)
	}
	c := mustHistogram(t, 0, 2, 4)
	if err := a.Merge(c); err == nil {
		t.Error("Merge with mismatched range should error")
	}
	d := mustHistogram(t, 0, 1, 8)
	if err := a.Merge(d); err == nil {
		t.Error("Merge with mismatched bins should error")
	}
}

func TestHistogramReset(t *testing.T) {
	h := mustHistogram(t, 0, 1, 4)
	h.Add(0.5)
	h.Add(-1)
	h.Reset()
	if h.Total() != 0 || h.Outliers() != 0 {
		t.Errorf("after reset: total=%v outliers=%d", h.Total(), h.Outliers())
	}
	for i := 0; i < h.Bins(); i++ {
		if h.Count(i) != 0 {
			t.Errorf("bin %d = %v after reset", i, h.Count(i))
		}
	}
}

func TestHistogramModeAndMean(t *testing.T) {
	h := mustHistogram(t, 0, 10, 10)
	if got := h.Mode(); got != 5 {
		t.Errorf("empty Mode = %v, want 5", got)
	}
	if got := h.Mean(); got != 5 {
		t.Errorf("empty Mean = %v, want 5", got)
	}
	for i := 0; i < 10; i++ {
		h.Add(7.3)
	}
	h.Add(2.2)
	if got := h.Mode(); !almostEqual(got, 7.5, 1e-12) {
		t.Errorf("Mode = %v, want 7.5", got)
	}
	wantMean := (10*7.5 + 2.5) / 11
	if got := h.Mean(); !almostEqual(got, wantMean, 1e-12) {
		t.Errorf("Mean = %v, want %v", got, wantMean)
	}
}

func TestHistogramSkewIndex(t *testing.T) {
	h := mustHistogram(t, 0, 10, 10)
	if h.SkewIndex() != 0 {
		t.Error("empty SkewIndex should be 0")
	}
	for i := 0; i < 9; i++ {
		h.Add(8)
	}
	h.Add(1)
	if got := h.SkewIndex(); !almostEqual(got, 0.8, 1e-12) {
		t.Errorf("SkewIndex = %v, want 0.8", got)
	}
}

// Property: CDF is monotone non-decreasing and ends at 1.
func TestHistogramCDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		h, err := NewHistogram(0, 1, 16)
		if err != nil {
			return false
		}
		for _, r := range raw {
			h.Add(float64(r) / 65535)
		}
		cdf := h.CDF()
		prev := 0.0
		for _, c := range cdf {
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return almostEqual(cdf[len(cdf)-1], 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: InverseCDF output always lies within [lo, hi].
func TestHistogramInverseCDFBoundsProperty(t *testing.T) {
	f := func(raw []uint16, uRaw uint16) bool {
		h, err := NewHistogram(-3, 7, 20)
		if err != nil {
			return false
		}
		for _, r := range raw {
			h.Add(float64(r)/6553.5 - 3)
		}
		u := float64(uRaw) / 65535
		x := h.InverseCDF(u)
		return x >= -3 && x <= 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
