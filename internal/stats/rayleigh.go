package stats

import "math"

// RayleighWeight implements the violation-range radius of §3.2.2:
//
//	R = d · exp(−d² / (2c²))
//
// where d is the distance between a violation-state and its nearest
// safe-state and c is the median of the coordinate range of the mapped
// space. The shape deliberately mirrors a Rayleigh density scaled by d:
//
//   - R → 0 as d → 0: with a known safe-state immediately adjacent, the
//     unexplored neighbourhood assumed dangerous shrinks to nothing;
//   - R grows for moderate d, peaking at d = c with R = c·e^(−1/2);
//   - R decays again for d ≫ c, so a far-away safe-state never inflates
//     the forbidden disc across the whole map.
//
// The returned radius always satisfies 0 ≤ R < d for d > 0 (the range can
// never swallow the nearest safe-state itself), which tests assert as a
// property.
func RayleighWeight(d, c float64) float64 {
	if d <= 0 || c <= 0 || math.IsNaN(d) || math.IsNaN(c) {
		return 0
	}
	return d * math.Exp(-(d*d)/(2*c*c))
}

// RayleighPeak returns the d value at which RayleighWeight(d, c) is
// maximal (d = c) and the maximum radius c·e^(−1/2).
func RayleighPeak(c float64) (d, r float64) {
	if c <= 0 {
		return 0, 0
	}
	return c, c * math.Exp(-0.5)
}

// RayleighPDF is the standard Rayleigh probability density with scale
// sigma, provided for completeness and for tests that validate the weight
// function against the textbook form.
func RayleighPDF(x, sigma float64) float64 {
	if x < 0 || sigma <= 0 {
		return 0
	}
	s2 := sigma * sigma
	return x / s2 * math.Exp(-(x*x)/(2*s2))
}

// RayleighCDF is the standard Rayleigh cumulative distribution with scale
// sigma.
func RayleighCDF(x, sigma float64) float64 {
	if x <= 0 || sigma <= 0 {
		return 0
	}
	return 1 - math.Exp(-(x*x)/(2*sigma*sigma))
}
