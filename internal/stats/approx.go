package stats

import "math"

// ApproxEqual reports whether a and b differ by at most eps in absolute
// terms, or by at most eps relative to the larger magnitude when both are
// large. It is the epsilon comparison stayawaylint's floatcmp analyzer
// requires in place of ==/!= on computed floats: after any arithmetic,
// exact equality tests a rounding-error lottery, not a mathematical
// property.
//
// NaN compares unequal to everything (including NaN); equal infinities
// compare equal. eps must be non-negative.
func ApproxEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //lint:stayaway-ignore floatcmp this is the epsilon helper itself: the exact fast path also covers equal infinities, which the difference below turns into NaN
		return true
	}
	// Past the fast path any remaining infinity differs from the other
	// operand by an infinite amount; without this the relative threshold
	// eps*|Inf| is itself +Inf and would absorb everything.
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= eps*scale
}
