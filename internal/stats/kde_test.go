package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSilvermanBandwidth(t *testing.T) {
	if got := SilvermanBandwidth(nil); got <= 0 {
		t.Errorf("bandwidth of nil = %v, want positive floor", got)
	}
	if got := SilvermanBandwidth([]float64{5}); got <= 0 {
		t.Errorf("bandwidth of singleton = %v, want positive floor", got)
	}
	if got := SilvermanBandwidth([]float64{2, 2, 2}); got <= 0 {
		t.Errorf("bandwidth of constant = %v, want positive floor", got)
	}
	// Known value: sd of {1..5} sample variance 2.5, sd≈1.5811, n=5.
	want := 1.06 * math.Sqrt(2.5) * math.Pow(5, -0.2)
	if got := SilvermanBandwidth([]float64{1, 2, 3, 4, 5}); !almostEqual(got, want, 1e-9) {
		t.Errorf("bandwidth = %v, want %v", got, want)
	}
}

func TestKDEEmptyEvaluatesZero(t *testing.T) {
	k := NewKDE(nil, 0)
	if got := k.Evaluate(0); got != 0 {
		t.Errorf("empty KDE at 0 = %v, want 0", got)
	}
}

func TestKDEPeaksAtData(t *testing.T) {
	k := NewKDE([]float64{0, 0, 0, 0, 10}, 0.5)
	if k.Evaluate(0) <= k.Evaluate(5) {
		t.Error("density at cluster should exceed density between clusters")
	}
	if k.Evaluate(10) <= k.Evaluate(5) {
		t.Error("density at lone sample should exceed density in the gap")
	}
	if k.Evaluate(0) <= k.Evaluate(10) {
		t.Error("density at 4-sample cluster should exceed lone sample")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	k := NewKDE(samples, 0)
	// Trapezoid integration over a wide range.
	const n = 4000
	lo, hi := -10.0, 10.0
	step := (hi - lo) / n
	var integral float64
	for i := 0; i <= n; i++ {
		x := lo + float64(i)*step
		w := step
		if i == 0 || i == n {
			w = step / 2
		}
		integral += k.Evaluate(x) * w
	}
	if math.Abs(integral-1) > 0.01 {
		t.Errorf("KDE integral = %v, want ≈1", integral)
	}
}

func TestKDEFromHistogram(t *testing.T) {
	h := mustHistogram(t, 0, 10, 10)
	for i := 0; i < 50; i++ {
		h.Add(2.5)
	}
	for i := 0; i < 10; i++ {
		h.Add(7.5)
	}
	k := NewKDEFromHistogram(h, 0)
	if k.Bandwidth() <= 0 {
		t.Fatalf("bandwidth = %v, want > 0", k.Bandwidth())
	}
	if k.Evaluate(2.5) <= k.Evaluate(7.5) {
		t.Error("heavier bin should have higher density")
	}
	if k.Evaluate(7.5) <= k.Evaluate(5.0)/10 {
		t.Error("lighter bin should still carry visible density")
	}
}

func TestKDEFromEmptyHistogram(t *testing.T) {
	h := mustHistogram(t, 0, 1, 4)
	k := NewKDEFromHistogram(h, 0)
	if got := k.Evaluate(0.5); got != 0 {
		t.Errorf("empty histogram KDE = %v, want 0", got)
	}
}

func TestKDEGrid(t *testing.T) {
	k := NewKDE([]float64{1, 2, 3}, 0.5)
	xs, ys := k.Grid(0, 4, 9)
	if len(xs) != 9 || len(ys) != 9 {
		t.Fatalf("grid lengths = %d,%d; want 9,9", len(xs), len(ys))
	}
	if xs[0] != 0 || xs[8] != 4 {
		t.Errorf("grid endpoints = %v,%v; want 0,4", xs[0], xs[8])
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Errorf("grid xs not increasing at %d", i)
		}
	}
	// Degenerate n is coerced to 2.
	xs, ys = k.Grid(0, 1, 0)
	if len(xs) != 2 || len(ys) != 2 {
		t.Errorf("degenerate grid lengths = %d,%d; want 2,2", len(xs), len(ys))
	}
}
