package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bin histogram over a closed range [Lo, Hi].
// It is the underlying measurement behind the per-execution-mode trajectory
// models (§3.2.3 of the paper): step lengths and absolute angles are
// accumulated into histograms whose smoothed PDFs drive the predictor.
//
// Values outside [Lo, Hi] are clamped into the boundary bins so that no
// observation is silently dropped; Outliers reports how many were clamped.
type Histogram struct {
	lo, hi   float64
	counts   []float64
	total    float64
	outliers int
}

// NewHistogram returns a histogram with bins equal-width bins spanning
// [lo, hi]. It returns an error when bins < 1 or the range is empty or
// non-finite.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin, got %d", bins)
	}
	if !(lo < hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(lo) || math.IsNaN(hi) {
		return nil, fmt.Errorf("stats: invalid histogram range [%v, %v]", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]float64, bins)}, nil
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Range returns the histogram's [lo, hi] range.
func (h *Histogram) Range() (lo, hi float64) { return h.lo, h.hi }

// Total returns the total accumulated weight.
func (h *Histogram) Total() float64 { return h.total }

// Outliers returns how many observations fell outside [lo, hi] and were
// clamped into a boundary bin.
func (h *Histogram) Outliers() int { return h.outliers }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.hi - h.lo) / float64(len(h.counts))
}

// binIndex maps x to a bin, clamping to the boundary bins.
func (h *Histogram) binIndex(x float64) (idx int, clamped bool) {
	if x < h.lo {
		return 0, true
	}
	if x >= h.hi {
		// The upper edge belongs to the last bin.
		if x > h.hi {
			return len(h.counts) - 1, true
		}
		return len(h.counts) - 1, false
	}
	i := int((x - h.lo) / h.BinWidth())
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i, false
}

// Add records one observation of x with weight 1. NaN values are counted as
// outliers and otherwise ignored.
func (h *Histogram) Add(x float64) { h.AddWeighted(x, 1) }

// AddWeighted records one observation of x with the given non-negative
// weight. NaN values are counted as outliers and otherwise ignored.
func (h *Histogram) AddWeighted(x, w float64) {
	if w <= 0 {
		return
	}
	if math.IsNaN(x) {
		h.outliers++
		return
	}
	i, clamped := h.binIndex(x)
	if clamped {
		h.outliers++
	}
	h.counts[i] += w
	h.total += w
}

// Count returns the accumulated weight of bin i.
func (h *Histogram) Count(i int) float64 { return h.counts[i] }

// Counts returns a copy of all bin weights.
func (h *Histogram) Counts() []float64 {
	out := make([]float64, len(h.counts))
	copy(out, h.counts)
	return out
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.BinWidth()
}

// PDF returns the normalized probability density per bin (integrating to 1
// over [lo, hi]). For an empty histogram it returns a uniform density, which
// matches the predictor's cold-start behaviour: with no observations every
// step is equally likely.
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.counts))
	w := h.BinWidth()
	if h.total == 0 {
		u := 1 / (h.hi - h.lo)
		for i := range out {
			out[i] = u
		}
		return out
	}
	for i, c := range h.counts {
		out[i] = c / (h.total * w)
	}
	return out
}

// CDF returns the cumulative distribution evaluated at the right edge of
// each bin. The final entry is always 1 (or 1 for the uniform cold-start
// distribution of an empty histogram).
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		for i := range out {
			out[i] = float64(i+1) / float64(len(out))
		}
		return out
	}
	var cum float64
	for i, c := range h.counts {
		cum += c
		out[i] = cum / h.total
	}
	// Guard against floating-point drift: the CDF must end exactly at 1.
	out[len(out)-1] = 1
	return out
}

// InverseCDF maps u in [0,1] to a value x such that CDF(x) ≈ u, using linear
// interpolation within the selected bin. This is the inverse-transform step
// used to draw future-state samples from the learned histograms (§3.2.3).
func (h *Histogram) InverseCDF(u float64) float64 {
	u = Clamp(u, 0, 1)
	cdf := h.CDF()
	w := h.BinWidth()
	prev := 0.0
	for i, c := range cdf {
		if c <= prev {
			// Empty bin: carries no probability mass, so it can never be
			// the inverse image of u — skip to the first bin with mass.
			continue
		}
		if u <= c {
			frac := (u - prev) / (c - prev)
			return h.lo + (float64(i)+frac)*w
		}
		prev = c
	}
	return h.hi
}

// Merge adds the contents of other into h. The ranges and bin counts must
// match exactly.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	//lint:stayaway-ignore floatcmp configuration-identity check: bounds round-trip exactly through construction and snapshots, and an epsilon would silently merge differently-binned histograms
	if h.lo != other.lo || h.hi != other.hi || len(h.counts) != len(other.counts) {
		return fmt.Errorf("stats: cannot merge histogram [%v,%v]/%d with [%v,%v]/%d",
			h.lo, h.hi, len(h.counts), other.lo, other.hi, len(other.counts))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.outliers += other.outliers
	return nil
}

// Reset clears all accumulated weight.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.outliers = 0
}

// Mode returns the center of the heaviest bin. Ties resolve to the lowest
// bin. An empty histogram returns the range midpoint.
func (h *Histogram) Mode() float64 {
	if h.total == 0 {
		return (h.lo + h.hi) / 2
	}
	best, bestC := 0, h.counts[0]
	for i, c := range h.counts[1:] {
		if c > bestC {
			best, bestC = i+1, c
		}
	}
	return h.BinCenter(best)
}

// Mean returns the weighted mean of bin centers, or the range midpoint for
// an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return (h.lo + h.hi) / 2
	}
	var s float64
	for i, c := range h.counts {
		s += h.BinCenter(i) * c
	}
	return s / h.total
}

// SkewIndex returns a crude asymmetry measure in [-1, 1]: the normalized
// difference between weight above and below the range midpoint. The paper
// uses skew in the step-length/angle distributions as evidence that
// trajectories are biased rather than uniformly random; this index lets
// tests and the walk classifier assert that bias cheaply.
func (h *Histogram) SkewIndex() float64 {
	if h.total == 0 {
		return 0
	}
	mid := (h.lo + h.hi) / 2
	var above, below float64
	for i, c := range h.counts {
		if h.BinCenter(i) >= mid {
			above += c
		} else {
			below += c
		}
	}
	return (above - below) / h.total
}
