package stats

import "math"

// Circular statistics for trajectory angles. Absolute step angles live on
// the circle [−π, π); naive linear statistics break at the wrap-around
// (e.g. the "mean" of −179° and +179° must be ±180°, not 0°).

// NormalizeAngle wraps an angle in radians into [−π, π).
func NormalizeAngle(a float64) float64 {
	if math.IsNaN(a) || math.IsInf(a, 0) {
		return 0
	}
	a = math.Mod(a, 2*math.Pi)
	if a < -math.Pi {
		a += 2 * math.Pi
	} else if a >= math.Pi {
		a -= 2 * math.Pi
	}
	return a
}

// AngleDiff returns the signed smallest rotation from a to b, in (−π, π].
func AngleDiff(a, b float64) float64 {
	d := NormalizeAngle(b - a)
	//lint:stayaway-ignore floatcmp exact IEEE boundary canonicalization: NormalizeAngle yields precisely -Pi at the branch cut, and only that one bit pattern must map to +Pi
	if d == -math.Pi {
		return math.Pi
	}
	return d
}

// CircularMean returns the circular mean of angles in radians, in [−π, π).
// It returns ErrEmpty for an empty slice and an error when the resultant
// length is ~0 (uniformly spread angles have no meaningful mean).
func CircularMean(angles []float64) (float64, error) {
	if len(angles) == 0 {
		return 0, ErrEmpty
	}
	var sx, sy float64
	for _, a := range angles {
		sx += math.Cos(a)
		sy += math.Sin(a)
	}
	r := math.Hypot(sx, sy) / float64(len(angles))
	if r < 1e-12 {
		return 0, ErrEmpty
	}
	return NormalizeAngle(math.Atan2(sy, sx)), nil
}

// CircularVariance returns 1 − R̄ where R̄ is the mean resultant length:
// 0 means all angles identical, 1 means uniformly spread. For an empty
// slice it returns 1 (maximal uncertainty).
func CircularVariance(angles []float64) float64 {
	if len(angles) == 0 {
		return 1
	}
	var sx, sy float64
	for _, a := range angles {
		sx += math.Cos(a)
		sy += math.Sin(a)
	}
	r := math.Hypot(sx, sy) / float64(len(angles))
	return 1 - r
}

// MeanResultantLength returns R̄ in [0,1]: the concentration of the angle
// set. The walk classifier uses this to separate directed (Soplex-like
// linear) trajectories from oscillating co-located ones.
func MeanResultantLength(angles []float64) float64 {
	return 1 - CircularVariance(angles)
}
