package stats

import (
	"math"
)

// KDE is a one-dimensional Gaussian kernel density estimator. The paper
// plots "the smoothed version of the histogram using kernel density
// estimation" (Fig 5); KDE provides the same smoothing for figure output
// and for the walk classifier.
type KDE struct {
	samples   []float64
	weights   []float64
	bandwidth float64
	total     float64
}

// NewKDE builds a KDE over samples with Silverman's rule-of-thumb
// bandwidth. Passing an explicit bandwidth > 0 overrides the rule.
// A nil or empty sample set yields an estimator that evaluates to zero
// everywhere.
func NewKDE(samples []float64, bandwidth float64) *KDE {
	k := &KDE{
		samples: append([]float64(nil), samples...),
	}
	k.weights = make([]float64, len(k.samples))
	for i := range k.weights {
		k.weights[i] = 1
	}
	k.total = float64(len(k.samples))
	if bandwidth > 0 {
		k.bandwidth = bandwidth
	} else {
		k.bandwidth = SilvermanBandwidth(k.samples)
	}
	return k
}

// NewKDEFromHistogram builds a KDE using bin centers weighted by bin counts.
// This is how the runtime smooths its accumulated step/angle histograms
// without retaining every raw observation.
func NewKDEFromHistogram(h *Histogram, bandwidth float64) *KDE {
	k := &KDE{}
	for i := 0; i < h.Bins(); i++ {
		c := h.Count(i)
		if c <= 0 {
			continue
		}
		k.samples = append(k.samples, h.BinCenter(i))
		k.weights = append(k.weights, c)
		k.total += c
	}
	if bandwidth > 0 {
		k.bandwidth = bandwidth
	} else {
		// Use twice the bin width as a reasonable default smoothing scale
		// for binned data; Silverman on bin centers underestimates spread.
		k.bandwidth = 2 * h.BinWidth()
	}
	return k
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth
// 1.06·σ·n^(−1/5), with a small positive floor so degenerate inputs
// (constant samples) still produce a usable estimator.
func SilvermanBandwidth(samples []float64) float64 {
	const floor = 1e-3
	if len(samples) < 2 {
		return floor
	}
	sd := math.Sqrt(SampleVariance(samples))
	bw := 1.06 * sd * math.Pow(float64(len(samples)), -0.2)
	if bw < floor {
		return floor
	}
	return bw
}

// Bandwidth returns the estimator's kernel bandwidth.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// Evaluate returns the estimated density at x.
func (k *KDE) Evaluate(x float64) float64 {
	if k.total == 0 {
		return 0
	}
	inv := 1 / (k.bandwidth * math.Sqrt(2*math.Pi))
	var s float64
	for i, xi := range k.samples {
		u := (x - xi) / k.bandwidth
		s += k.weights[i] * inv * math.Exp(-0.5*u*u)
	}
	return s / k.total
}

// Grid evaluates the density at n evenly spaced points across [lo, hi] and
// returns the x positions and densities. n < 2 is treated as 2.
func (k *KDE) Grid(lo, hi float64, n int) (xs, ys []float64) {
	if n < 2 {
		n = 2
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		xs[i] = lo + float64(i)*step
		ys[i] = k.Evaluate(xs[i])
	}
	return xs, ys
}
