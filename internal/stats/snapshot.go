package stats

import (
	"fmt"
	"math"
)

// HistogramSnapshot is the serializable state of a Histogram, used by the
// crash-recovery checkpoints to persist the per-mode trajectory models.
type HistogramSnapshot struct {
	Lo       float64   `json:"lo"`
	Hi       float64   `json:"hi"`
	Counts   []float64 `json:"counts"`
	Total    float64   `json:"total"`
	Outliers int       `json:"outliers"`
}

// Snapshot captures the histogram's full state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Lo:       h.lo,
		Hi:       h.hi,
		Counts:   h.Counts(),
		Total:    h.total,
		Outliers: h.outliers,
	}
}

// Validate checks the snapshot's internal consistency: a sane range,
// finite non-negative bin weights, and a total matching their sum.
func (s HistogramSnapshot) Validate() error {
	if !(s.Lo < s.Hi) || math.IsNaN(s.Lo) || math.IsInf(s.Lo, 0) || math.IsNaN(s.Hi) || math.IsInf(s.Hi, 0) {
		return fmt.Errorf("stats: snapshot range [%v, %v] invalid", s.Lo, s.Hi)
	}
	if len(s.Counts) < 1 {
		return fmt.Errorf("stats: snapshot has no bins")
	}
	if s.Outliers < 0 {
		return fmt.Errorf("stats: snapshot outliers %d negative", s.Outliers)
	}
	var sum float64
	for i, c := range s.Counts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("stats: snapshot bin %d weight %v invalid", i, c)
		}
		sum += c
	}
	// Tolerate accumulated floating-point drift but not structural skew.
	if math.Abs(sum-s.Total) > 1e-6*(1+math.Abs(sum)) {
		return fmt.Errorf("stats: snapshot total %v, bins sum to %v", s.Total, sum)
	}
	return nil
}

// HistogramFromSnapshot reconstructs a histogram. Invalid snapshots are
// rejected, never panicked on — checkpoint files come from disk and may
// be corrupt or adversarial.
func HistogramFromSnapshot(s HistogramSnapshot) (*Histogram, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	h, err := NewHistogram(s.Lo, s.Hi, len(s.Counts))
	if err != nil {
		return nil, err
	}
	copy(h.counts, s.Counts)
	h.total = s.Total
	h.outliers = s.Outliers
	return h, nil
}

// RestoreInto replaces h's contents with the snapshot's. The snapshot
// must match h's range and bin count exactly — a checkpoint taken under a
// different model configuration is incompatible, not mergeable.
func (h *Histogram) RestoreInto(s HistogramSnapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	//lint:stayaway-ignore floatcmp configuration-identity check: bounds round-trip exactly through the JSON checkpoint, and an epsilon would silently restore a mismatched model
	if s.Lo != h.lo || s.Hi != h.hi || len(s.Counts) != len(h.counts) {
		return fmt.Errorf("stats: snapshot [%v,%v]/%d incompatible with histogram [%v,%v]/%d",
			s.Lo, s.Hi, len(s.Counts), h.lo, h.hi, len(h.counts))
	}
	copy(h.counts, s.Counts)
	h.total = s.Total
	h.outliers = s.Outliers
	return nil
}
