package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalizeAngle(t *testing.T) {
	tests := []struct {
		name string
		in   float64
		want float64
	}{
		{"zero", 0, 0},
		{"pi wraps to -pi", math.Pi, -math.Pi},
		{"neg pi stays", -math.Pi, -math.Pi},
		{"2pi", 2 * math.Pi, 0},
		{"3pi", 3 * math.Pi, -math.Pi},
		{"small", 0.5, 0.5},
		{"negative small", -0.5, -0.5},
		{"large positive", 7 * math.Pi / 2, -math.Pi / 2},
		{"nan", math.NaN(), 0},
		{"inf", math.Inf(1), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := NormalizeAngle(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestNormalizeAngleRangeProperty(t *testing.T) {
	f := func(raw int32) bool {
		a := float64(raw) / 1e4
		n := NormalizeAngle(a)
		return n >= -math.Pi && n < math.Pi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		want float64
	}{
		{"same", 1, 1, 0},
		{"quarter turn", 0, math.Pi / 2, math.Pi / 2},
		{"wrap positive", 3, -3, 2*math.Pi - 6},
		{"opposite", 0, math.Pi, math.Pi},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AngleDiff(tt.a, tt.b); !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("AngleDiff(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCircularMean(t *testing.T) {
	// Mean of angles straddling the wrap-around must land on ±π, where the
	// linear mean would wrongly give 0.
	got, err := CircularMean([]float64{math.Pi - 0.1, -math.Pi + 0.1})
	if err != nil {
		t.Fatalf("CircularMean error: %v", err)
	}
	if math.Abs(math.Abs(got)-math.Pi) > 1e-9 {
		t.Errorf("wrap-around mean = %v, want ±π", got)
	}

	got, err = CircularMean([]float64{0.1, 0.2, 0.3})
	if err != nil || !almostEqual(got, 0.2, 1e-9) {
		t.Errorf("simple mean = %v, %v; want 0.2", got, err)
	}

	if _, err := CircularMean(nil); err != ErrEmpty {
		t.Errorf("empty mean err = %v, want ErrEmpty", err)
	}
	// Uniformly opposed angles have no meaningful mean.
	if _, err := CircularMean([]float64{0, math.Pi / 2, -math.Pi, -math.Pi / 2}); err == nil {
		t.Error("balanced angles should report no meaningful mean")
	}
}

func TestCircularVariance(t *testing.T) {
	if got := CircularVariance(nil); got != 1 {
		t.Errorf("empty variance = %v, want 1", got)
	}
	if got := CircularVariance([]float64{0.7, 0.7, 0.7}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("constant variance = %v, want 0", got)
	}
	spread := CircularVariance([]float64{0, math.Pi / 2, -math.Pi, -math.Pi / 2})
	if !almostEqual(spread, 1, 1e-9) {
		t.Errorf("uniform spread variance = %v, want 1", spread)
	}
}

func TestMeanResultantLength(t *testing.T) {
	concentrated := MeanResultantLength([]float64{0.1, 0.12, 0.09})
	dispersed := MeanResultantLength([]float64{0, 2, -2, 3})
	if concentrated <= dispersed {
		t.Errorf("concentrated R̄ (%v) should exceed dispersed R̄ (%v)", concentrated, dispersed)
	}
	if concentrated < 0.99 {
		t.Errorf("concentrated R̄ = %v, want ≈1", concentrated)
	}
}

func TestCircularVarianceBoundsProperty(t *testing.T) {
	f := func(raws []int16) bool {
		angles := make([]float64, len(raws))
		for i, r := range raws {
			angles[i] = float64(r) / 1e4
		}
		v := CircularVariance(angles)
		return v >= -1e-12 && v <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
