package stats

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		eps  float64
		want bool
	}{
		{"exact", 1.5, 1.5, 0, true},
		{"within absolute eps", 1.0, 1.0 + 1e-12, 1e-9, true},
		{"outside eps", 1.0, 1.1, 1e-9, false},
		{"relative at large magnitude", 1e15, 1e15 * (1 + 1e-12), 1e-9, true},
		{"zero vs tiny", 0, 1e-12, 1e-9, true},
		{"nan left", math.NaN(), 1, 1e-9, false},
		{"nan both", math.NaN(), math.NaN(), 1e-9, false},
		{"equal infinities", math.Inf(1), math.Inf(1), 1e-9, true},
		{"opposite infinities", math.Inf(1), math.Inf(-1), 1e-9, false},
		{"sum of tenths", 0.1 + 0.2, 0.3, 1e-12, true},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.eps); got != c.want {
			t.Errorf("%s: ApproxEqual(%v, %v, %v) = %v, want %v", c.name, c.a, c.b, c.eps, got, c.want)
		}
	}
}
