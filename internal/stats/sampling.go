package stats

import (
	"math/rand"
)

// Sampler draws values from some one-dimensional distribution using the
// caller-supplied random source. All Stay-Away samplers are deterministic
// given the *rand.Rand: the predictor's "5 samples to model uncertainty"
// (§3.2.3) must be reproducible for experiments and templates.
type Sampler interface {
	Sample(rng *rand.Rand) float64
}

// HistogramSampler draws from a histogram via the inverse-transform method:
// a uniform u in [0,1) is pushed through the histogram's inverse CDF. This
// is exactly the mechanism the paper describes for generating candidate
// future states from the learned step/angle distributions.
type HistogramSampler struct {
	h *Histogram
}

var _ Sampler = (*HistogramSampler)(nil)

// NewHistogramSampler wraps h. The sampler reads h lazily, so observations
// added to h after construction are reflected in subsequent draws.
func NewHistogramSampler(h *Histogram) *HistogramSampler {
	return &HistogramSampler{h: h}
}

// Sample draws one value.
func (s *HistogramSampler) Sample(rng *rand.Rand) float64 {
	return s.h.InverseCDF(rng.Float64())
}

// SampleN draws n values into a fresh slice.
func (s *HistogramSampler) SampleN(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// EmpiricalSampler resamples uniformly from a fixed set of observed values
// (a bootstrap draw). It is the fallback trajectory model when too few
// observations exist to justify a histogram.
type EmpiricalSampler struct {
	values []float64
}

var _ Sampler = (*EmpiricalSampler)(nil)

// NewEmpiricalSampler copies values. An empty set samples 0.
func NewEmpiricalSampler(values []float64) *EmpiricalSampler {
	return &EmpiricalSampler{values: append([]float64(nil), values...)}
}

// Sample draws one of the stored values uniformly at random.
func (s *EmpiricalSampler) Sample(rng *rand.Rand) float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.values[rng.Intn(len(s.values))]
}

// UniformSampler draws uniformly from [Lo, Hi]. It models the
// maximum-uncertainty cold start before any trajectory has been observed.
type UniformSampler struct {
	Lo, Hi float64
}

var _ Sampler = UniformSampler{}

// Sample draws one value uniformly from [Lo, Hi].
func (s UniformSampler) Sample(rng *rand.Rand) float64 {
	return s.Lo + rng.Float64()*(s.Hi-s.Lo)
}
