package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSum(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3.5}, 3.5},
		{"mixed signs", []float64{1, -2, 3, -4}, -2},
		{"zeros", []float64{0, 0, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Sum(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Sum(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, -3}, -2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVariance(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 0},
		{"constant", []float64{2, 2, 2, 2}, 0},
		{"simple", []float64{1, 2, 3, 4, 5}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Variance(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Variance(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestSampleVariance(t *testing.T) {
	// Sample variance of {1,2,3,4,5} is 2.5.
	got := SampleVariance([]float64{1, 2, 3, 4, 5})
	if !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("SampleVariance = %v, want 2.5", got)
	}
	if SampleVariance([]float64{1}) != 0 {
		t.Error("SampleVariance of single element should be 0")
	}
}

func TestStdDev(t *testing.T) {
	got := StdDev([]float64{1, 2, 3, 4, 5})
	if !almostEqual(got, math.Sqrt(2), 1e-12) {
		t.Errorf("StdDev = %v, want sqrt(2)", got)
	}
}

func TestMinMaxFunctions(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	lo, err := Min(xs)
	if err != nil || lo != -9 {
		t.Errorf("Min = %v, %v; want -9, nil", lo, err)
	}
	hi, err := Max(xs)
	if err != nil || hi != 6 {
		t.Errorf("Max = %v, %v; want 6, nil", hi, err)
	}
	l2, h2, err := MinMax(xs)
	if err != nil || l2 != -9 || h2 != 6 {
		t.Errorf("MinMax = %v, %v, %v; want -9, 6, nil", l2, h2, err)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"single", []float64{9}, 9},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Median(tt.in)
			if err != nil {
				t.Fatalf("Median error: %v", err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Median(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Errorf("Median(nil) err = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{0.25, 20},
		{0.5, 30},
		{0.75, 40},
		{1, 50},
		{0.1, 14},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v) error: %v", tt.q, err)
		}
		if !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("Quantile(-0.1) should error")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("Quantile(1.1) should error")
	}
	if _, err := Quantile(xs, math.NaN()); err == nil {
		t.Error("Quantile(NaN) should error")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(0, 10, 0.5); got != 5 {
		t.Errorf("Lerp = %v, want 5", got)
	}
	if got := Lerp(2, 2, 0.7); got != 2 {
		t.Errorf("Lerp = %v, want 2", got)
	}
}

// Property: the mean always lies within [min, max] of its inputs.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		lo, hi, _ := MinMax(clean)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		va, err1 := Quantile(clean, qa)
		vb, err2 := Quantile(clean, qb)
		return err1 == nil && err2 == nil && va <= vb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is non-negative and invariant under translation.
func TestVarianceProperties(t *testing.T) {
	f := func(xs []float64, shiftRaw int16) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		v := Variance(clean)
		if v < 0 {
			return false
		}
		shift := float64(shiftRaw)
		shifted := make([]float64, len(clean))
		for i, x := range clean {
			shifted[i] = x + shift
		}
		return almostEqual(Variance(shifted), v, 1e-3+v*1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
