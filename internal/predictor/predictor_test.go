package predictor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mds"
	"repro/internal/statespace"
	"repro/internal/trajectory"
)

func newTestPredictor(t *testing.T, cfg Config) (*Predictor, *trajectory.ModeModels) {
	t.Helper()
	models, err := trajectory.NewModeModels(trajectory.DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cfg, models, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return p, models
}

func TestNewValidation(t *testing.T) {
	models, err := trajectory.NewModeModels(trajectory.DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := New(Config{Samples: 0, MajorityFraction: 0.5}, models, rng); err == nil {
		t.Error("zero samples should error")
	}
	if _, err := New(Config{Samples: 5, MajorityFraction: 0}, models, rng); err == nil {
		t.Error("zero majority should error")
	}
	if _, err := New(Config{Samples: 5, MajorityFraction: 1.5}, models, rng); err == nil {
		t.Error("majority > 1 should error")
	}
	if _, err := New(DefaultConfig(), nil, rng); err == nil {
		t.Error("nil models should error")
	}
	if _, err := New(DefaultConfig(), models, nil); err == nil {
		t.Error("nil RNG should error")
	}
}

func TestPredictNilSpace(t *testing.T) {
	p, _ := newTestPredictor(t, DefaultConfig())
	if _, err := p.Predict(nil, trajectory.ModeColocated, mds.Coord{}); err == nil {
		t.Error("nil space should error")
	}
}

func TestPredictNoViolationsLearnedYet(t *testing.T) {
	p, models := newTestPredictor(t, DefaultConfig())
	for i := 0; i < 20; i++ {
		if err := models.Observe(trajectory.ModeColocated, trajectory.Step{Distance: 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	space := statespace.NewSpace()
	space.Add(mds.Coord{}, nil, 0)
	d, err := p.Predict(space, trajectory.ModeColocated, mds.Coord{})
	if err != nil {
		t.Fatal(err)
	}
	if d.WillViolate || d.Hits != 0 || len(d.Candidates) != 0 {
		t.Errorf("decision without learned violations = %+v", d)
	}
}

// buildViolationSpace returns a space with safe states on the left and a
// violation state at (1, 0), with pinned extent so ranges are meaningful.
func buildViolationSpace(t *testing.T) *statespace.Space {
	t.Helper()
	s := statespace.NewSpace()
	s.Add(mds.Coord{X: -1, Y: -1}, nil, 0)
	s.Add(mds.Coord{X: -1, Y: 1}, nil, 0)
	s.Add(mds.Coord{X: 0, Y: 0}, nil, 0)
	v := s.Add(mds.Coord{X: 1, Y: 0}, nil, 0)
	if err := s.MarkViolation(v); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPredictMovingTowardViolation(t *testing.T) {
	p, models := newTestPredictor(t, DefaultConfig())
	// Trajectory: consistent eastward steps of 0.5.
	for i := 0; i < 30; i++ {
		if err := models.Observe(trajectory.ModeColocated, trajectory.Step{Distance: 0.5, Angle: 0}); err != nil {
			t.Fatal(err)
		}
	}
	space := buildViolationSpace(t)
	// Current position 0.5 east of origin: the next eastward step lands at
	// (1, 0), the violation state.
	d, err := p.Predict(space, trajectory.ModeColocated, mds.Coord{X: 0.5, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !d.WillViolate {
		t.Errorf("expected violation prediction: %+v", d)
	}
	if d.Disc.StateID == 0 && d.Disc.Radius == 0 {
		t.Error("decision should carry the offending disc")
	}
	if len(d.Candidates) != 5 {
		t.Errorf("candidates = %d, want 5", len(d.Candidates))
	}
}

func TestPredictMovingAwayFromViolation(t *testing.T) {
	p, models := newTestPredictor(t, DefaultConfig())
	// Trajectory: consistent westward steps.
	for i := 0; i < 30; i++ {
		if err := models.Observe(trajectory.ModeColocated, trajectory.Step{Distance: 0.5, Angle: -math.Pi}); err != nil {
			t.Fatal(err)
		}
	}
	space := buildViolationSpace(t)
	d, err := p.Predict(space, trajectory.ModeColocated, mds.Coord{X: 0.5, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.WillViolate {
		t.Errorf("moving away should not predict violation: %+v", d)
	}
}

func TestPredictStationaryFarFromViolation(t *testing.T) {
	p, models := newTestPredictor(t, DefaultConfig())
	for i := 0; i < 30; i++ {
		if err := models.Observe(trajectory.ModeSensitiveOnly, trajectory.Step{}); err != nil {
			t.Fatal(err)
		}
	}
	space := buildViolationSpace(t)
	d, err := p.Predict(space, trajectory.ModeSensitiveOnly, mds.Coord{X: -1, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.WillViolate {
		t.Errorf("stationary far state should be safe: %+v", d)
	}
}

func TestPredictMajorityThreshold(t *testing.T) {
	// With MajorityFraction=1.0 every candidate must hit; a mixed
	// trajectory should then not trigger.
	cfg := DefaultConfig()
	cfg.MajorityFraction = 1.0
	p, models := newTestPredictor(t, cfg)
	// Half the steps head east (toward violation), half west.
	for i := 0; i < 40; i++ {
		angle := 0.0
		if i%2 == 1 {
			angle = -math.Pi
		}
		if err := models.Observe(trajectory.ModeColocated, trajectory.Step{Distance: 0.5, Angle: angle}); err != nil {
			t.Fatal(err)
		}
	}
	space := buildViolationSpace(t)
	d, err := p.Predict(space, trajectory.ModeColocated, mds.Coord{X: 0.5, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.WillViolate && d.Hits < len(d.Candidates) {
		t.Errorf("unanimity config triggered on %d/%d hits", d.Hits, len(d.Candidates))
	}
}

func TestPredictUsesModeSpecificModel(t *testing.T) {
	p, models := newTestPredictor(t, DefaultConfig())
	// Co-located mode heads east (toward the violation); sensitive-only
	// mode is stationary. Prediction under sensitive-only must be safe
	// even though co-located data would predict violation.
	for i := 0; i < 30; i++ {
		if err := models.Observe(trajectory.ModeColocated, trajectory.Step{Distance: 0.5, Angle: 0}); err != nil {
			t.Fatal(err)
		}
		if err := models.Observe(trajectory.ModeSensitiveOnly, trajectory.Step{}); err != nil {
			t.Fatal(err)
		}
	}
	// Build a space whose violation-range is tight: a safe state sits only
	// 0.1 away from the violation, so the Rayleigh radius shrinks to ≈0.1
	// and a stationary state at distance 0.5 is safely outside it.
	space := statespace.NewSpace()
	space.Add(mds.Coord{X: -1, Y: -1}, nil, 0)
	space.Add(mds.Coord{X: -1, Y: 1}, nil, 0)
	space.Add(mds.Coord{X: 0.9, Y: 0}, nil, 0)
	v := space.Add(mds.Coord{X: 1, Y: 0}, nil, 0)
	if err := space.MarkViolation(v); err != nil {
		t.Fatal(err)
	}
	cur := mds.Coord{X: 0.5, Y: 0}
	dCo, err := p.Predict(space, trajectory.ModeColocated, cur)
	if err != nil {
		t.Fatal(err)
	}
	dSens, err := p.Predict(space, trajectory.ModeSensitiveOnly, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !dCo.WillViolate {
		t.Errorf("co-located should predict violation: %+v", dCo)
	}
	if dSens.WillViolate {
		t.Errorf("sensitive-only should be safe: %+v", dSens)
	}
}

func TestPredictInvalidMode(t *testing.T) {
	p, _ := newTestPredictor(t, DefaultConfig())
	space := buildViolationSpace(t)
	if _, err := p.Predict(space, trajectory.Mode(42), mds.Coord{}); err == nil {
		t.Error("invalid mode should error")
	}
}
