package predictor

// Tracker accumulates prediction-vs-outcome counts so experiments can
// report the accuracy figures of §3.2.3 ("more than 90% accuracy on
// average") and the sample-count ablation.
type Tracker struct {
	tp, fp, tn, fn int
}

// Record logs one (predicted, actual) pair, where predicted is the
// predictor's violation verdict for a period and actual is whether a
// violation in fact materialized.
func (t *Tracker) Record(predicted, actual bool) {
	switch {
	case predicted && actual:
		t.tp++
	case predicted && !actual:
		t.fp++
	case !predicted && actual:
		t.fn++
	default:
		t.tn++
	}
}

// Total returns the number of recorded periods.
func (t *Tracker) Total() int { return t.tp + t.fp + t.tn + t.fn }

// Accuracy returns (TP+TN)/total, or 0 with no data.
func (t *Tracker) Accuracy() float64 {
	n := t.Total()
	if n == 0 {
		return 0
	}
	return float64(t.tp+t.tn) / float64(n)
}

// Precision returns TP/(TP+FP), or 0 when no positive prediction was made.
func (t *Tracker) Precision() float64 {
	if t.tp+t.fp == 0 {
		return 0
	}
	return float64(t.tp) / float64(t.tp+t.fp)
}

// Recall returns TP/(TP+FN), or 0 when no violation ever materialized.
func (t *Tracker) Recall() float64 {
	if t.tp+t.fn == 0 {
		return 0
	}
	return float64(t.tp) / float64(t.tp+t.fn)
}

// Counts returns the raw confusion-matrix cells (tp, fp, tn, fn).
func (t *Tracker) Counts() (tp, fp, tn, fn int) {
	return t.tp, t.fp, t.tn, t.fn
}
