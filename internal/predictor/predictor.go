// Package predictor combines the state space with the per-mode trajectory
// models to answer Stay-Away's per-period question (§3.2): is the execution
// progressing toward a QoS violation? It generates a handful of candidate
// future states by inverse-transform sampling (5 in the paper) and votes
// them against the current violation-ranges: "whenever a majority of the
// generated sample set fall within a violation range, Stay-Away takes an
// action to prevent degradation."
package predictor

import (
	"fmt"
	"math/rand"

	"repro/internal/mds"
	"repro/internal/statespace"
	"repro/internal/trajectory"
)

// Config tunes the predictor.
type Config struct {
	// Samples is how many candidate future states are drawn per period.
	// The paper uses 5: "with 5 samples to model uncertainty, we are able
	// to achieve more than 90% accuracy on average".
	Samples int
	// MajorityFraction is the fraction of candidates that must land inside
	// a violation-range to predict a violation. 0.5 reproduces the paper's
	// majority vote.
	MajorityFraction float64
}

// DefaultConfig returns the paper's settings: 5 samples, majority vote.
func DefaultConfig() Config {
	return Config{Samples: 5, MajorityFraction: 0.5}
}

func (c Config) validate() error {
	if c.Samples < 1 {
		return fmt.Errorf("predictor: Samples must be positive, got %d", c.Samples)
	}
	if c.MajorityFraction <= 0 || c.MajorityFraction > 1 {
		return fmt.Errorf("predictor: MajorityFraction must be in (0,1], got %v", c.MajorityFraction)
	}
	return nil
}

// Decision is the outcome of one prediction period.
type Decision struct {
	// Mode is the execution mode the prediction was made under.
	Mode trajectory.Mode
	// Candidates are the sampled future positions.
	Candidates []mds.Coord
	// Hits counts candidates inside some violation-range.
	Hits int
	// WillViolate is the majority verdict.
	WillViolate bool
	// Disc is the violation-range hit by the first offending candidate
	// (zero value when WillViolate is false).
	Disc statespace.Disc
}

// Predictor draws future states and votes them against violation ranges.
type Predictor struct {
	cfg    Config
	models *trajectory.ModeModels
	rng    *rand.Rand
}

// New returns a predictor using the given per-mode trajectory models and
// random source.
func New(cfg Config, models *trajectory.ModeModels, rng *rand.Rand) (*Predictor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if models == nil {
		return nil, fmt.Errorf("predictor: nil trajectory models")
	}
	if rng == nil {
		return nil, fmt.Errorf("predictor: nil RNG")
	}
	return &Predictor{cfg: cfg, models: models, rng: rng}, nil
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Predict evaluates the current period: from position cur under the given
// execution mode, sample candidate next states and test them against the
// space's violation-ranges.
//
// Prediction is skipped (no violation) when the space has no
// violation-states yet — with nothing learned, throttling would be the
// "overly aggressive" extreme of §3.2's exploration/prevention trade-off.
func (p *Predictor) Predict(space *statespace.Space, mode trajectory.Mode, cur mds.Coord) (Decision, error) {
	d := Decision{Mode: mode}
	if space == nil {
		return d, fmt.Errorf("predictor: nil space")
	}
	if !space.HasViolations() {
		return d, nil
	}
	candidates, err := p.models.PredictFrom(mode, cur, p.rng, p.cfg.Samples)
	if err != nil {
		return d, err
	}
	d.Candidates = candidates
	discs := space.ViolationRanges()
	for _, c := range candidates {
		for _, disc := range discs {
			if disc.Contains(c) {
				d.Hits++
				if d.Hits == 1 {
					d.Disc = disc
				}
				break
			}
		}
	}
	need := int(float64(len(candidates))*p.cfg.MajorityFraction) + 1
	if need > len(candidates) {
		need = len(candidates)
	}
	d.WillViolate = d.Hits >= need
	return d, nil
}
