package predictor

import "testing"

func TestTrackerEmpty(t *testing.T) {
	var tr Tracker
	if tr.Total() != 0 || tr.Accuracy() != 0 || tr.Precision() != 0 || tr.Recall() != 0 {
		t.Errorf("empty tracker: total=%d acc=%v prec=%v rec=%v",
			tr.Total(), tr.Accuracy(), tr.Precision(), tr.Recall())
	}
}

func TestTrackerConfusionMatrix(t *testing.T) {
	var tr Tracker
	tr.Record(true, true)   // tp
	tr.Record(true, true)   // tp
	tr.Record(true, false)  // fp
	tr.Record(false, true)  // fn
	tr.Record(false, false) // tn
	tr.Record(false, false) // tn

	tp, fp, tn, fn := tr.Counts()
	if tp != 2 || fp != 1 || tn != 2 || fn != 1 {
		t.Fatalf("counts = %d,%d,%d,%d", tp, fp, tn, fn)
	}
	if tr.Total() != 6 {
		t.Errorf("total = %d", tr.Total())
	}
	if got := tr.Accuracy(); got != 4.0/6.0 {
		t.Errorf("accuracy = %v", got)
	}
	if got := tr.Precision(); got != 2.0/3.0 {
		t.Errorf("precision = %v", got)
	}
	if got := tr.Recall(); got != 2.0/3.0 {
		t.Errorf("recall = %v", got)
	}
}

func TestTrackerAllNegative(t *testing.T) {
	var tr Tracker
	tr.Record(false, false)
	tr.Record(false, false)
	if tr.Accuracy() != 1 {
		t.Errorf("accuracy = %v, want 1", tr.Accuracy())
	}
	if tr.Precision() != 0 || tr.Recall() != 0 {
		t.Errorf("precision/recall with no positives = %v/%v", tr.Precision(), tr.Recall())
	}
}
