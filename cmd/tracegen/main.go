// Command tracegen emits a synthetic request-rate trace as CSV, suitable
// for driving the Webservice workload or the open-loop scenario zoo: the
// Wikipedia-like diurnal shape of Fig 1 of the paper, or a flash-crowd
// variant with a superimposed surge.
//
// Usage:
//
//	tracegen [-shape diurnal|flash] [-days N] [-rate R] [-amplitude A]
//	         [-noise S] [-drift D] [-samples-per-hour K] [-seed N]
//	         [-flash-multiplier M] [-flash-start H] [-o FILE]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/fsatomic"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	cfg := trace.DefaultConfig()
	fc := trace.DefaultFlashConfig()
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.IntVar(&cfg.Days, "days", cfg.Days, "trace length in days")
	fs.Float64Var(&cfg.BaseRate, "rate", cfg.BaseRate, "mean request rate (req/s)")
	fs.Float64Var(&cfg.DailyAmplitude, "amplitude", cfg.DailyAmplitude, "diurnal amplitude fraction [0,1]")
	fs.Float64Var(&cfg.Noise, "noise", cfg.Noise, "relative multiplicative noise")
	fs.Float64Var(&cfg.Drift, "drift", cfg.Drift, "per-day relative growth")
	fs.IntVar(&cfg.SamplesPerHour, "samples-per-hour", cfg.SamplesPerHour, "samples per hour")
	fs.Float64Var(&cfg.PeakHour, "peak-hour", cfg.PeakHour, "hour of day with maximal load")
	shape := fs.String("shape", "diurnal", "trace shape: diurnal or flash")
	fs.Float64Var(&fc.Multiplier, "flash-multiplier", fc.Multiplier, "flash-crowd peak multiplier (≥ 1)")
	fs.Float64Var(&fc.StartHour, "flash-start", fc.StartHour, "flash-crowd onset hour")
	fs.Float64Var(&fc.RampHours, "flash-ramp", fc.RampHours, "flash-crowd ramp duration (hours)")
	fs.Float64Var(&fc.HoldHours, "flash-hold", fc.HoldHours, "flash-crowd hold duration (hours)")
	fs.Float64Var(&fc.DecayHours, "flash-decay", fc.DecayHours, "flash-crowd decay duration (hours)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := validateFlags(cfg, *shape); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	var pts []trace.Point
	var err error
	switch *shape {
	case "diurnal":
		pts, err = trace.Generate(cfg, rng)
	case "flash":
		fc.Base = cfg
		pts, err = trace.GenerateFlash(fc, rng)
	}
	if err != nil {
		return err
	}
	if *out != "" {
		return fsatomic.WriteFileFunc(*out, 0o644, func(w io.Writer) error {
			return trace.WriteCSV(w, pts)
		})
	}
	return trace.WriteCSV(stdout, pts)
}

// validateFlags rejects bad flag combinations up front — all of them at
// once, so a caller fixing a scripted invocation sees every problem in one
// run instead of one per run.
func validateFlags(cfg trace.Config, shape string) error {
	var errs []error
	if cfg.Days <= 0 {
		errs = append(errs, fmt.Errorf("-days must be positive, got %d", cfg.Days))
	}
	if cfg.DailyAmplitude < 0 || cfg.DailyAmplitude > 1 {
		errs = append(errs, fmt.Errorf("-amplitude must be in [0,1], got %v", cfg.DailyAmplitude))
	}
	if cfg.SamplesPerHour <= 0 {
		errs = append(errs, fmt.Errorf("-samples-per-hour must be positive, got %d", cfg.SamplesPerHour))
	}
	if shape != "diurnal" && shape != "flash" {
		errs = append(errs, fmt.Errorf("-shape must be diurnal or flash, got %q", shape))
	}
	return errors.Join(errs...)
}
