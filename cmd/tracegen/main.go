// Command tracegen emits a synthetic Wikipedia-like diurnal request-rate
// trace as CSV (Fig 1 of the paper), suitable for driving the Webservice
// workload.
//
// Usage:
//
//	tracegen [-days N] [-rate R] [-amplitude A] [-noise S] [-drift D]
//	         [-samples-per-hour K] [-seed N] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/fsatomic"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := trace.DefaultConfig()
	flag.IntVar(&cfg.Days, "days", cfg.Days, "trace length in days")
	flag.Float64Var(&cfg.BaseRate, "rate", cfg.BaseRate, "mean request rate (req/s)")
	flag.Float64Var(&cfg.DailyAmplitude, "amplitude", cfg.DailyAmplitude, "diurnal amplitude fraction [0,1]")
	flag.Float64Var(&cfg.Noise, "noise", cfg.Noise, "relative multiplicative noise")
	flag.Float64Var(&cfg.Drift, "drift", cfg.Drift, "per-day relative growth")
	flag.IntVar(&cfg.SamplesPerHour, "samples-per-hour", cfg.SamplesPerHour, "samples per hour")
	flag.Float64Var(&cfg.PeakHour, "peak-hour", cfg.PeakHour, "hour of day with maximal load")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	pts, err := trace.Generate(cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	if *out != "" {
		return fsatomic.WriteFileFunc(*out, 0o644, func(w io.Writer) error {
			return trace.WriteCSV(w, pts)
		})
	}
	return trace.WriteCSV(os.Stdout, pts)
}
