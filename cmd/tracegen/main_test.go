package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestRunDiurnalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-days", "2", "-samples-per-hour", "2", "-noise", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	pts, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatalf("tracegen output must round-trip through ReadCSV: %v", err)
	}
	if want := 2 * 24 * 2; len(pts) != want {
		t.Fatalf("rows = %d, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.Rate <= 0 {
			t.Fatalf("non-positive rate %v at hour %v", p.Rate, p.Hour)
		}
	}
}

func TestRunFlashRoundTrip(t *testing.T) {
	gen := func(shape string) []trace.Point {
		var buf bytes.Buffer
		args := []string{"-shape", shape, "-days", "3", "-noise", "0",
			"-flash-start", "30", "-flash-multiplier", "5"}
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		pts, err := trace.ReadCSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	diurnal := gen("diurnal")
	flash := gen("flash")
	if len(flash) != len(diurnal) {
		t.Fatalf("flash rows %d != diurnal rows %d", len(flash), len(diurnal))
	}
	// The surge hour must stand out ~5× over the same hour without it.
	var ratio float64
	for i, p := range flash {
		if p.Hour == 32 { // mid-hold
			ratio = p.Rate / diurnal[i].Rate
		}
	}
	if ratio < 4.9 || ratio > 5.1 {
		t.Fatalf("surge ratio = %v, want ~5", ratio)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	err := run([]string{"-days", "0", "-amplitude", "1.5", "-samples-per-hour", "-2", "-shape", "square"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("bad flags should error")
	}
	// errors.Join reports every problem at once.
	for _, want := range []string{"-days", "-amplitude", "-samples-per-hour", "-shape"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q should mention %s", err, want)
		}
	}
}

func TestRunValidFlagsNoError(t *testing.T) {
	if err := validateFlags(trace.DefaultConfig(), "flash"); err != nil {
		t.Fatalf("default config with flash shape should validate: %v", err)
	}
}
