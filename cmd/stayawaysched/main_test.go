package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/statespace"
)

// Fixture maps mirroring the internal/sched test scenario: two sensitives
// with opposite vulnerabilities, so correct plans are unambiguous.

func testRanges() map[metrics.Metric]metrics.Range {
	return map[metrics.Metric]metrics.Range{
		metrics.MetricCPU:     {Max: 800},
		metrics.MetricMemory:  {Max: 4096},
		metrics.MetricIO:      {Max: 200},
		metrics.MetricNetwork: {Max: 1000},
	}
}

func vlcHDTemplate() *statespace.Template {
	return &statespace.Template{
		Version:       2,
		SensitiveApp:  "vlc-hd",
		Dim:           8,
		SchemaVMs:     []string{"sens", "batch"},
		SchemaMetrics: metrics.DefaultMetrics(),
		Ranges:        testRanges(),
		States: []statespace.TemplateState{
			{X: 0, Y: 0, Label: "safe", Weight: 4,
				Vector: []float64{0.18, 0.1, 0, 0.06, 0, 0, 0, 0}},
			{X: 0.7, Y: 0, Label: "safe", Weight: 4,
				Vector: []float64{0.18, 0.1, 0, 0.06, 0.19, 0.07, 0, 0.6}},
			{X: 0, Y: 0.9, Label: "violation", Weight: 2,
				Vector: []float64{0.18, 0.1, 0.2, 0.06, 0.075, 0.83, 0.4, 0}},
		},
	}
}

func cdnEdgeTemplate() *statespace.Template {
	return &statespace.Template{
		Version:       2,
		SensitiveApp:  "cdn-edge",
		Dim:           8,
		SchemaVMs:     []string{"sens", "batch"},
		SchemaMetrics: metrics.DefaultMetrics(),
		Ranges:        testRanges(),
		States: []statespace.TemplateState{
			{X: 0, Y: 0, Label: "safe", Weight: 4,
				Vector: []float64{0.18, 0.1, 0, 0.6, 0, 0, 0, 0}},
			{X: 0.7, Y: 0, Label: "safe", Weight: 4,
				Vector: []float64{0.18, 0.1, 0, 0.6, 0.075, 0.83, 0.4, 0}},
			{X: 0, Y: 0.9, Label: "violation", Weight: 2,
				Vector: []float64{0.18, 0.1, 0, 0.45, 0.19, 0.07, 0, 0.6}},
		},
	}
}

// startRegistry serves a fleet control plane seeded with the fixture maps.
func startRegistry(t *testing.T) *httptest.Server {
	t.Helper()
	reg, err := registry.Open(registry.Config{
		Now: func() time.Time { return time.Unix(0, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for host, tpl := range map[string]*statespace.Template{
		"seed-a": vlcHDTemplate(),
		"seed-b": cdnEdgeTemplate(),
	} {
		if _, err := reg.Put(host, tpl); err != nil {
			t.Fatalf("seeding %s: %v", host, err)
		}
	}
	srv, err := fleet.NewServer(fleet.ServerConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func writeSpec(t *testing.T, spec clusterSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func testSpec() clusterSpec {
	return clusterSpec{
		Hosts: []sched.Host{
			{ID: "a1", CPU: 800, MemoryMB: 8192, NetMbps: 1000},
			{ID: "b1", CPU: 800, MemoryMB: 8192, NetMbps: 1000},
		},
		Sensitives: []sched.SensitiveApp{
			{Name: "vlc-hd", Host: "a1", Footprint: sched.Footprint{CPU: 145, MemoryMB: 400, NetMbps: 60}},
			{Name: "cdn-edge", Host: "b1", Footprint: sched.Footprint{CPU: 145, MemoryMB: 400, NetMbps: 600}},
		},
		Jobs: []sched.BatchJob{
			{ID: "mem-1", App: "memorybomb", Footprint: sched.Footprint{CPU: 60, MemoryMB: 3400, IOMBps: 80}},
			{ID: "net-1", App: "nethog", Footprint: sched.Footprint{CPU: 150, MemoryMB: 300, NetMbps: 600}},
		},
	}
}

func runPlan(t *testing.T, args ...string) (plan, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	var p plan
	if err := json.Unmarshal(stdout.Bytes(), &p); err != nil {
		t.Fatalf("plan output is not JSON: %v\n%s", err, stdout.String())
	}
	return p, stderr.String()
}

// TestPlanFromLiveRegistry is the CLI's end-to-end path: templates come
// from a running fleet server, and the emitted plan matches each job to
// the host whose sensitive tolerates it.
func TestPlanFromLiveRegistry(t *testing.T) {
	ts := startRegistry(t)
	specPath := writeSpec(t, testSpec())

	p, _ := runPlan(t, "-cluster", specPath, "-registry", ts.URL)

	if p.Scorer != "map" {
		t.Fatalf("scorer = %q, want map", p.Scorer)
	}
	if len(p.Apps) != 2 || p.Apps[0] != "cdn-edge" || p.Apps[1] != "vlc-hd" {
		t.Fatalf("apps = %v, want [cdn-edge vlc-hd]", p.Apps)
	}
	// The memory bomb belongs next to the network-bound cache, the network
	// hog next to the memory-bound stream.
	if got := p.Assignments["mem-1"]; got != "b1" {
		t.Fatalf("mem-1 placed on %s, want b1", got)
	}
	if got := p.Assignments["net-1"]; got != "a1" {
		t.Fatalf("net-1 placed on %s, want a1", got)
	}
	if len(p.Decisions) != 2 {
		t.Fatalf("got %d decisions, want 2", len(p.Decisions))
	}
	for _, d := range p.Decisions {
		if len(d.Ranking) != 2 {
			t.Fatalf("decision %s carries %d ranked hosts, want 2", d.Job, len(d.Ranking))
		}
		if d.Forced {
			t.Fatalf("decision %s was forced", d.Job)
		}
	}
}

// TestPlanWritesOutputFile covers -o: the plan lands in the file, atomically
// written, stdout stays empty.
func TestPlanWritesOutputFile(t *testing.T) {
	ts := startRegistry(t)
	specPath := writeSpec(t, testSpec())
	outPath := filepath.Join(t.TempDir(), "plan.json")

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-cluster", specPath, "-registry", ts.URL, "-o", outPath},
		&stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("stdout not empty with -o: %s", stdout.String())
	}
	body, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var p plan
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatalf("plan file is not JSON: %v", err)
	}
	if p.Assignments["mem-1"] != "b1" {
		t.Fatalf("mem-1 placed on %s, want b1", p.Assignments["mem-1"])
	}
}

// TestPlanBaselineScorersNeedNoRegistry: crossapp/pack/random plans are
// computable offline.
func TestPlanBaselineScorersNeedNoRegistry(t *testing.T) {
	specPath := writeSpec(t, testSpec())
	for _, name := range []string{"crossapp", "pack", "random"} {
		p, _ := runPlan(t, "-cluster", specPath, "-scorer", name)
		if p.Scorer != name {
			t.Fatalf("scorer = %q, want %q", p.Scorer, name)
		}
		if len(p.Decisions) != 2 {
			t.Fatalf("%s: got %d decisions, want 2", name, len(p.Decisions))
		}
	}
}

// TestPlanErrors pins the CLI's failure modes.
func TestPlanErrors(t *testing.T) {
	specPath := writeSpec(t, testSpec())
	var out bytes.Buffer

	if err := run([]string{"-registry", "http://x"}, &out, &out); err == nil {
		t.Fatal("missing -cluster accepted")
	}
	if err := run([]string{"-cluster", specPath}, &out, &out); err == nil {
		t.Fatal("map scorer without -registry accepted")
	}
	if err := run([]string{"-cluster", specPath, "-scorer", "psychic"}, &out, &out); err == nil {
		t.Fatal("unknown scorer accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"hosts": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-cluster", bad, "-scorer", "pack"}, &out, &out); err == nil {
		t.Fatal("empty host list accepted")
	}
}

// TestPlanSkipsUnusableTemplates: a registry entry the query layer cannot
// use (single-slot schema) is skipped with a warning, and the remaining
// maps still produce a plan.
func TestPlanSkipsUnusableTemplates(t *testing.T) {
	reg, err := registry.Open(registry.Config{
		Now: func() time.Time { return time.Unix(0, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	oneSlot := &statespace.Template{
		Version:       2,
		SensitiveApp:  "solo",
		Dim:           4,
		SchemaVMs:     []string{"sens"},
		SchemaMetrics: metrics.DefaultMetrics(),
		Ranges:        testRanges(),
		States: []statespace.TemplateState{
			{X: 0, Y: 0, Label: "safe", Weight: 1, Vector: []float64{0.1, 0.1, 0, 0}},
		},
	}
	for host, tpl := range map[string]*statespace.Template{
		"seed-a": vlcHDTemplate(),
		"seed-b": cdnEdgeTemplate(),
		"seed-c": oneSlot,
	} {
		if _, err := reg.Put(host, tpl); err != nil {
			t.Fatalf("seeding %s: %v", host, err)
		}
	}
	srv, err := fleet.NewServer(fleet.ServerConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	specPath := writeSpec(t, testSpec())
	p, warnings := runPlan(t, "-cluster", specPath, "-registry", ts.URL)
	if !strings.Contains(warnings, "skipping template solo@") {
		t.Fatalf("no skip warning for the one-slot template; stderr: %s", warnings)
	}
	if len(p.Apps) != 2 {
		t.Fatalf("apps = %v, want the two usable maps", p.Apps)
	}
	if p.Assignments["mem-1"] != "b1" || p.Assignments["net-1"] != "a1" {
		t.Fatalf("assignments = %v, want mem-1→b1 net-1→a1", p.Assignments)
	}
}
