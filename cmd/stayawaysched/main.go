// Command stayawaysched turns the fleet's learned violation maps into
// placement plans: it pulls the consensus templates from a stayawayreg
// registry, scores every (sensitive, batch, host) co-location in a cluster
// spec with the learned-map scorer, and emits the greedy least-conflict
// assignment — every decision carrying the full host ranking that led to
// it, so a placement can be audited after the fact. The plan is advisory:
// whatever applies it, the per-host Stay-Away runtime remains the
// enforcement layer.
//
// Usage:
//
//	stayawaysched -cluster spec.json -registry http://registry:8723
//	              [-scorer map] [-seed 42] [-migrate-threshold 0]
//	              [-timeout 30s] [-o plan.json] [-watch 30s]
//
//	-cluster FILE        cluster spec (JSON, "-" for stdin); required
//	-registry URL        stayawayreg base URL (required for -scorer map)
//	-scorer NAME         map (default), crossapp, pack, or random
//	-seed N              seed for the random scorer
//	-migrate-threshold T also propose migrations for hosts whose current
//	                     predicted violation risk exceeds T (0 disables)
//	-timeout D           registry request budget
//	-o FILE              write the plan there instead of stdout
//	-watch D             keep running: follow the registry's delta feed at
//	                     this cadence and rewrite -o whenever fleet maps
//	                     change (requires -scorer map and -o)
//	-fleet-key K         shared fleet key; signs registry requests
//	-fleet-key-file F    file holding the fleet key (preferred: argv leaks
//	                     via ps)
//	-merge-eps E         dedup radius for applying watched deltas (match
//	                     the registry's -merge-eps)
//
// In watch mode the scheduler is a delta-sync client: it remembers each
// application's registry revision, polls the conditional delta endpoint
// (an unchanged map costs one 304, not a template download), patches its
// cached templates with the returned deltas, and re-plans only when
// something actually changed. Every few cycles it re-lists the full feed
// so applications that joined the fleet after startup are picked up too.
//
// The cluster spec describes inventory, pinned sensitives, and the jobs to
// place, in the internal/sched JSON vocabulary:
//
//	{
//	  "hosts":      [{"id": "a1", "cpu": 800, "memory_mb": 8192,
//	                  "net_mbps": 1000}],
//	  "sensitives": [{"name": "vlc-hd", "host": "a1",
//	                  "footprint": {"cpu": 145, "memory_mb": 400,
//	                                "net_mbps": 60}}],
//	  "jobs":       [{"id": "job-1", "app": "batch",
//	                  "footprint": {"cpu": 60, "memory_mb": 3400}}]
//	}
//
// Jobs are placed in spec order, each seeing the assignments before it.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/fsatomic"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/statespace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "stayawaysched:", err)
		os.Exit(1)
	}
}

// clusterSpec is the input document.
type clusterSpec struct {
	Hosts      []sched.Host         `json:"hosts"`
	Sensitives []sched.SensitiveApp `json:"sensitives"`
	Jobs       []sched.BatchJob     `json:"jobs"`
}

// plan is the output document.
type plan struct {
	// Scorer names the scoring policy the plan was computed under.
	Scorer string `json:"scorer"`
	// Apps lists the applications the scorer holds learned maps for
	// (map scorer only).
	Apps []string `json:"apps,omitempty"`
	// Revisions records the registry revision of each map the plan was
	// computed from, so a plan file can be audited against the registry.
	Revisions map[string]int `json:"revisions,omitempty"`
	// Decisions are the per-job placements in spec order, each with the
	// full host ranking.
	Decisions []sched.Decision `json:"decisions"`
	// Assignments is the resulting job → host table.
	Assignments map[string]string `json:"assignments"`
	// Migrations are proposed moves for already-risky hosts; only
	// populated when -migrate-threshold is set.
	Migrations []sched.Migration `json:"migrations,omitempty"`
}

// fullRefreshEvery is how many watch cycles pass between full feed
// re-lists; the cycles in between cost one conditional delta GET per
// known application.
const fullRefreshEvery = 10

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("stayawaysched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	clusterPath := fs.String("cluster", "", "cluster spec JSON file (\"-\" for stdin)")
	registryURL := fs.String("registry", "", "stayawayreg base URL")
	scorerName := fs.String("scorer", "map", "scoring policy: map, crossapp, pack or random")
	seed := fs.Int64("seed", 42, "seed for the random scorer")
	migrateThreshold := fs.Float64("migrate-threshold", 0, "propose migrations above this host risk (0 disables)")
	timeout := fs.Duration("timeout", 30*time.Second, "registry request budget")
	outPath := fs.String("o", "", "write the plan here instead of stdout")
	watch := fs.Duration("watch", 0, "keep running: follow the delta feed at this cadence and re-plan on change (requires -scorer map and -o)")
	fleetKey := fs.String("fleet-key", "", "shared fleet key; when set, registry requests are HMAC-signed")
	fleetKeyFile := fs.String("fleet-key-file", "", "file holding the shared fleet key (preferred over -fleet-key: argv leaks via ps)")
	mergeEps := fs.Float64("merge-eps", registry.DefaultMergeEpsilon, "state-dedup radius when applying watched deltas (match the registry's -merge-eps)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clusterPath == "" {
		fs.Usage()
		return fmt.Errorf("-cluster is required")
	}
	if *watch > 0 && (*scorerName != "map" || *outPath == "") {
		return fmt.Errorf("-watch requires -scorer map and -o (the plan file to keep fresh)")
	}
	key, err := fleet.ResolveKey(*fleetKey, *fleetKeyFile)
	if err != nil {
		return err
	}

	spec, err := readSpec(*clusterPath)
	if err != nil {
		return err
	}

	var (
		scorer    sched.Scorer
		apps      []string
		revisions map[string]int
		client    *fleet.Client
		templates map[string]*statespace.Template
	)
	switch *scorerName {
	case "map":
		if *registryURL == "" {
			return fmt.Errorf("-scorer map needs -registry")
		}
		if client, err = fleet.NewClient(fleet.ClientConfig{BaseURL: *registryURL, Key: key}); err != nil {
			return err
		}
		if templates, revisions, err = fetchTemplates(client, *timeout); err != nil {
			return err
		}
		ms, err := buildScorer(templates, *registryURL, stderr)
		if err != nil {
			return err
		}
		scorer, apps = ms, ms.Apps()
	case "crossapp":
		scorer = sched.NewCrossAppScorer(sched.DefaultCrossAppProfile())
	case "pack":
		scorer = sched.NewPackScorer()
	case "random":
		scorer = sched.NewRandomScorer(*seed)
	default:
		return fmt.Errorf("unknown scorer %q (want map, crossapp, pack or random)", *scorerName)
	}

	p, err := makePlan(spec, *scorerName, scorer, apps, revisions, *migrateThreshold)
	if err != nil {
		return err
	}
	if err := writePlan(p, *outPath, stdout); err != nil {
		return err
	}
	if *watch <= 0 {
		return nil
	}

	// Watch mode: the scheduler stays resident as a delta-sync client and
	// keeps the plan file fresh. Each cycle costs one conditional GET per
	// application (304 while nothing changed); only a real delta triggers
	// the re-plan.
	fmt.Fprintf(stderr, "stayawaysched: watching %d application map(s) every %v\n", len(revisions), *watch)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*watch)
	defer ticker.Stop()
	for cycle := 1; ; cycle++ {
		select {
		case <-stop:
			return nil
		case <-ticker.C:
		}
		changed := false
		if cycle%fullRefreshEvery == 0 {
			// Deltas only cover applications we already know; the periodic
			// re-list picks up maps that joined the fleet after startup.
			fresh, freshRevs, err := fetchTemplates(client, *timeout)
			if err != nil {
				fmt.Fprintf(stderr, "stayawaysched: feed refresh failed, keeping cached maps: %v\n", err)
				continue
			}
			for app, rev := range freshRevs {
				if revisions[app] != rev {
					changed = true
				}
			}
			if changed || len(freshRevs) != len(revisions) {
				templates, revisions = fresh, freshRevs
				changed = true
			}
		} else {
			for _, app := range sortedApps(revisions) {
				d, err := pollDelta(client, *timeout, app, revisions[app])
				if err != nil {
					if !errors.Is(err, fleet.ErrNotFound) {
						fmt.Fprintf(stderr, "stayawaysched: %s: delta poll failed, keeping cached map: %v\n", app, err)
					}
					continue
				}
				if d == nil || d.ToRevision <= revisions[app] {
					continue
				}
				updated, err := statespace.ApplyDelta(templates[app], d, *mergeEps)
				if err != nil {
					fmt.Fprintf(stderr, "stayawaysched: %s: delta rejected, keeping cached map: %v\n", app, err)
					continue
				}
				templates[app] = updated
				revisions[app] = d.ToRevision
				changed = true
			}
		}
		if !changed {
			continue
		}
		ms, err := buildScorer(templates, *registryURL, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "stayawaysched: no usable maps after update, keeping last plan: %v\n", err)
			continue
		}
		p, err := makePlan(spec, *scorerName, ms, ms.Apps(), revisions, *migrateThreshold)
		if err != nil {
			fmt.Fprintf(stderr, "stayawaysched: re-plan failed, keeping last plan: %v\n", err)
			continue
		}
		if err := writePlan(p, *outPath, stdout); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "stayawaysched: fleet maps changed, re-planned %d job(s) → %s\n", len(p.Decisions), *outPath)
	}
}

// pollDelta runs one bounded conditional delta GET; nil delta means the
// cached map is already current.
func pollDelta(client *fleet.Client, timeout time.Duration, app string, since int) (*statespace.TemplateDelta, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	d, _, err := client.PullDelta(ctx, app, "", since)
	return d, err
}

func sortedApps(revs map[string]int) []string {
	apps := make([]string, 0, len(revs))
	for app := range revs {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	return apps
}

// makePlan scores and places the spec's jobs from scratch — cluster state
// is rebuilt per plan because placement mutates it.
func makePlan(spec *clusterSpec, scorerName string, scorer sched.Scorer, apps []string, revisions map[string]int, migrateThreshold float64) (*plan, error) {
	p := &plan{Scorer: scorerName, Apps: apps, Revisions: revisions, Assignments: map[string]string{}}
	cluster, err := sched.NewCluster(spec.Hosts)
	if err != nil {
		return nil, err
	}
	for _, s := range spec.Sensitives {
		if err := cluster.PinSensitive(s); err != nil {
			return nil, err
		}
	}
	placer, err := sched.NewPlacer(sched.PlacerConfig{
		Scorer:           scorer,
		MigrateThreshold: migrateThreshold,
	})
	if err != nil {
		return nil, err
	}
	if p.Decisions, err = placer.PlaceAll(cluster, spec.Jobs); err != nil {
		return nil, err
	}
	for _, d := range p.Decisions {
		p.Assignments[d.Job] = d.Host
	}
	if migrateThreshold > 0 {
		moves, err := placer.Rebalance(cluster)
		if err != nil {
			return nil, err
		}
		p.Migrations = moves
		for _, m := range moves {
			p.Assignments[m.Job] = m.To
		}
	}
	return p, nil
}

func writePlan(p *plan, outPath string, stdout io.Writer) error {
	body, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if outPath != "" {
		return fsatomic.WriteFile(outPath, body, 0o644)
	}
	_, err = stdout.Write(body)
	return err
}

func readSpec(path string) (*clusterSpec, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var spec clusterSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("cluster spec %s: %w", path, err)
	}
	if len(spec.Hosts) == 0 {
		return nil, fmt.Errorf("cluster spec %s: no hosts", path)
	}
	if len(spec.Jobs) == 0 {
		return nil, fmt.Errorf("cluster spec %s: no jobs to place", path)
	}
	return &spec, nil
}

// fetchTemplates pulls the full template feed, caching per application the
// first entry's template and registry revision. Unusable templates are
// kept too — a map too sparse to query today may become queryable after a
// few watched deltas.
func fetchTemplates(client *fleet.Client, timeout time.Duration) (map[string]*statespace.Template, map[string]int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	entries, err := client.ListTemplates(ctx, "", false)
	if err != nil {
		return nil, nil, err
	}
	templates := make(map[string]*statespace.Template)
	revisions := make(map[string]int)
	for _, e := range entries {
		if e.Template == nil {
			continue
		}
		if _, ok := templates[e.App]; ok {
			continue
		}
		templates[e.App] = e.Template
		revisions[e.App] = e.Revision
	}
	return templates, revisions, nil
}

// buildScorer keeps the templates that support prospective queries
// (two-slot schema with learned states) and builds the map scorer over
// them. Apps with only unusable templates are skipped with a warning
// rather than failing the plan — the scorer then simply reports hosts
// running those apps as unscorable.
func buildScorer(templates map[string]*statespace.Template, baseURL string, stderr io.Writer) (*sched.MapScorer, error) {
	usable := make(map[string]*statespace.Template, len(templates))
	for app, t := range templates {
		if _, err := statespace.NewQueryMap(t); err != nil {
			fmt.Fprintf(stderr, "stayawaysched: skipping template %s@%s: %v\n", app, t.SchemaKey(), err)
			continue
		}
		usable[app] = t
	}
	if len(usable) == 0 {
		return nil, fmt.Errorf("registry %s holds no usable templates (learned maps with the two-slot schema)", baseURL)
	}
	return sched.NewMapScorer(usable)
}
