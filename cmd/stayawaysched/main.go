// Command stayawaysched turns the fleet's learned violation maps into
// placement plans: it pulls the consensus templates from a stayawayreg
// registry, scores every (sensitive, batch, host) co-location in a cluster
// spec with the learned-map scorer, and emits the greedy least-conflict
// assignment — every decision carrying the full host ranking that led to
// it, so a placement can be audited after the fact. The plan is advisory:
// whatever applies it, the per-host Stay-Away runtime remains the
// enforcement layer.
//
// Usage:
//
//	stayawaysched -cluster spec.json -registry http://registry:8723
//	              [-scorer map] [-seed 42] [-migrate-threshold 0]
//	              [-timeout 30s] [-o plan.json]
//
//	-cluster FILE        cluster spec (JSON, "-" for stdin); required
//	-registry URL        stayawayreg base URL (required for -scorer map)
//	-scorer NAME         map (default), crossapp, pack, or random
//	-seed N              seed for the random scorer
//	-migrate-threshold T also propose migrations for hosts whose current
//	                     predicted violation risk exceeds T (0 disables)
//	-timeout D           registry request budget
//	-o FILE              write the plan there instead of stdout
//
// The cluster spec describes inventory, pinned sensitives, and the jobs to
// place, in the internal/sched JSON vocabulary:
//
//	{
//	  "hosts":      [{"id": "a1", "cpu": 800, "memory_mb": 8192,
//	                  "net_mbps": 1000}],
//	  "sensitives": [{"name": "vlc-hd", "host": "a1",
//	                  "footprint": {"cpu": 145, "memory_mb": 400,
//	                                "net_mbps": 60}}],
//	  "jobs":       [{"id": "job-1", "app": "batch",
//	                  "footprint": {"cpu": 60, "memory_mb": 3400}}]
//	}
//
// Jobs are placed in spec order, each seeing the assignments before it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/fleet"
	"repro/internal/fsatomic"
	"repro/internal/sched"
	"repro/internal/statespace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "stayawaysched:", err)
		os.Exit(1)
	}
}

// clusterSpec is the input document.
type clusterSpec struct {
	Hosts      []sched.Host         `json:"hosts"`
	Sensitives []sched.SensitiveApp `json:"sensitives"`
	Jobs       []sched.BatchJob     `json:"jobs"`
}

// plan is the output document.
type plan struct {
	// Scorer names the scoring policy the plan was computed under.
	Scorer string `json:"scorer"`
	// Apps lists the applications the scorer holds learned maps for
	// (map scorer only).
	Apps []string `json:"apps,omitempty"`
	// Decisions are the per-job placements in spec order, each with the
	// full host ranking.
	Decisions []sched.Decision `json:"decisions"`
	// Assignments is the resulting job → host table.
	Assignments map[string]string `json:"assignments"`
	// Migrations are proposed moves for already-risky hosts; only
	// populated when -migrate-threshold is set.
	Migrations []sched.Migration `json:"migrations,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("stayawaysched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	clusterPath := fs.String("cluster", "", "cluster spec JSON file (\"-\" for stdin)")
	registryURL := fs.String("registry", "", "stayawayreg base URL")
	scorerName := fs.String("scorer", "map", "scoring policy: map, crossapp, pack or random")
	seed := fs.Int64("seed", 42, "seed for the random scorer")
	migrateThreshold := fs.Float64("migrate-threshold", 0, "propose migrations above this host risk (0 disables)")
	timeout := fs.Duration("timeout", 30*time.Second, "registry request budget")
	outPath := fs.String("o", "", "write the plan here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clusterPath == "" {
		fs.Usage()
		return fmt.Errorf("-cluster is required")
	}

	spec, err := readSpec(*clusterPath)
	if err != nil {
		return err
	}

	p := plan{Scorer: *scorerName, Assignments: map[string]string{}}
	var scorer sched.Scorer
	switch *scorerName {
	case "map":
		if *registryURL == "" {
			return fmt.Errorf("-scorer map needs -registry")
		}
		ms, err := fetchMapScorer(*registryURL, *timeout, stderr)
		if err != nil {
			return err
		}
		p.Apps = ms.Apps()
		scorer = ms
	case "crossapp":
		scorer = sched.NewCrossAppScorer(sched.DefaultCrossAppProfile())
	case "pack":
		scorer = sched.NewPackScorer()
	case "random":
		scorer = sched.NewRandomScorer(*seed)
	default:
		return fmt.Errorf("unknown scorer %q (want map, crossapp, pack or random)", *scorerName)
	}

	cluster, err := sched.NewCluster(spec.Hosts)
	if err != nil {
		return err
	}
	for _, s := range spec.Sensitives {
		if err := cluster.PinSensitive(s); err != nil {
			return err
		}
	}
	placer, err := sched.NewPlacer(sched.PlacerConfig{
		Scorer:           scorer,
		MigrateThreshold: *migrateThreshold,
	})
	if err != nil {
		return err
	}

	p.Decisions, err = placer.PlaceAll(cluster, spec.Jobs)
	if err != nil {
		return err
	}
	for _, d := range p.Decisions {
		p.Assignments[d.Job] = d.Host
	}
	if *migrateThreshold > 0 {
		moves, err := placer.Rebalance(cluster)
		if err != nil {
			return err
		}
		p.Migrations = moves
		for _, m := range moves {
			p.Assignments[m.Job] = m.To
		}
	}

	body, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if *outPath != "" {
		return fsatomic.WriteFile(*outPath, body, 0o644)
	}
	_, err = stdout.Write(body)
	return err
}

func readSpec(path string) (*clusterSpec, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var spec clusterSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("cluster spec %s: %w", path, err)
	}
	if len(spec.Hosts) == 0 {
		return nil, fmt.Errorf("cluster spec %s: no hosts", path)
	}
	if len(spec.Jobs) == 0 {
		return nil, fmt.Errorf("cluster spec %s: no jobs to place", path)
	}
	return &spec, nil
}

// fetchMapScorer pulls the full template feed and keeps, per application,
// the first entry whose template supports prospective queries (two-slot
// schema with learned states). Apps with only unusable templates are
// skipped with a warning rather than failing the plan — the scorer then
// simply reports hosts running those apps as unscorable.
func fetchMapScorer(baseURL string, timeout time.Duration, stderr io.Writer) (*sched.MapScorer, error) {
	client, err := fleet.NewClient(fleet.ClientConfig{BaseURL: baseURL})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	entries, err := client.ListTemplates(ctx, "", false)
	if err != nil {
		return nil, err
	}
	templates := make(map[string]*statespace.Template)
	for _, e := range entries {
		if e.Template == nil {
			continue
		}
		if _, ok := templates[e.App]; ok {
			continue
		}
		if _, err := statespace.NewQueryMap(e.Template); err != nil {
			fmt.Fprintf(stderr, "stayawaysched: skipping template %s@%s: %v\n", e.App, e.Schema, err)
			continue
		}
		templates[e.App] = e.Template
	}
	if len(templates) == 0 {
		return nil, fmt.Errorf("registry %s holds no usable templates (learned maps with the two-slot schema)", baseURL)
	}
	return sched.NewMapScorer(templates)
}
