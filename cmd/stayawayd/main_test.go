package main

import (
	"strings"
	"testing"
)

func TestOptionsValidate(t *testing.T) {
	pidOpts := func() options {
		return options{sensitivePIDs: []int{1}, batchPIDs: []int{2, 3}, qosFile: "q"}
	}
	cgOpts := func() options {
		return options{sensCgroup: "s/vlc", batchCgroups: []string{"s/b1", "s/b2"}, qosFile: "q"}
	}

	tests := []struct {
		name       string
		opts       options
		wantCgroup bool
		wantErr    string
	}{
		{"pid mode ok", pidOpts(), false, ""},
		{"cgroup mode ok", cgOpts(), true, ""},
		{"cgroup graded ok", func() options { o := cgOpts(); o.graded = true; return o }(), true, ""},
		{"no qos source", func() options { o := pidOpts(); o.qosFile = ""; return o }(), false, "-qos-file"},
		{"no workloads", options{qosFile: "q"}, false, "no workloads"},
		{"mixed modes", func() options { o := pidOpts(); o.sensCgroup = "x"; return o }(), false, "mutually exclusive"},
		{"pid mode missing sensitive", options{batchPIDs: []int{2}, qosFile: "q"}, false, "-sensitive-pids"},
		{"pid mode missing batch", options{sensitivePIDs: []int{1}, qosFile: "q"}, false, "-batch-pids"},
		{"overlapping pid sets", options{sensitivePIDs: []int{1, 2}, batchPIDs: []int{2}, qosFile: "q"}, false, "both sensitive and batch"},
		{"graded without cgroups", func() options { o := pidOpts(); o.graded = true; return o }(), false, "-graded requires cgroup mode"},
		{"memory-high without cgroups", func() options { o := pidOpts(); o.memoryHighMB = 64; return o }(), false, "-memory-high-mb requires"},
		{"cgroup mode missing sensitive", options{batchCgroups: []string{"b"}, qosFile: "q"}, false, "-sensitive-cgroup"},
		{"cgroup mode missing batch", options{sensCgroup: "s", qosFile: "q"}, false, "-batch-cgroups"},
		{"duplicate cgroup", options{sensCgroup: "s", batchCgroups: []string{"s"}, qosFile: "q"}, false, "listed twice"},
		{"negative memory-high", func() options { o := cgOpts(); o.memoryHighMB = -1; return o }(), false, "non-negative"},
	}
	for _, tt := range tests {
		gotCgroup, err := tt.opts.validate()
		if tt.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tt.name, err)
				continue
			}
			if gotCgroup != tt.wantCgroup {
				t.Errorf("%s: cgroupMode = %v, want %v", tt.name, gotCgroup, tt.wantCgroup)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
			t.Errorf("%s: error = %v, want containing %q", tt.name, err, tt.wantErr)
		}
	}
}

func TestParseList(t *testing.T) {
	got := parseList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("parseList = %v", got)
	}
	if parseList("") != nil {
		t.Error("empty list should be nil")
	}
}
