package main

import (
	"strings"
	"testing"
)

func TestOptionsValidate(t *testing.T) {
	pidOpts := func() options {
		return options{sensitivePIDs: []int{1}, batchPIDs: []int{2, 3}, qosFiles: []string{"q"}}
	}
	cgOpts := func() options {
		return options{sensCgroups: []string{"s/vlc"}, batchCgroups: []string{"s/b1", "s/b2"}, qosFiles: []string{"q"}}
	}
	multiOpts := func() options {
		return options{
			sensCgroups:  []string{"s/vlc", "s/kv"},
			batchCgroups: []string{"s/b1", "s/b2"},
			qosFiles:     []string{"q1", "q2"},
			apps:         []string{"vlc", "kv"},
		}
	}

	tests := []struct {
		name       string
		opts       options
		wantCgroup bool
		wantErr    string
	}{
		{"pid mode ok", pidOpts(), false, ""},
		{"cgroup mode ok", cgOpts(), true, ""},
		{"cgroup graded ok", func() options { o := cgOpts(); o.graded = true; return o }(), true, ""},
		{"multi-tenant ok", multiOpts(), true, ""},
		{"multi-tenant unnamed ok", func() options { o := multiOpts(); o.apps = nil; return o }(), true, ""},
		{"no qos source", func() options { o := pidOpts(); o.qosFiles = nil; return o }(), false, "-qos-file"},
		{"no workloads", options{qosFiles: []string{"q"}}, false, "no workloads"},
		{"mixed modes", func() options { o := pidOpts(); o.sensCgroups = []string{"x"}; return o }(), false, "mutually exclusive"},
		{"pid mode missing sensitive", options{batchPIDs: []int{2}, qosFiles: []string{"q"}}, false, "-sensitive-pids"},
		{"pid mode missing batch", options{sensitivePIDs: []int{1}, qosFiles: []string{"q"}}, false, "-batch-pids"},
		{"overlapping pid sets", options{sensitivePIDs: []int{1, 2}, batchPIDs: []int{2}, qosFiles: []string{"q"}}, false, "both sensitive and batch"},
		{"graded without cgroups", func() options { o := pidOpts(); o.graded = true; return o }(), false, "-graded requires cgroup mode"},
		{"memory-high without cgroups", func() options { o := pidOpts(); o.memoryHighMB = 64; return o }(), false, "-memory-high-mb requires"},
		{"cgroup mode missing sensitive", options{batchCgroups: []string{"b"}, qosFiles: []string{"q"}}, false, "-sensitive-cgroup"},
		{"cgroup mode missing batch", options{sensCgroups: []string{"s"}, qosFiles: []string{"q"}}, false, "-batch-cgroups"},
		{"duplicate cgroup", options{sensCgroups: []string{"s"}, batchCgroups: []string{"s"}, qosFiles: []string{"q"}}, false, "listed twice"},
		{"duplicate sensitive cgroup", func() options {
			o := multiOpts()
			o.sensCgroups = []string{"s/vlc", "s/vlc"}
			return o
		}(), false, "listed twice"},
		{"negative memory-high", func() options { o := cgOpts(); o.memoryHighMB = -1; return o }(), false, "non-negative"},
		{"multi pid qos", func() options { o := pidOpts(); o.qosFiles = []string{"a", "b"}; return o }(), false, "one sensitive application"},
		{"qos count mismatch", func() options { o := multiOpts(); o.qosFiles = o.qosFiles[:1]; return o }(), false, "-qos-file"},
		{"app count mismatch", func() options { o := multiOpts(); o.apps = o.apps[:1]; return o }(), false, "one -app per sensitive cgroup"},
		{"duplicate app", func() options { o := multiOpts(); o.apps = []string{"kv", "kv"}; return o }(), false, "distinct -app names"},
		{"event window unbounded ok", func() options { o := cgOpts(); o.eventWindow = -1; return o }(), true, ""},
		{"event window bad", func() options { o := cgOpts(); o.eventWindow = -5; return o }(), false, "-event-window"},
		{"lanes file in pid mode", func() options { o := pidOpts(); o.lanesFile = "lanes.json"; return o }(), false, "-lanes-file requires cgroup mode"},
		{"reload watch without lanes file", func() options { o := cgOpts(); o.reloadWatch = true; return o }(), false, "-reload-watch requires -lanes-file"},
	}
	for _, tt := range tests {
		gotCgroup, err := tt.opts.validate()
		if tt.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tt.name, err)
				continue
			}
			if gotCgroup != tt.wantCgroup {
				t.Errorf("%s: cgroupMode = %v, want %v", tt.name, gotCgroup, tt.wantCgroup)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
			t.Errorf("%s: error = %v, want containing %q", tt.name, err, tt.wantErr)
		}
	}
}

// A misconfigured deployment is diagnosed in ONE attempt: every invalid
// combination appears in the joined error, not just the first.
func TestOptionsValidateReportsAllErrorsAtOnce(t *testing.T) {
	o := options{
		sensCgroups:  []string{"s/vlc", "s/vlc"}, // duplicate
		batchCgroups: nil,                        // missing batch side
		qosFiles:     []string{"q"},              // count mismatch (needs 2)
		apps:         []string{"a", "a", "a"},    // wrong count AND duplicates
		memoryHighMB: -5,                         // negative
	}
	_, err := o.validate()
	if err == nil {
		t.Fatal("expected errors")
	}
	msg := err.Error()
	for _, want := range []string{
		"listed twice",
		"-batch-cgroups required",
		"-qos-file",
		"one -app per sensitive cgroup",
		"distinct -app names",
		"non-negative",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error missing %q:\n%s", want, msg)
		}
	}
}

func TestParseList(t *testing.T) {
	got := parseList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("parseList = %v", got)
	}
	if parseList("") != nil {
		t.Error("empty list should be nil")
	}
}

func TestListFlag(t *testing.T) {
	var l listFlag
	if err := l.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set(" b "); err != nil {
		t.Fatal(err)
	}
	if err := l.Set(""); err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 || l[0] != "a" || l[1] != "b" {
		t.Fatalf("listFlag = %v", l)
	}
	if l.String() != "a,b" {
		t.Fatalf("String() = %q", l.String())
	}
}

func TestTemplateOutPath(t *testing.T) {
	if got := templateOutPath("/tmp/map.json", "vlc", false); got != "/tmp/map.json" {
		t.Fatalf("single = %q", got)
	}
	if got := templateOutPath("/tmp/map.json", "vlc", true); got != "/tmp/map-vlc.json" {
		t.Fatalf("multi = %q", got)
	}
	if got := templateOutPath("/tmp/map", "kv", true); got != "/tmp/map-kv" {
		t.Fatalf("no-ext = %q", got)
	}
}
