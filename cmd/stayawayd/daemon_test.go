package main

// Binary-level integration tests: the test binary re-execs itself as
// stayawayd (see TestMain) against a throwaway cgroup tree made of plain
// files, so the full daemon — flags, collector, arbiter, admin surface,
// hot reload, graceful shutdown — runs without root or a real cgroupfs.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/daemon"
)

func TestMain(m *testing.M) {
	if os.Getenv("STAYAWAYD_TEST_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// writeCgroupTree lays out the file set the cgroup package reads and
// writes, with one member process per group so every workload counts as
// running.
func writeCgroupTree(t *testing.T, root string, groups ...string) {
	t.Helper()
	for _, g := range groups {
		dir := filepath.Join(root, g)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		files := map[string]string{
			"cgroup.procs":   "12345\n",
			"cgroup.freeze":  "0\n",
			"cpu.max":        "max 100000\n",
			"memory.high":    "max\n",
			"cpu.stat":       "usage_usec 0\nuser_usec 0\nsystem_usec 0\n",
			"memory.current": "0\n",
			"io.stat":        "",
		}
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

type daemonProc struct {
	cmd      *exec.Cmd
	adminURL string
	done     chan error
	output   *strings.Builder
}

// startDaemon re-execs the test binary as stayawayd and, when the args
// include -admin-addr, scans stdout for the bound address.
func startDaemon(t *testing.T, args ...string) *daemonProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "STAYAWAYD_TEST_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &daemonProc{cmd: cmd, done: make(chan error, 1), output: &strings.Builder{}}
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.output.WriteString(line + "\n")
			if rest, ok := strings.CutPrefix(line, "stayawayd: admin surface on "); ok {
				select {
				case addr <- strings.TrimSpace(rest):
				default:
				}
			}
		}
		p.done <- cmd.Wait()
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		select {
		case <-p.done:
		case <-time.After(5 * time.Second):
		}
	})
	wantAdmin := false
	for _, a := range args {
		if a == "-admin-addr" {
			wantAdmin = true
		}
	}
	if wantAdmin {
		select {
		case p.adminURL = <-addr:
		case err := <-p.done:
			t.Fatalf("daemon exited before binding the admin surface (%v):\n%s", err, p.output.String())
		case <-time.After(10 * time.Second):
			t.Fatalf("no admin address announced:\n%s", p.output.String())
		}
	}
	return p
}

// readyz polls GET /readyz until cond accepts the status or the deadline
// passes.
func readyz(t *testing.T, p *daemonProc, cond func(code int, s daemon.Status) bool) daemon.Status {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last daemon.Status
	var lastCode int
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.adminURL + "/readyz")
		if err == nil {
			lastCode = resp.StatusCode
			err = json.NewDecoder(resp.Body).Decode(&last)
			resp.Body.Close()
			if err == nil && cond(lastCode, last) {
				return last
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("readyz condition not met (last code %d, status %+v):\n%s", lastCode, last, p.output.String())
	return last
}

func writeFileT(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func laneJSON(defs ...[3]string) string {
	var b strings.Builder
	b.WriteString(`{"version":1,"lanes":[`)
	for i, d := range defs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"app":%q,"sensitive_cgroup":%q,"qos_file":%q}`, d[0], d[1], d[2])
	}
	b.WriteString(`]}`)
	return b.String()
}

// TestDaemonReloadLifecycle drives the full zero-downtime story against a
// live daemon: start with one lane, SIGHUP to two, reject a bad config
// without disturbing the running set, shrink back via POST /v1/reload,
// and SIGTERM — then inspect the tree: nothing left frozen, every lane's
// learned state flushed.
func TestDaemonReloadLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon subprocess")
	}
	root := t.TempDir()
	stateDir := filepath.Join(root, "state")
	writeCgroupTree(t, root, "s/vlc", "s/kv", "s/b1", "s/b2")
	vlcQoS := filepath.Join(root, "vlc.qos")
	kvQoS := filepath.Join(root, "kv.qos")
	writeFileT(t, vlcQoS, "0.9 0.5\n")
	writeFileT(t, kvQoS, "0.9 0.5\n")
	lanesPath := filepath.Join(root, "lanes.json")
	writeFileT(t, lanesPath, laneJSON([3]string{"vlc", "s/vlc", vlcQoS}))

	p := startDaemon(t,
		"-lanes-file", lanesPath,
		"-batch-cgroups", "s/b1,s/b2",
		"-cgroup-root", root,
		"-state-dir", stateDir,
		"-checkpoint-every", "2",
		"-watchdog-grace", "0",
		"-period", "25ms",
		"-admin-addr", "127.0.0.1:0",
	)

	readyz(t, p, func(code int, s daemon.Status) bool {
		return code == http.StatusOK && len(s.Lanes) == 1 && s.Lanes[0].App == "vlc"
	})

	// Grow to two lanes via SIGHUP.
	writeFileT(t, lanesPath, laneJSON(
		[3]string{"vlc", "s/vlc", vlcQoS},
		[3]string{"kv", "s/kv", kvQoS},
	))
	if err := p.cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	readyz(t, p, func(code int, s daemon.Status) bool {
		return code == http.StatusOK && len(s.Lanes) == 2 && s.Reload.Applied >= 1
	})

	// A bad config is rejected with a reason; both lanes keep running.
	writeFileT(t, lanesPath, `{"version":9,"lanes":[]}`)
	if err := p.cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	readyz(t, p, func(code int, s daemon.Status) bool {
		return code == http.StatusOK && len(s.Lanes) == 2 &&
			strings.Contains(s.Reload.LastError, "version 9")
	})

	// Shrink back through the programmatic twin of SIGHUP.
	writeFileT(t, lanesPath, laneJSON([3]string{"kv", "s/kv", kvQoS}))
	resp, err := http.Post(p.adminURL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/reload = %d, want 202", resp.StatusCode)
	}
	readyz(t, p, func(code int, s daemon.Status) bool {
		return code == http.StatusOK && len(s.Lanes) == 1 && s.Lanes[0].App == "kv"
	})

	// Graceful shutdown.
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, p.output.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit on SIGTERM:\n%s", p.output.String())
	}

	// Inspect: nothing frozen, no lingering quota, learned state on disk
	// for the removed lane (flushed at removal) and the surviving one
	// (flushed at shutdown).
	for _, g := range []string{"s/b1", "s/b2"} {
		data, err := os.ReadFile(filepath.Join(root, g, "cgroup.freeze"))
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSpace(string(data)); got != "0" {
			t.Errorf("%s left frozen (%q) after graceful shutdown", g, got)
		}
	}
	for _, app := range []string{"vlc", "kv"} {
		ck := filepath.Join(stateDir, "checkpoint-"+app+".json")
		if _, err := os.Stat(ck); err != nil {
			t.Errorf("missing checkpoint for %s: %v", app, err)
		}
	}
}

// TestDaemonKillAndInspect is the graceful-shutdown satellite in legacy
// flag mode: a batch cgroup frozen mid-run (here by an outside hand) is
// thawed on SIGTERM, the legacy checkpoint is written, and the exit is
// clean.
func TestDaemonKillAndInspect(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon subprocess")
	}
	root := t.TempDir()
	stateDir := filepath.Join(root, "state")
	writeCgroupTree(t, root, "s/vlc", "s/b1", "s/b2")
	qos := filepath.Join(root, "vlc.qos")
	writeFileT(t, qos, "0.9 0.5\n")

	p := startDaemon(t,
		"-sensitive-cgroup", "s/vlc",
		"-qos-file", qos,
		"-batch-cgroups", "s/b1,s/b2",
		"-cgroup-root", root,
		"-state-dir", stateDir,
		"-checkpoint-every", "2",
		"-watchdog-grace", "0",
		"-period", "25ms",
		"-admin-addr", "127.0.0.1:0",
	)
	readyz(t, p, func(code int, s daemon.Status) bool {
		return code == http.StatusOK && s.Periods >= 3
	})

	// Someone (or a crashed co-tenant controller) freezes a batch cgroup
	// behind the daemon's back.
	writeFileT(t, filepath.Join(root, "s/b1", "cgroup.freeze"), "1\n")

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, p.output.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit on SIGTERM:\n%s", p.output.String())
	}

	data, err := os.ReadFile(filepath.Join(root, "s/b1", "cgroup.freeze"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != "0" {
		t.Errorf("s/b1 left frozen (%q): shutdown must thaw everything", got)
	}
	// Legacy single-lane layout keeps the unsuffixed checkpoint name.
	if _, err := os.Stat(filepath.Join(stateDir, "checkpoint.json")); err != nil {
		t.Errorf("legacy checkpoint missing: %v", err)
	}
}
