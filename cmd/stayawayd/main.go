// Command stayawayd runs the Stay-Away middleware against real Linux
// processes: per-PID resource usage is sampled from /proc, QoS violations
// are read from a report file the sensitive application rewrites each
// period ("<value> <threshold>"), and batch processes are throttled with
// SIGSTOP/SIGCONT — the exact actuation of the paper's prototype.
//
// Usage (as root or owning the target processes):
//
//	stayawayd -sensitive-pids 1234 -batch-pids 5678,5679 \
//	          -qos-file /run/vlc.qos -period 1s [-cores 4] [-v]
//
// The daemon runs until SIGINT/SIGTERM; on shutdown it resumes any
// throttled batch processes and prints the final report. A learned map
// can be exported with -template-out.
//
// With -registry the daemon joins a fleet: it pulls the consensus template
// for -app at startup (skipping the learning phase when another host has
// already mapped the application), pushes its own map every -sync-every
// periods plus once on shutdown, and heartbeats its status. Registry
// outages never interrupt control — the daemon degrades to its local map
// and resyncs when the registry returns.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/procenv"
	"repro/internal/throttle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stayawayd:", err)
		os.Exit(1)
	}
}

func parsePIDs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pid, err := strconv.Atoi(part)
		if err != nil || pid <= 0 {
			return nil, fmt.Errorf("invalid PID %q", part)
		}
		out = append(out, pid)
	}
	return out, nil
}

func run() error {
	sensitivePIDs := flag.String("sensitive-pids", "", "comma-separated PIDs of the sensitive application")
	batchPIDs := flag.String("batch-pids", "", "comma-separated PIDs of the batch applications")
	qosFile := flag.String("qos-file", "", "file the sensitive app rewrites with \"<value> <threshold>\"")
	period := flag.Duration("period", time.Second, "monitoring period")
	cores := flag.Int("cores", runtime.NumCPU(), "host cores (CPU normalization range)")
	memoryMB := flag.Float64("memory-mb", 4096, "host memory (normalization range)")
	diskMBps := flag.Float64("disk-mbps", 200, "disk capacity (normalization range)")
	templateOut := flag.String("template-out", "", "write the learned template JSON on exit")
	registryURL := flag.String("registry", "", "fleet registry base URL (empty = standalone)")
	app := flag.String("app", "sensitive", "fleet-wide application name for template sharing")
	hostID := flag.String("host-id", "", "host identity reported to the registry (default: hostname)")
	syncEvery := flag.Int("sync-every", 30, "periods between registry pushes")
	verbose := flag.Bool("v", false, "print every period event")
	flag.Parse()

	sens, err := parsePIDs(*sensitivePIDs)
	if err != nil || len(sens) == 0 {
		return fmt.Errorf("-sensitive-pids required: %v", err)
	}
	batch, err := parsePIDs(*batchPIDs)
	if err != nil || len(batch) == 0 {
		return fmt.Errorf("-batch-pids required: %v", err)
	}
	if *qosFile == "" {
		return fmt.Errorf("-qos-file required")
	}

	collector, err := procenv.NewCollector("/proc", 100, []procenv.Group{
		{Name: "sensitive", PIDs: sens},
		{Name: "batch", PIDs: batch},
	})
	if err != nil {
		return err
	}
	env, err := procenv.NewEnvironment(collector, "sensitive", []string{"batch"},
		procenv.FileQoS{Path: *qosFile})
	if err != nil {
		return err
	}

	// The runtime throttles the logical "batch" VM; the actuator translates
	// that into signals to the concrete PIDs behind it.
	actuator := &throttle.ProcessActuator{}
	batchStrings := env.BatchPIDs()
	wrapped := throttle.FuncActuator{
		PauseFn:  func([]string) error { return actuator.Pause(batchStrings) },
		ResumeFn: func([]string) error { return actuator.Resume(batchStrings) },
	}
	cfg := core.DefaultConfig("sensitive", []string{"batch"},
		metrics.DefaultRanges(*cores, *memoryMB, *diskMBps, 1000))
	cfg.Seed = time.Now().UnixNano()
	cfg.SensitiveApp = *app
	rt, err := core.New(cfg, env, wrapped)
	if err != nil {
		return err
	}

	// Fleet wiring: pull the consensus map before the first period; a cold
	// or unreachable registry never blocks startup.
	var syncer *fleet.Syncer
	if *registryURL != "" {
		client, err := fleet.NewClient(fleet.ClientConfig{BaseURL: *registryURL})
		if err != nil {
			return err
		}
		host := *hostID
		if host == "" {
			if host, err = os.Hostname(); err != nil {
				host = "unknown-host"
			}
		}
		syncer = fleet.NewSyncer(client, host, *app)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		tpl, rev, err := syncer.Bootstrap(ctx)
		cancel()
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "stayawayd: registry bootstrap failed, starting cold: %v\n", err)
		case tpl == nil:
			fmt.Printf("stayawayd: registry has no template for %q yet, learning from scratch\n", *app)
		default:
			if err := rt.ImportTemplate(tpl); err != nil {
				fmt.Fprintf(os.Stderr, "stayawayd: fleet template rejected, starting cold: %v\n", err)
			} else {
				fmt.Printf("stayawayd: bootstrapped %q from fleet revision %d (%d states)\n",
					*app, rev, len(tpl.States))
			}
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*period)
	defer ticker.Stop()

	if *syncEvery <= 0 {
		*syncEvery = 30
	}
	var periods, violations int
	sync := func(throttled bool) {
		if rt.Space().Len() > 0 {
			if err := syncer.PushTemplate(rt.ExportTemplate(*app)); err != nil {
				fmt.Fprintln(os.Stderr, "stayawayd: registry push failed (degraded, continuing):", err)
			}
		}
		if err := syncer.Heartbeat(fleet.Heartbeat{
			Periods: periods, Violations: violations, Throttled: throttled,
		}); err == nil {
			if degraded, _ := syncer.Degraded(); !degraded && *verbose {
				fmt.Println("stayawayd: registry sync ok, revision", syncer.LastRevision())
			}
		}
	}

	fmt.Printf("stayawayd: monitoring sensitive=%v batch=%v every %v\n", sens, batch, *period)
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			ev, err := rt.Period()
			if err != nil {
				fmt.Fprintln(os.Stderr, "stayawayd: period:", err)
				continue
			}
			periods++
			if ev.Violation {
				violations++
			}
			if *verbose || ev.Violation || ev.Action != throttle.ActionNone {
				fmt.Println(ev)
			}
			if syncer != nil && periods%*syncEvery == 0 {
				sync(ev.Throttled)
			}
			if !env.BatchActive() && !env.SensitiveRunning() {
				fmt.Println("stayawayd: all monitored processes exited")
				break loop
			}
		}
	}

	// Never leave batch processes stopped on exit.
	if err := actuator.Resume(batchStrings); err != nil {
		fmt.Fprintln(os.Stderr, "stayawayd: final resume:", err)
	}
	// Share the freshest map with the fleet before exiting.
	if syncer != nil {
		sync(false)
	}
	fmt.Println(rt.Report())
	if *templateOut != "" {
		f, err := os.Create(*templateOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := rt.ExportTemplate("sensitive").WriteTo(f); err != nil {
			return err
		}
		fmt.Printf("template written to %s\n", *templateOut)
	}
	return nil
}
