// Command stayawayd runs the Stay-Away middleware against real Linux
// workloads. QoS violations are read from a report file the sensitive
// application rewrites each period ("<value> <threshold>"). Two
// actuation/telemetry modes are available:
//
// PID mode (the paper's prototype): per-PID resource usage is sampled
// from /proc and batch processes are throttled with SIGSTOP/SIGCONT.
//
//	stayawayd -sensitive-pids 1234 -batch-pids 5678,5679 \
//	          -qos-file /run/vlc.qos -period 1s [-cores 4] [-v]
//
// cgroup mode: usage is read from cgroup v2 accounting files (cpu.stat,
// memory.current, io.stat) and batch cgroups are throttled through
// cgroup.freeze — or, with -graded, stepped cpu.max quotas that escalate
// to a freeze as the predicted violation proximity grows. If a control
// file turns out to be unwritable the actuator degrades to signalling the
// cgroup's member processes; a cgroup that vanishes mid-run is treated as
// finished work, never an error.
//
//	stayawayd -sensitive-cgroup stayaway/vlc -batch-cgroups stayaway/b1,stayaway/b2 \
//	          -qos-file /run/vlc.qos [-cgroup-root /sys/fs/cgroup] [-graded] \
//	          [-memory-high-mb 512]
//
// The two modes are mutually exclusive. The daemon runs until SIGINT/
// SIGTERM; on shutdown it releases any throttled batch workloads and
// prints the final report. A learned map can be exported with
// -template-out (written atomically: temp file + rename).
//
// With -registry the daemon joins a fleet: it pulls the consensus template
// for -app at startup (skipping the learning phase when another host has
// already mapped the application), pushes its own map every -sync-every
// periods plus once on shutdown, and heartbeats its status. Registry
// outages never interrupt control — the daemon degrades to its local map
// and resyncs when the registry returns.
//
// With -state-dir the daemon becomes crash-safe: every restrictive
// actuation is recorded in an on-disk ledger BEFORE it is applied, the
// learned state (template, trajectory histograms, β) is checkpointed
// atomically every -checkpoint-every periods, and at boot the daemon
// replays the ledger — thawing every cgroup a previous incarnation may
// have left frozen (after a SIGKILL, an OOM kill, a panic) — then
// restores the checkpoint so no learning is lost. -recover-only performs
// just the ledger replay and exits, for init containers and manual
// incident response. A watchdog (disable with -watchdog-grace 0) runs
// beside the control loop and thaws everything if the loop stops beating
// — e.g. blocked on a hung cgroupfs read. A corrupt ledger or checkpoint
// is logged and ignored, never fatal: the daemon starts cold rather than
// refusing to protect.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cgroup"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/fsatomic"
	"repro/internal/metrics"
	"repro/internal/procenv"
	"repro/internal/resilience"
	"repro/internal/throttle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stayawayd:", err)
		os.Exit(1)
	}
}

func parsePIDs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pid, err := strconv.Atoi(part)
		if err != nil || pid <= 0 {
			return nil, fmt.Errorf("invalid PID %q", part)
		}
		out = append(out, pid)
	}
	return out, nil
}

func parseList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// options is everything validateOptions needs to decide whether the flag
// set describes a coherent deployment.
type options struct {
	sensitivePIDs []int
	batchPIDs     []int
	sensCgroup    string
	batchCgroups  []string
	qosFile       string
	graded        bool
	memoryHighMB  float64
	recoverOnly   bool
}

// validateOptions enforces the daemon's startup contract up front, before
// anything touches /proc or cgroupfs: a QoS source is mandatory (without
// the violation signal Stay-Away cannot learn anything), PID mode and
// cgroup mode are mutually exclusive, each mode needs both its sensitive
// and batch side, the two PID sets must not overlap (throttling the
// sensitive app defeats the purpose), and graded throttling requires the
// cgroup actuator (SIGSTOP has no intermediate levels).
func (o options) validate() (cgroupMode bool, err error) {
	if o.qosFile == "" && !o.recoverOnly {
		return false, fmt.Errorf("-qos-file required: the application's QoS report is the violation signal (§3.1)")
	}
	pidMode := len(o.sensitivePIDs) > 0 || len(o.batchPIDs) > 0
	cgroupMode = o.sensCgroup != "" || len(o.batchCgroups) > 0
	switch {
	case pidMode && cgroupMode:
		return false, fmt.Errorf("PID flags (-sensitive-pids/-batch-pids) and cgroup flags " +
			"(-sensitive-cgroup/-batch-cgroups) are mutually exclusive; pick one mode")
	case !pidMode && !cgroupMode:
		return false, fmt.Errorf("no workloads given: use -sensitive-pids/-batch-pids (PID mode) " +
			"or -sensitive-cgroup/-batch-cgroups (cgroup mode)")
	case pidMode:
		if len(o.sensitivePIDs) == 0 {
			return false, fmt.Errorf("-sensitive-pids required in PID mode")
		}
		if len(o.batchPIDs) == 0 {
			return false, fmt.Errorf("-batch-pids required in PID mode")
		}
		sens := make(map[int]bool, len(o.sensitivePIDs))
		for _, pid := range o.sensitivePIDs {
			sens[pid] = true
		}
		for _, pid := range o.batchPIDs {
			if sens[pid] {
				return false, fmt.Errorf("PID %d is listed as both sensitive and batch; "+
					"throttling the sensitive application defeats the purpose", pid)
			}
		}
		if o.graded {
			return false, fmt.Errorf("-graded requires cgroup mode: SIGSTOP has no intermediate levels")
		}
		if o.memoryHighMB > 0 {
			return false, fmt.Errorf("-memory-high-mb requires cgroup mode")
		}
	default: // cgroup mode
		if o.sensCgroup == "" && !o.recoverOnly {
			// Recovery replays the ledger against the batch cgroups only;
			// the operator of a dead daemon shouldn't need its full config.
			return false, fmt.Errorf("-sensitive-cgroup required in cgroup mode")
		}
		if len(o.batchCgroups) == 0 {
			return false, fmt.Errorf("-batch-cgroups required in cgroup mode")
		}
		seen := map[string]bool{o.sensCgroup: true}
		for _, cg := range o.batchCgroups {
			if seen[cg] {
				return false, fmt.Errorf("cgroup %q listed twice (or as both sensitive and batch)", cg)
			}
			seen[cg] = true
		}
	}
	if o.memoryHighMB < 0 {
		return false, fmt.Errorf("-memory-high-mb must be non-negative, got %v", o.memoryHighMB)
	}
	return cgroupMode, nil
}

func run() error {
	sensitivePIDs := flag.String("sensitive-pids", "", "comma-separated PIDs of the sensitive application (PID mode)")
	batchPIDs := flag.String("batch-pids", "", "comma-separated PIDs of the batch applications (PID mode)")
	sensCgroup := flag.String("sensitive-cgroup", "", "sensitive application's cgroup, relative to -cgroup-root (cgroup mode)")
	batchCgroups := flag.String("batch-cgroups", "", "comma-separated batch cgroups, relative to -cgroup-root (cgroup mode)")
	cgroupRoot := flag.String("cgroup-root", "/sys/fs/cgroup", "cgroup v2 hierarchy mount point")
	graded := flag.Bool("graded", false, "graded throttling: step cpu.max quotas before freezing (cgroup mode only)")
	memoryHighMB := flag.Float64("memory-high-mb", 0, "memory.high soft limit applied to throttled batch cgroups (0 = off)")
	qosFile := flag.String("qos-file", "", "file the sensitive app rewrites with \"<value> <threshold>\"")
	period := flag.Duration("period", time.Second, "monitoring period")
	cores := flag.Int("cores", runtime.NumCPU(), "host cores (CPU normalization range)")
	memoryMB := flag.Float64("memory-mb", 4096, "host memory (normalization range)")
	diskMBps := flag.Float64("disk-mbps", 200, "disk capacity (normalization range)")
	templateOut := flag.String("template-out", "", "write the learned template JSON on exit")
	stateDir := flag.String("state-dir", "", "directory for the actuation ledger and learned-state checkpoints (empty = no crash safety)")
	recoverOnly := flag.Bool("recover-only", false, "replay the ledger (thaw everything a dead daemon left throttled) and exit; requires -state-dir")
	checkpointEvery := flag.Int("checkpoint-every", 30, "periods between learned-state checkpoints (requires -state-dir)")
	watchdogGrace := flag.Int("watchdog-grace", 3, "missed periods before the watchdog thaws everything (0 = no watchdog)")
	registryURL := flag.String("registry", "", "fleet registry base URL (empty = standalone)")
	app := flag.String("app", "sensitive", "fleet-wide application name for template sharing")
	hostID := flag.String("host-id", "", "host identity reported to the registry (default: hostname)")
	syncEvery := flag.Int("sync-every", 30, "periods between registry pushes")
	verbose := flag.Bool("v", false, "print every period event")
	flag.Parse()

	sens, err := parsePIDs(*sensitivePIDs)
	if err != nil {
		return fmt.Errorf("-sensitive-pids: %v", err)
	}
	batch, err := parsePIDs(*batchPIDs)
	if err != nil {
		return fmt.Errorf("-batch-pids: %v", err)
	}
	opts := options{
		sensitivePIDs: sens,
		batchPIDs:     batch,
		sensCgroup:    *sensCgroup,
		batchCgroups:  parseList(*batchCgroups),
		qosFile:       *qosFile,
		graded:        *graded,
		memoryHighMB:  *memoryHighMB,
		recoverOnly:   *recoverOnly,
	}
	cgroupMode, err := opts.validate()
	if err != nil {
		return err
	}
	if *recoverOnly && *stateDir == "" {
		return fmt.Errorf("-recover-only requires -state-dir (the ledger to replay)")
	}

	// In recover-only mode no QoS report is needed (nothing is learned);
	// a static non-violating source satisfies the environment's contract.
	var qos procenv.QoSSource = procenv.FileQoS{Path: *qosFile}
	if *qosFile == "" {
		qos = procenv.StaticQoS{Value: 1, Threshold: 0}
	}
	var (
		env      core.Environment
		batchIDs []string // the IDs the throttle controller actuates
		act      throttle.Actuator
		release  func() error // final cleanup: never leave batch work throttled
		watching string
	)

	if cgroupMode {
		cfs := cgroup.DirFS{Root: *cgroupRoot}
		actuator, err := cgroup.NewActuator(cfs, cgroup.ActuatorConfig{
			MaxCPU:          float64(*cores),
			MemoryHighBytes: int64(opts.memoryHighMB * (1 << 20)),
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "stayawayd: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		batchIDs = opts.batchCgroups
		act = actuator
		release = func() error { return actuator.Resume(opts.batchCgroups) }
		// Recovery replays the ledger against the actuator alone; the
		// telemetry side is only assembled for a real control run.
		if !opts.recoverOnly {
			groups := []cgroup.Group{{Name: "sensitive", Path: opts.sensCgroup}}
			for _, cg := range opts.batchCgroups {
				groups = append(groups, cgroup.Group{Name: cg, Path: cg})
			}
			collector, err := cgroup.NewCollector(cfs, groups)
			if err != nil {
				return err
			}
			cgEnv, err := procenv.NewEnvironment(collector, "sensitive", opts.batchCgroups, qos)
			if err != nil {
				return err
			}
			// Probe up front so the operator learns at startup — not mid-
			// incident — whether actuation will use cgroup controls or degrade
			// to signals.
			for _, cg := range opts.batchCgroups {
				if err := actuator.Probe(cg); err != nil {
					fmt.Fprintf(os.Stderr, "stayawayd: warning: %v; actuation for %q will degrade to SIGSTOP/SIGCONT\n", err, cg)
				}
			}
			if !cfs.Exists(opts.sensCgroup) {
				fmt.Fprintf(os.Stderr, "stayawayd: warning: sensitive cgroup %q not found (yet)\n", opts.sensCgroup)
			}
			env = cgEnv
		}
		watching = fmt.Sprintf("sensitive=%s batch=%v (cgroup mode, root=%s)",
			opts.sensCgroup, opts.batchCgroups, *cgroupRoot)
	} else {
		// The runtime throttles the logical "batch" VM; the actuator
		// translates that into signals to the concrete PIDs behind it.
		actuator := &throttle.ProcessActuator{}
		batchStrings := make([]string, len(batch))
		for i, pid := range batch {
			batchStrings[i] = strconv.Itoa(pid)
		}
		batchIDs = []string{"batch"}
		act = throttle.FuncActuator{
			PauseFn:  func([]string) error { return actuator.Pause(batchStrings) },
			ResumeFn: func([]string) error { return actuator.Resume(batchStrings) },
		}
		release = func() error { return actuator.Resume(batchStrings) }
		if !opts.recoverOnly {
			collector, err := procenv.NewCollector("/proc", 100, []procenv.Group{
				{Name: "sensitive", PIDs: sens},
				{Name: "batch", PIDs: batch},
			})
			if err != nil {
				return err
			}
			pidEnv, err := procenv.NewEnvironment(collector, "sensitive", []string{"batch"}, qos)
			if err != nil {
				return err
			}
			env = pidEnv
		}
		watching = fmt.Sprintf("sensitive=%v batch=%v (PID mode)", sens, batch)
	}

	// Crash safety: replay the previous incarnation's actuation ledger
	// before anything else — if a dead daemon left cgroups frozen, thawing
	// them outranks every other startup step. The ledger is an upper bound
	// on applied throttling (restrictions are recorded before actuation,
	// releases after), so replay can only over-thaw, which is idempotent.
	var (
		ledger         *resilience.Ledger
		checkpointPath string
	)
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			return fmt.Errorf("-state-dir: %v", err)
		}
		checkpointPath = filepath.Join(*stateDir, "checkpoint.json")
		ledger, err = resilience.OpenLedger(filepath.Join(*stateDir, "ledger.json"))
		if err != nil {
			// A corrupt ledger cannot tell us what was throttled, so assume
			// the worst: recovery below thaws every configured batch ID.
			fmt.Fprintf(os.Stderr, "stayawayd: ledger unreadable, assuming everything throttled: %v\n", err)
		}
		thawed, err := resilience.Recover(ledger, act, batchIDs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stayawayd: ledger recovery: %v\n", err)
		}
		if len(thawed) > 0 {
			fmt.Printf("stayawayd: recovered: thawed %v\n", thawed)
		}
		if *recoverOnly {
			if err != nil {
				return fmt.Errorf("recovery incomplete: %w", err)
			}
			fmt.Println("stayawayd: recovery complete")
			return nil
		}
		// From here on, every restrictive actuation hits the ledger first.
		la, err := resilience.NewLedgeredActuator(act, ledger)
		if err != nil {
			return err
		}
		act = la
		innerRelease := release
		release = func() error {
			// Recover rather than plain Resume: it also clears graded
			// quotas and resets the ledger so the next boot is clean.
			if _, err := resilience.Recover(ledger, act, batchIDs); err != nil {
				return err
			}
			return innerRelease()
		}
	}

	cfg := core.DefaultConfig("sensitive", batchIDs,
		metrics.DefaultRanges(*cores, *memoryMB, *diskMBps, 1000))
	cfg.Seed = time.Now().UnixNano()
	cfg.SensitiveApp = *app
	if *graded {
		cfg.Throttle.Policy = throttle.PolicyGraded
	}
	rt, err := core.New(cfg, env, act)
	if err != nil {
		return err
	}

	// Restore the learned-state checkpoint before the first period. A
	// missing checkpoint is a cold start; a corrupt or incompatible one is
	// logged and ignored — losing learned state is recoverable, refusing
	// to start is not.
	restored := false
	if checkpointPath != "" {
		switch ck, err := resilience.LoadCheckpoint(checkpointPath); {
		case err != nil:
			fmt.Fprintf(os.Stderr, "stayawayd: checkpoint unreadable, starting cold: %v\n", err)
		case ck != nil:
			if err := rt.RestoreCheckpoint(ck); err != nil {
				fmt.Fprintf(os.Stderr, "stayawayd: checkpoint rejected, starting cold: %v\n", err)
			} else {
				restored = true
				fmt.Printf("stayawayd: restored checkpoint (%d periods of learning, %d states)\n",
					ck.Periods, len(ck.Template.States))
			}
		}
	}

	// Fleet wiring: pull the consensus map before the first period; a cold
	// or unreachable registry never blocks startup.
	var syncer *fleet.Syncer
	if *registryURL != "" {
		client, err := fleet.NewClient(fleet.ClientConfig{BaseURL: *registryURL})
		if err != nil {
			return err
		}
		host := *hostID
		if host == "" {
			if host, err = os.Hostname(); err != nil {
				host = "unknown-host"
			}
		}
		syncer = fleet.NewSyncer(client, host, *app)
		if restored {
			// The local checkpoint is this host's own learned map; adopting
			// the fleet template would discard it. Keep the local state and
			// let the periodic pushes reconcile with the registry.
			fmt.Printf("stayawayd: checkpoint restored; skipping fleet bootstrap for %q\n", *app)
		} else {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			tpl, rev, err := syncer.Bootstrap(ctx)
			cancel()
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "stayawayd: registry bootstrap failed, starting cold: %v\n", err)
			case tpl == nil:
				fmt.Printf("stayawayd: registry has no template for %q yet, learning from scratch\n", *app)
			default:
				if err := rt.ImportTemplate(tpl); err != nil {
					fmt.Fprintf(os.Stderr, "stayawayd: fleet template rejected, starting cold: %v\n", err)
				} else {
					fmt.Printf("stayawayd: bootstrapped %q from fleet revision %d (%d states)\n",
						*app, rev, len(tpl.States))
				}
			}
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*period)
	defer ticker.Stop()

	if *syncEvery <= 0 {
		*syncEvery = 30
	}
	var periods, violations int
	sync := func(throttled bool) {
		if rt.Space().Len() > 0 {
			if err := syncer.PushTemplate(rt.ExportTemplate(*app)); err != nil {
				fmt.Fprintln(os.Stderr, "stayawayd: registry push failed (degraded, continuing):", err)
			}
		}
		if err := syncer.Heartbeat(fleet.Heartbeat{
			Periods: periods, Violations: violations, Throttled: throttled,
		}); err == nil {
			if degraded, _ := syncer.Degraded(); !degraded && *verbose {
				fmt.Println("stayawayd: registry sync ok, revision", syncer.LastRevision())
			}
		}
	}

	// The watchdog runs beside the loop: if periods stop completing (a
	// hung cgroupfs read blocks the collector, say), it thaws everything
	// from its own goroutine — the stalled loop cannot.
	var wd *resilience.Watchdog
	if *watchdogGrace > 0 {
		wd, err = resilience.NewWatchdog(resilience.WatchdogConfig{
			Period: *period,
			Grace:  *watchdogGrace,
			OnStall: func(since time.Duration) {
				fmt.Fprintf(os.Stderr, "stayawayd: watchdog: no completed period for %v, thawing everything\n", since)
				if err := release(); err != nil {
					fmt.Fprintln(os.Stderr, "stayawayd: watchdog release:", err)
				}
			},
		})
		if err != nil {
			return err
		}
		wdCtx, wdCancel := context.WithCancel(context.Background())
		defer wdCancel()
		go wd.Run(wdCtx)
	}

	if *checkpointEvery <= 0 {
		*checkpointEvery = 30
	}
	checkpoint := func() {
		if checkpointPath == "" || rt.Space().Len() == 0 {
			return
		}
		if err := resilience.SaveCheckpoint(checkpointPath, rt.Checkpoint()); err != nil {
			fmt.Fprintln(os.Stderr, "stayawayd: checkpoint:", err)
		}
	}

	fmt.Printf("stayawayd: monitoring %s every %v\n", watching, *period)
	// The loop body runs under a recover barrier so that even a panic in
	// the runtime falls through to the release below — a crashing daemon
	// must never strand batch workloads frozen. (SIGKILL still can; that
	// is what the ledger replay at next boot is for.)
	loopErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("control loop panic: %v", r)
			}
		}()
	loop:
		for {
			select {
			case <-stop:
				break loop
			case <-ticker.C:
				ev, err := rt.Period()
				if err != nil {
					fmt.Fprintln(os.Stderr, "stayawayd: period:", err)
					continue
				}
				if wd != nil {
					wd.Beat()
				}
				periods++
				if ev.Violation {
					violations++
				}
				if *verbose || ev.Violation || ev.Action != throttle.ActionNone {
					fmt.Println(ev)
				}
				if syncer != nil && periods%*syncEvery == 0 {
					sync(ev.Throttled)
				}
				if periods%*checkpointEvery == 0 {
					checkpoint()
				}
				if !env.BatchActive() && !env.SensitiveRunning() {
					fmt.Println("stayawayd: all monitored workloads exited")
					break loop
				}
			}
		}
		return nil
	}()

	// Never leave batch workloads throttled on exit — including after a
	// panic absorbed above.
	if err := release(); err != nil {
		fmt.Fprintln(os.Stderr, "stayawayd: final release:", err)
	}
	if loopErr != nil {
		// No final checkpoint after a panic: mid-period invariants cannot
		// be trusted, and a corrupt checkpoint is worse than a stale one.
		return loopErr
	}
	checkpoint()
	// Share the freshest map with the fleet before exiting.
	if syncer != nil {
		sync(false)
	}
	fmt.Println(rt.Report())
	if *templateOut != "" {
		err := fsatomic.WriteFileFunc(*templateOut, 0o644, func(w io.Writer) error {
			_, err := rt.ExportTemplate(*app).WriteTo(w)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("template written to %s\n", *templateOut)
	}
	return nil
}
