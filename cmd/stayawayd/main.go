// Command stayawayd runs the Stay-Away middleware against real Linux
// workloads. QoS violations are read from a report file the sensitive
// application rewrites each period ("<value> <threshold>"). Two
// actuation/telemetry modes are available:
//
// PID mode (the paper's prototype): per-PID resource usage is sampled
// from /proc and batch processes are throttled with SIGSTOP/SIGCONT.
//
//	stayawayd -sensitive-pids 1234 -batch-pids 5678,5679 \
//	          -qos-file /run/vlc.qos -period 1s [-cores 4] [-v]
//
// cgroup mode: usage is read from cgroup v2 accounting files (cpu.stat,
// memory.current, io.stat) and batch cgroups are throttled through
// cgroup.freeze — or, with -graded, stepped cpu.max quotas that escalate
// to a freeze as the predicted violation proximity grows. If a control
// file turns out to be unwritable the actuator degrades to signalling the
// cgroup's member processes; a cgroup that vanishes mid-run is treated as
// finished work, never an error.
//
//	stayawayd -sensitive-cgroup stayaway/vlc -batch-cgroups stayaway/b1,stayaway/b2 \
//	          -qos-file /run/vlc.qos [-cgroup-root /sys/fs/cgroup] [-graded] \
//	          [-memory-high-mb 512]
//
// -sensitive-cgroup, -qos-file and -app are repeatable: giving them N
// times protects N sensitive applications on one host, each with its own
// pipeline lane (state space, trajectory models, learned β, checkpoint),
// all sharing the batch cgroups. The lanes' throttle decisions are merged
// by an actuation arbiter: freeze is a union, graded quotas take the most
// severe request, and the shared pool is released only when every
// restricting lane has satisfied its own resume condition.
//
//	stayawayd -sensitive-cgroup s/vlc -qos-file /run/vlc.qos -app vlc \
//	          -sensitive-cgroup s/kv  -qos-file /run/kv.qos  -app kv \
//	          -batch-cgroups s/b1,s/b2
//
// The two modes are mutually exclusive. The daemon runs until SIGINT/
// SIGTERM; on shutdown it releases any throttled batch workloads and
// prints the final report. A learned map can be exported with
// -template-out (written atomically: temp file + rename); with several
// lanes each writes its own app-suffixed file.
//
// With -registry the daemon joins a fleet: each lane pulls the consensus
// template for its -app at startup (skipping the learning phase when
// another host has already mapped the application), pushes its own map
// every -sync-every periods plus once on shutdown, and heartbeats its
// status. Registry outages never interrupt control — the daemon degrades
// to its local maps and resyncs when the registry returns. Adding -stream
// subscribes each lane to the registry's push stream: violations learned
// on other hosts arrive as template deltas and are merged into the live
// map at the next period boundary, with automatic fallback to conditional
// delta polling whenever the stream is down. -fleet-key/-fleet-key-file
// HMAC-sign every registry request when the registry requires it, and
// -metrics-file periodically writes the host's sync and stream counters
// in Prometheus text format (atomically, for a node-exporter textfile
// collector to pick up).
//
// With -state-dir the daemon becomes crash-safe: every restrictive
// actuation is recorded in an on-disk ledger BEFORE it is applied, each
// lane's learned state (template, trajectory histograms, β) is
// checkpointed atomically every -checkpoint-every periods (one lane:
// checkpoint.json; several: checkpoint-<app>.json), and at boot the
// daemon replays the ledger — thawing every cgroup a previous incarnation
// may have left frozen (after a SIGKILL, an OOM kill, a panic) — then
// restores the checkpoints so no learning is lost. The arbiter sits above
// the ledger, so the single write-ahead log covers every lane's merged
// actuations. -recover-only performs just the ledger replay and exits,
// for init containers and manual incident response. A watchdog (disable
// with -watchdog-grace 0) runs beside the control loop and thaws
// everything if the loop stops beating — e.g. blocked on a hung cgroupfs
// read. A corrupt ledger or checkpoint is logged and ignored, never
// fatal: the daemon starts cold rather than refusing to protect.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cgroup"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/fleet"
	"repro/internal/fsatomic"
	"repro/internal/metrics"
	"repro/internal/procenv"
	"repro/internal/resilience"
	"repro/internal/stream"
	"repro/internal/throttle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stayawayd:", err)
		os.Exit(1)
	}
}

func parsePIDs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pid, err := strconv.Atoi(part)
		if err != nil || pid <= 0 {
			return nil, fmt.Errorf("invalid PID %q", part)
		}
		out = append(out, pid)
	}
	return out, nil
}

func parseList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// listFlag is a repeatable string flag: every occurrence appends.
type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ",") }

func (l *listFlag) Set(v string) error {
	if v = strings.TrimSpace(v); v != "" {
		*l = append(*l, v)
	}
	return nil
}

// options is everything validateOptions needs to decide whether the flag
// set describes a coherent deployment.
type options struct {
	sensitivePIDs []int
	batchPIDs     []int
	sensCgroups   []string
	batchCgroups  []string
	qosFiles      []string
	apps          []string
	graded        bool
	memoryHighMB  float64
	recoverOnly   bool
	lanesFile     string
	reloadWatch   bool
	eventWindow   int
}

// validate enforces the daemon's startup contract up front, before
// anything touches /proc or cgroupfs: a QoS source per sensitive
// application is mandatory (without the violation signal Stay-Away cannot
// learn anything), PID mode and cgroup mode are mutually exclusive, each
// mode needs both its sensitive and batch side, the PID sets must not
// overlap (throttling the sensitive app defeats the purpose), graded
// throttling requires the cgroup actuator (SIGSTOP has no intermediate
// levels), and multi-tenant runs (several -sensitive-cgroup) need
// positionally aligned -qos-file/-app lists. ALL problems are reported at
// once (errors.Join), so a misconfigured deployment is fixed in one
// edit-run cycle instead of one flag per attempt.
func (o options) validate() (cgroupMode bool, err error) {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	if len(o.qosFiles) == 0 && !o.recoverOnly {
		fail("-qos-file required: the application's QoS report is the violation signal (§3.1)")
	}
	pidMode := len(o.sensitivePIDs) > 0 || len(o.batchPIDs) > 0
	cgroupMode = len(o.sensCgroups) > 0 || len(o.batchCgroups) > 0
	switch {
	case pidMode && cgroupMode:
		fail("PID flags (-sensitive-pids/-batch-pids) and cgroup flags " +
			"(-sensitive-cgroup/-batch-cgroups) are mutually exclusive; pick one mode")
	case !pidMode && !cgroupMode:
		fail("no workloads given: use -sensitive-pids/-batch-pids (PID mode) " +
			"or -sensitive-cgroup/-batch-cgroups (cgroup mode)")
	case pidMode:
		if len(o.sensitivePIDs) == 0 {
			fail("-sensitive-pids required in PID mode")
		}
		if len(o.batchPIDs) == 0 {
			fail("-batch-pids required in PID mode")
		}
		sens := make(map[int]bool, len(o.sensitivePIDs))
		for _, pid := range o.sensitivePIDs {
			sens[pid] = true
		}
		for _, pid := range o.batchPIDs {
			if sens[pid] {
				fail("PID %d is listed as both sensitive and batch; "+
					"throttling the sensitive application defeats the purpose", pid)
			}
		}
		if o.graded {
			fail("-graded requires cgroup mode: SIGSTOP has no intermediate levels")
		}
		if o.memoryHighMB > 0 {
			fail("-memory-high-mb requires cgroup mode")
		}
		if len(o.qosFiles) > 1 {
			fail("PID mode protects one sensitive application; got %d -qos-file flags", len(o.qosFiles))
		}
		if len(o.apps) > 1 {
			fail("PID mode protects one sensitive application; got %d -app flags", len(o.apps))
		}
	default: // cgroup mode
		if len(o.sensCgroups) == 0 && !o.recoverOnly {
			// Recovery replays the ledger against the batch cgroups only;
			// the operator of a dead daemon shouldn't need its full config.
			fail("-sensitive-cgroup required in cgroup mode")
		}
		if len(o.batchCgroups) == 0 {
			fail("-batch-cgroups required in cgroup mode")
		}
		seen := map[string]bool{}
		for _, cg := range o.sensCgroups {
			if seen[cg] {
				fail("cgroup %q listed twice (or as both sensitive and batch)", cg)
			}
			seen[cg] = true
		}
		for _, cg := range o.batchCgroups {
			if seen[cg] {
				fail("cgroup %q listed twice (or as both sensitive and batch)", cg)
			}
			seen[cg] = true
		}
		if n := len(o.sensCgroups); n > 0 && !o.recoverOnly && len(o.qosFiles) != n {
			fail("%d -sensitive-cgroup flags need %d -qos-file flags (one QoS report per "+
				"protected application), got %d", n, n, len(o.qosFiles))
		}
		if n := len(o.sensCgroups); len(o.apps) > 0 && len(o.apps) != n {
			fail("-app given %d times but -sensitive-cgroup %d times; "+
				"give one -app per sensitive cgroup or none", len(o.apps), n)
		}
	}
	appSeen := map[string]bool{}
	for _, app := range o.apps {
		if appSeen[app] {
			fail("application name %q given twice; lanes need distinct -app names", app)
		}
		appSeen[app] = true
	}
	if o.memoryHighMB < 0 {
		fail("-memory-high-mb must be non-negative, got %v", o.memoryHighMB)
	}
	// In lanes-file mode the sensitive/qos/app lists arrive pre-populated
	// from the file (run() enforces the file-vs-flags exclusivity before
	// conversion); only the mode conflict is checkable here.
	if o.lanesFile != "" && pidMode {
		fail("-lanes-file requires cgroup mode: PID lanes cannot be reconfigured live")
	}
	if o.reloadWatch && o.lanesFile == "" {
		fail("-reload-watch requires -lanes-file (there is nothing else to watch)")
	}
	// 0 follows core.Config's contract: default window (4096).
	if o.eventWindow < -1 {
		fail("-event-window must be positive (events retained per lane), 0 for the default, or -1 for unbounded, got %d", o.eventWindow)
	}
	return cgroupMode, errors.Join(errs...)
}

// laneSpec is one protected application's daemon-side wiring.
type laneSpec struct {
	app     string            // fleet-wide application name
	group   string            // collector group name (= Config.SensitiveID)
	qos     procenv.QoSSource // the application's QoS report channel
	sig     *procenv.AppSignals
	lane    *core.Lane
	ckPath  string // per-lane checkpoint file ("" = no crash safety)
	syncer  *fleet.Syncer
	stream  *fleet.StreamSyncer // non-nil in -stream mode
	seq     uint64              // EventsSince cursor for the report drain
	hubSeq  uint64              // independent cursor for the admin SSE publisher
	def     daemon.LaneDef      // declarative source (lanes-file mode only)
	periods int
	viols   int
	merges  int // fleet deltas folded into the live map
	merged  core.MergeStats
}

// The daemon's own admin metrics, distinct from the fleet sync counters
// written by -metrics-file.
const (
	metricReloads   = "stayaway_daemon_reloads_total"
	helpReloads     = "Hot reload attempts by result."
	metricPeriods   = "stayaway_daemon_periods_total"
	helpPeriods     = "Completed control periods."
	metricLanes     = "stayaway_daemon_lanes"
	helpLanes       = "Protection lanes currently running."
	metricLaneLevel = "stayaway_daemon_lane_level"
	helpLaneLevel   = "Lane's current batch allowance (1 free, 0 frozen)."
)

// templateOutPath derives the per-lane export path: a single lane writes
// base verbatim; several write base with "-<app>" before the extension.
func templateOutPath(base, app string, multi bool) string {
	if !multi {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + app + ext
}

func run() error {
	var sensCgroups, qosFiles, apps listFlag
	sensitivePIDs := flag.String("sensitive-pids", "", "comma-separated PIDs of the sensitive application (PID mode)")
	batchPIDs := flag.String("batch-pids", "", "comma-separated PIDs of the batch applications (PID mode)")
	flag.Var(&sensCgroups, "sensitive-cgroup", "sensitive application's cgroup, relative to -cgroup-root (cgroup mode; repeatable: one lane per use)")
	batchCgroups := flag.String("batch-cgroups", "", "comma-separated batch cgroups, relative to -cgroup-root, shared by every lane (cgroup mode)")
	cgroupRoot := flag.String("cgroup-root", "/sys/fs/cgroup", "cgroup v2 hierarchy mount point")
	graded := flag.Bool("graded", false, "graded throttling: step cpu.max quotas before freezing (cgroup mode only)")
	memoryHighMB := flag.Float64("memory-high-mb", 0, "memory.high soft limit applied to throttled batch cgroups (0 = off)")
	flag.Var(&qosFiles, "qos-file", "file the sensitive app rewrites with \"<value> <threshold>\" (repeatable, aligned with -sensitive-cgroup)")
	period := flag.Duration("period", time.Second, "monitoring period")
	cores := flag.Int("cores", runtime.NumCPU(), "host cores (CPU normalization range)")
	memoryMB := flag.Float64("memory-mb", 4096, "host memory (normalization range)")
	diskMBps := flag.Float64("disk-mbps", 200, "disk capacity (normalization range)")
	templateOut := flag.String("template-out", "", "write the learned template JSON on exit (several lanes: app-suffixed files)")
	stateDir := flag.String("state-dir", "", "directory for the actuation ledger and learned-state checkpoints (empty = no crash safety)")
	recoverOnly := flag.Bool("recover-only", false, "replay the ledger (thaw everything a dead daemon left throttled) and exit; requires -state-dir")
	checkpointEvery := flag.Int("checkpoint-every", 30, "periods between learned-state checkpoints (requires -state-dir)")
	watchdogGrace := flag.Int("watchdog-grace", 3, "missed periods before the watchdog thaws everything (0 = no watchdog)")
	registryURL := flag.String("registry", "", "fleet registry base URL (empty = standalone)")
	flag.Var(&apps, "app", "fleet-wide application name for template sharing (repeatable, aligned with -sensitive-cgroup)")
	hostID := flag.String("host-id", "", "host identity reported to the registry (default: hostname)")
	syncEvery := flag.Int("sync-every", 30, "periods between registry pushes")
	streamMode := flag.Bool("stream", false, "subscribe to the registry's push stream: fleet violations merge into the live map within one period (requires -registry)")
	fleetKey := flag.String("fleet-key", "", "shared fleet key; when set, registry requests are HMAC-signed")
	fleetKeyFile := flag.String("fleet-key-file", "", "file holding the shared fleet key (preferred over -fleet-key: argv leaks via ps)")
	metricsFile := flag.String("metrics-file", "", "write fleet sync metrics (Prometheus text) here every -sync-every periods, atomically (requires -registry)")
	lanesFile := flag.String("lanes-file", "", "declarative lane config (lanes.json); reloaded live on SIGHUP or POST /v1/reload without restarting or dropping restrictions (cgroup mode only, replaces -sensitive-cgroup/-qos-file/-app)")
	reloadWatch := flag.Bool("reload-watch", false, "poll -lanes-file for mtime/size changes every period and reload automatically")
	adminAddr := flag.String("admin-addr", "", "HTTP admin surface listen address (/healthz, /readyz, /metrics, /v1/events SSE, /v1/reload); empty = disabled")
	eventWindow := flag.Int("event-window", 4096, "per-period events retained per lane; memory is bounded by this times the Event size (~200B), so 4096 ≈ 800KB per lane; -1 retains everything (unbounded memory on long runs)")
	verbose := flag.Bool("v", false, "print every period event")
	flag.Parse()

	// Lanes-file mode: the file is the single source of truth for the
	// protected applications; converting it into the positional lists up
	// front lets every later stage treat both modes identically.
	var lanesDecl []daemon.LaneDef
	if *lanesFile != "" {
		if len(sensCgroups) > 0 || len(qosFiles) > 0 || len(apps) > 0 {
			return fmt.Errorf("-lanes-file is the declarative twin of -sensitive-cgroup/-qos-file/-app; give one or the other, not both")
		}
		lf, err := daemon.LoadLanes(*lanesFile)
		if err == nil {
			err = lf.Validate(parseList(*batchCgroups))
		}
		if err != nil {
			return fmt.Errorf("-lanes-file: %w", err)
		}
		lanesDecl = lf.Lanes
		for _, d := range lanesDecl {
			sensCgroups = append(sensCgroups, d.SensitiveCgroup)
			qosFiles = append(qosFiles, d.QoSFile)
			apps = append(apps, d.Name())
		}
	}

	sens, err := parsePIDs(*sensitivePIDs)
	if err != nil {
		return fmt.Errorf("-sensitive-pids: %v", err)
	}
	batch, err := parsePIDs(*batchPIDs)
	if err != nil {
		return fmt.Errorf("-batch-pids: %v", err)
	}
	opts := options{
		sensitivePIDs: sens,
		batchPIDs:     batch,
		sensCgroups:   sensCgroups,
		batchCgroups:  parseList(*batchCgroups),
		qosFiles:      qosFiles,
		apps:          apps,
		graded:        *graded,
		memoryHighMB:  *memoryHighMB,
		recoverOnly:   *recoverOnly,
		lanesFile:     *lanesFile,
		reloadWatch:   *reloadWatch,
		eventWindow:   *eventWindow,
	}
	cgroupMode, err := opts.validate()
	if err != nil {
		return err
	}
	if *recoverOnly && *stateDir == "" {
		return fmt.Errorf("-recover-only requires -state-dir (the ledger to replay)")
	}
	if *streamMode && *registryURL == "" {
		return fmt.Errorf("-stream requires -registry (the push stream is the registry's)")
	}
	if *metricsFile != "" && *registryURL == "" {
		return fmt.Errorf("-metrics-file requires -registry (it reports fleet sync state)")
	}
	fleetKeyBytes, err := fleet.ResolveKey(*fleetKey, *fleetKeyFile)
	if err != nil {
		return err
	}

	// Resolve the lane list: group names, application names and QoS
	// sources, positionally aligned. A single sensitive keeps the legacy
	// group name "sensitive" (checkpoint/template schema compatibility);
	// several use their cgroup paths as group names.
	var lanes []*laneSpec
	if cgroupMode {
		// Lanes-file mode always uses cgroup-path group names, even with a
		// single lane: the set can grow live, and a mid-run switch from the
		// legacy "sensitive" name would break the measurement schema.
		multi := len(opts.sensCgroups) > 1 || lanesDecl != nil
		for i, cg := range opts.sensCgroups {
			spec := &laneSpec{group: "sensitive", app: "sensitive"}
			if multi {
				spec.group = cg
				spec.app = cg
			}
			if len(opts.apps) > i {
				spec.app = opts.apps[i]
			}
			if len(opts.qosFiles) > i {
				spec.qos = procenv.FileQoS{Path: opts.qosFiles[i]}
			} else {
				// Recover-only: nothing is learned, a static non-violating
				// source satisfies the contract.
				spec.qos = procenv.StaticQoS{Value: 1, Threshold: 0}
			}
			lanes = append(lanes, spec)
		}
	} else if !opts.recoverOnly {
		spec := &laneSpec{group: "sensitive", app: "sensitive"}
		if len(opts.apps) > 0 {
			spec.app = opts.apps[0]
		}
		if len(opts.qosFiles) > 0 {
			spec.qos = procenv.FileQoS{Path: opts.qosFiles[0]}
		} else {
			spec.qos = procenv.StaticQoS{Value: 1, Threshold: 0}
		}
		lanes = append(lanes, spec)
	}

	var (
		henv      *procenv.HostEnv
		batchIDs  []string // the IDs the throttle controller actuates
		act       throttle.Actuator
		release   func() error // final cleanup: never leave batch work throttled
		watching  string
		collector *cgroup.Collector // cgroup mode only; hot reload adds/removes groups
	)

	if cgroupMode {
		cfs := cgroup.DirFS{Root: *cgroupRoot}
		actuator, err := cgroup.NewActuator(cfs, cgroup.ActuatorConfig{
			MaxCPU:          float64(*cores),
			MemoryHighBytes: int64(opts.memoryHighMB * (1 << 20)),
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "stayawayd: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		batchIDs = opts.batchCgroups
		act = actuator
		//lint:stayaway-ignore ledgeredactuation final fail-safe thaw deliberately bypasses the ledger: over-thaw is the safe direction and must work even when the ledger cannot be written
		release = func() error { return actuator.Resume(opts.batchCgroups) }
		// Recovery replays the ledger against the actuator alone; the
		// telemetry side is only assembled for a real control run.
		if !opts.recoverOnly {
			var groups []cgroup.Group
			for _, spec := range lanes {
				groups = append(groups, cgroup.Group{Name: spec.group, Path: spec.group})
			}
			if len(lanes) == 1 && lanesDecl == nil {
				// Legacy layout: group "sensitive" at the configured path.
				groups[0].Path = opts.sensCgroups[0]
			}
			for _, cg := range opts.batchCgroups {
				groups = append(groups, cgroup.Group{Name: cg, Path: cg})
			}
			collector, err = cgroup.NewCollector(cfs, groups)
			if err != nil {
				return err
			}
			henv, err = procenv.NewHostEnv(collector, opts.batchCgroups)
			if err != nil {
				return err
			}
			// Probe up front so the operator learns at startup — not mid-
			// incident — whether actuation will use cgroup controls or degrade
			// to signals.
			for _, cg := range opts.batchCgroups {
				if err := actuator.Probe(cg); err != nil {
					fmt.Fprintf(os.Stderr, "stayawayd: warning: %v; actuation for %q will degrade to SIGSTOP/SIGCONT\n", err, cg)
				}
			}
			for _, cg := range opts.sensCgroups {
				if !cfs.Exists(cg) {
					fmt.Fprintf(os.Stderr, "stayawayd: warning: sensitive cgroup %q not found (yet)\n", cg)
				}
			}
		}
		watching = fmt.Sprintf("sensitive=%v batch=%v (cgroup mode, root=%s)",
			opts.sensCgroups, opts.batchCgroups, *cgroupRoot)
	} else {
		// The runtime throttles the logical "batch" VM; the actuator
		// translates that into signals to the concrete PIDs behind it.
		actuator := &throttle.ProcessActuator{}
		batchStrings := make([]string, len(batch))
		for i, pid := range batch {
			batchStrings[i] = strconv.Itoa(pid)
		}
		batchIDs = []string{"batch"}
		act = throttle.FuncActuator{
			//lint:stayaway-ignore ledgeredactuation ID-translation adapter below the ledger: the FuncActuator itself is what gets wrapped in LedgeredActuator
			PauseFn: func([]string) error { return actuator.Pause(batchStrings) },
			//lint:stayaway-ignore ledgeredactuation ID-translation adapter below the ledger: the FuncActuator itself is what gets wrapped in LedgeredActuator
			ResumeFn: func([]string) error { return actuator.Resume(batchStrings) },
		}
		//lint:stayaway-ignore ledgeredactuation final fail-safe thaw deliberately bypasses the ledger: over-thaw is the safe direction and must work even when the ledger cannot be written
		release = func() error { return actuator.Resume(batchStrings) }
		if !opts.recoverOnly {
			collector, err := procenv.NewCollector("/proc", 100, []procenv.Group{
				{Name: "sensitive", PIDs: sens},
				{Name: "batch", PIDs: batch},
			})
			if err != nil {
				return err
			}
			henv, err = procenv.NewHostEnv(collector, []string{"batch"})
			if err != nil {
				return err
			}
		}
		watching = fmt.Sprintf("sensitive=%v batch=%v (PID mode)", sens, batch)
	}

	// Crash safety: replay the previous incarnation's actuation ledger
	// before anything else — if a dead daemon left cgroups frozen, thawing
	// them outranks every other startup step. The ledger is an upper bound
	// on applied throttling (restrictions are recorded before actuation,
	// releases after), so replay can only over-thaw, which is idempotent.
	// One ledger serves every lane: the arbiter merges per-lane decisions
	// BEFORE they reach the ledgered actuator, so the write-ahead log holds
	// exactly the effective actuations on the shared pool.
	var ledger *resilience.Ledger
	var ledgerRecovered int
	var ledgerRecoveryErr string
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			return fmt.Errorf("-state-dir: %v", err)
		}
		for _, spec := range lanes {
			spec.ckPath = resilience.LaneCheckpointPath(*stateDir, spec.app)
		}
		if len(lanes) == 1 && lanesDecl == nil {
			// Legacy single-tenant layout.
			lanes[0].ckPath = filepath.Join(*stateDir, "checkpoint.json")
		}
		ledger, err = resilience.OpenLedger(filepath.Join(*stateDir, "ledger.json"))
		if err != nil {
			// A corrupt ledger cannot tell us what was throttled, so assume
			// the worst: recovery below thaws every configured batch ID.
			fmt.Fprintf(os.Stderr, "stayawayd: ledger unreadable, assuming everything throttled: %v\n", err)
		}
		thawed, err := resilience.Recover(ledger, act, batchIDs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stayawayd: ledger recovery: %v\n", err)
			ledgerRecoveryErr = err.Error()
		}
		ledgerRecovered = len(thawed)
		if len(thawed) > 0 {
			fmt.Printf("stayawayd: recovered: thawed %v\n", thawed)
		}
		if *recoverOnly {
			if err != nil {
				return fmt.Errorf("recovery incomplete: %w", err)
			}
			fmt.Println("stayawayd: recovery complete")
			return nil
		}
		// From here on, every restrictive actuation hits the ledger first.
		la, err := resilience.NewLedgeredActuator(act, ledger)
		if err != nil {
			return err
		}
		act = la
		innerRelease := release
		release = func() error {
			// Recover rather than plain Resume: it also clears graded
			// quotas and resets the ledger so the next boot is clean.
			if _, err := resilience.Recover(ledger, act, batchIDs); err != nil {
				return err
			}
			return innerRelease()
		}
	}

	// Assemble the host runtime: one lane per protected application over
	// the shared batch pool, decisions merged by the actuation arbiter.
	host, err := core.NewHost(henv, act)
	if err != nil {
		return err
	}
	ranges := metrics.DefaultRanges(*cores, *memoryMB, *diskMBps, 1000)
	seed := time.Now().UnixNano()
	laneSeq := 0
	if *eventWindow == -1 {
		fmt.Fprintln(os.Stderr, "stayawayd: warning: -event-window -1 retains every period event; memory grows unboundedly with uptime")
	}
	// laneConfig builds one lane's pipeline config; shared between the
	// startup loop and hot-reload adds so both produce identical lanes.
	laneConfig := func(group, app string) core.Config {
		cfg := core.DefaultConfig(group, batchIDs, ranges)
		cfg.Seed = seed + int64(laneSeq)
		laneSeq++
		cfg.SensitiveApp = app
		cfg.EventWindow = *eventWindow
		if *graded {
			cfg.Throttle.Policy = throttle.PolicyGraded
		}
		return cfg
	}
	for _, spec := range lanes {
		if spec.sig, err = henv.Signals(spec.group, spec.qos); err != nil {
			return err
		}
		if spec.lane, err = host.AddLane(laneConfig(spec.group, spec.app), spec.sig); err != nil {
			return err
		}
	}
	hostRelease := release
	release = func() error {
		// The arbiter's lane desires must be cleared alongside the
		// downstream thaw, or surviving controllers would re-merge stale
		// restrictions on the next period.
		err := host.Release()
		if rerr := hostRelease(); err == nil {
			err = rerr
		}
		return err
	}

	// Restore each lane's learned-state checkpoint before the first
	// period. A missing checkpoint is a cold start; a corrupt or
	// incompatible one is logged and ignored — losing learned state is
	// recoverable, refusing to start is not.
	restored := make(map[string]bool)
	for _, spec := range lanes {
		if spec.ckPath == "" {
			continue
		}
		switch ck, err := resilience.LoadCheckpoint(spec.ckPath); {
		case err != nil:
			fmt.Fprintf(os.Stderr, "stayawayd: %s: checkpoint unreadable, starting cold: %v\n", spec.app, err)
		case ck != nil:
			if err := spec.lane.RestoreCheckpoint(ck); err != nil {
				fmt.Fprintf(os.Stderr, "stayawayd: %s: checkpoint rejected, starting cold: %v\n", spec.app, err)
			} else {
				restored[spec.app] = true
				fmt.Printf("stayawayd: %s: restored checkpoint (%d periods of learning, %d states)\n",
					spec.app, ck.Periods, len(ck.Template.States))
			}
		}
	}

	// Fleet wiring: each lane pulls its application's consensus map before
	// the first period; a cold or unreachable registry never blocks
	// startup.
	var hostSync *fleet.HostSyncer
	var streamCancel context.CancelFunc
	if *registryURL != "" {
		client, err := fleet.NewClient(fleet.ClientConfig{BaseURL: *registryURL, Key: fleetKeyBytes})
		if err != nil {
			return err
		}
		hostName := *hostID
		if hostName == "" {
			if hostName, err = os.Hostname(); err != nil {
				hostName = "unknown-host"
			}
		}
		hostSync = fleet.NewHostSyncer(client, hostName)
		for _, spec := range lanes {
			spec.syncer = hostSync.Lane(spec.app)
			if restored[spec.app] {
				// The local checkpoint is this host's own learned map;
				// adopting the fleet template would discard it. Keep the
				// local state and let the periodic pushes reconcile.
				fmt.Printf("stayawayd: %s: checkpoint restored; skipping fleet bootstrap\n", spec.app)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			tpl, rev, err := spec.syncer.Bootstrap(ctx)
			cancel()
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "stayawayd: %s: registry bootstrap failed, starting cold: %v\n", spec.app, err)
			case tpl == nil:
				fmt.Printf("stayawayd: registry has no template for %q yet, learning from scratch\n", spec.app)
			default:
				if err := spec.lane.ImportTemplate(tpl); err != nil {
					fmt.Fprintf(os.Stderr, "stayawayd: %s: fleet template rejected, starting cold: %v\n", spec.app, err)
				} else {
					fmt.Printf("stayawayd: bootstrapped %q from fleet revision %d (%d states)\n",
						spec.app, rev, len(tpl.States))
				}
			}
		}
		// Streaming mode: each lane follows the registry's push stream so a
		// violation learned on another host reaches this one within a
		// control period — instead of at -sync-every cadence. The stream
		// goroutines only STASH deltas; the loop below takes and merges them
		// at period boundaries, so the live map is never touched mid-period.
		if *streamMode {
			var streamCtx context.Context
			streamCtx, streamCancel = context.WithCancel(context.Background())
			defer streamCancel()
			for _, spec := range lanes {
				ss, err := hostSync.StartStream(streamCtx, spec.app, fleet.StreamSyncerConfig{
					Logf: func(format string, args ...any) {
						if *verbose {
							fmt.Fprintf(os.Stderr, "stayawayd: "+format+"\n", args...)
						}
					},
				})
				if err != nil {
					return err
				}
				// The bootstrap pull (if any) already applied this revision;
				// the stream must not re-deliver it.
				ss.MarkApplied(spec.syncer.LastRevision())
				spec.stream = ss
			}
			fmt.Printf("stayawayd: streaming fleet updates for %d lane(s)\n", len(lanes))
		}
	}

	// Live operations: the status board the loop publishes to, the admin
	// event hub, the two-phase reloader and the lanes-file watcher.
	board := daemon.NewBoard()
	board.Update(func(s *daemon.Status) {
		s.LedgerRecovered = ledgerRecovered
		s.LedgerRecoveryError = ledgerRecoveryErr
	})
	var (
		hub          *stream.Hub
		adminMetrics *stream.MetricSet
		adminSrv     *http.Server
		reloader     *daemon.Reloader
		lanesWatch   *daemon.Watcher
	)
	if *lanesFile != "" {
		reloader = daemon.NewReloader(*lanesFile, lanesDecl, opts.batchCgroups)
		for i := range lanes {
			lanes[i].def = lanesDecl[i]
		}
		if *reloadWatch {
			lanesWatch = daemon.NewWatcher(*lanesFile)
		}
	}
	if *adminAddr != "" {
		hub = stream.NewHub(stream.HubConfig{Epoch: time.Now().UnixNano()})
		defer hub.Close()
		adminMetrics = stream.NewMetricSet()
	}
	// queueReload is phase one of a hot reload, shared by SIGHUP, the
	// watcher and POST /v1/reload: validate and stage, or reject with the
	// running set untouched.
	queueReload := func(source string) error {
		err := reloader.Queue()
		if err != nil {
			fmt.Fprintf(os.Stderr, "stayawayd: reload (%s) rejected, keeping running config: %v\n", source, err)
			if adminMetrics != nil {
				adminMetrics.Counter(metricReloads, helpReloads, "result", "rejected").Add(1)
			}
			if hub != nil {
				hub.Publish(daemon.ReloadEvent(daemon.ReloadOutcome{Rejected: err.Error()}))
			}
			return err
		}
		fmt.Printf("stayawayd: reload (%s) validated, applying at next period boundary\n", source)
		return nil
	}
	if *adminAddr != "" {
		var reloadHook func() error
		if reloader != nil {
			reloadHook = func() error { return queueReload("POST /v1/reload") }
		}
		admin, err := daemon.NewAdmin(daemon.AdminConfig{
			Board:   board,
			Hub:     hub,
			Metrics: adminMetrics,
			Reload:  reloadHook,
			Key:     fleetKeyBytes,
			Logf: func(format string, args ...any) {
				if *verbose {
					fmt.Fprintf(os.Stderr, "stayawayd: "+format+"\n", args...)
				}
			},
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("-admin-addr: %w", err)
		}
		adminSrv = &http.Server{Handler: admin.Handler()}
		go func() {
			if err := adminSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "stayawayd: admin server: %v\n", err)
			}
		}()
		fmt.Printf("stayawayd: admin surface on http://%s\n", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	ticker := time.NewTicker(*period)
	defer ticker.Stop()

	if *syncEvery <= 0 {
		*syncEvery = 30
	}
	multi := len(lanes) > 1
	sync := func(spec *laneSpec, throttled bool) {
		if spec.syncer == nil {
			return
		}
		if spec.lane.Space().Len() > 0 {
			if err := spec.syncer.PushTemplate(spec.lane.ExportTemplate(spec.app)); err != nil {
				fmt.Fprintln(os.Stderr, "stayawayd: registry push failed (degraded, continuing):", err)
			}
		}
		if err := spec.syncer.Heartbeat(fleet.Heartbeat{
			Periods: spec.periods, Violations: spec.viols, Throttled: throttled,
		}); err == nil {
			if degraded, _ := spec.syncer.Degraded(); !degraded && *verbose {
				fmt.Printf("stayawayd: %s: registry sync ok, revision %d\n", spec.app, spec.syncer.LastRevision())
			}
		}
	}

	// The adopt step runs at the top of each tick — between periods — and
	// folds any delta the stream goroutines have stashed into the lane's
	// live map. A rejected merge (schema drift, corrupt patch) is logged
	// and skipped: the revision cursor stays put, so the next poll
	// re-fetches an authoritative delta rather than silently losing fleet
	// state.
	adopt := func() {
		for _, spec := range lanes {
			if spec.stream == nil {
				continue
			}
			d := spec.stream.TakeUpdate()
			if d == nil {
				continue
			}
			stats, err := spec.lane.MergeTemplate(d.Patch)
			if err != nil {
				fmt.Fprintf(os.Stderr, "stayawayd: %s: fleet delta rejected: %v\n", spec.app, err)
				continue
			}
			spec.stream.MarkApplied(d.ToRevision)
			spec.merges++
			spec.merged.Added += stats.Added
			spec.merged.Upgraded += stats.Upgraded
			spec.merged.Matched += stats.Matched
			if *verbose || stats.Upgraded > 0 || stats.Added > 0 {
				fmt.Printf("stayawayd: %s: merged fleet revision %d (+%d states, %d upgraded, %d matched)\n",
					spec.app, d.ToRevision, stats.Added, stats.Upgraded, stats.Matched)
			}
		}
	}

	writeMetrics := func() {
		if *metricsFile == "" || hostSync == nil {
			return
		}
		if err := fsatomic.WriteFileFunc(*metricsFile, 0o644, hostSync.WriteMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "stayawayd: metrics-file: %v\n", err)
		}
	}

	// Hot-reload lane operations. All three run on the loop goroutine at a
	// period boundary — the only place the host runtime allows mutation.
	addLane := func(d daemon.LaneDef) (*laneSpec, error) {
		group := d.SensitiveCgroup
		if err := collector.AddGroup(cgroup.Group{Name: group, Path: group}); err != nil {
			return nil, err
		}
		qos := procenv.FileQoS{Path: d.QoSFile}
		sig, err := henv.Signals(group, qos)
		if err != nil {
			collector.RemoveGroup(group)
			return nil, err
		}
		lane, err := host.AddLane(laneConfig(group, d.Name()), sig)
		if err != nil {
			collector.RemoveGroup(group)
			return nil, err
		}
		spec := &laneSpec{app: d.Name(), group: group, qos: qos, sig: sig, lane: lane, def: d}
		if *stateDir != "" {
			spec.ckPath = resilience.LaneCheckpointPath(*stateDir, spec.app)
			// A lane removed earlier and re-added resumes its learning.
			if ck, err := resilience.LoadCheckpoint(spec.ckPath); err == nil && ck != nil {
				if err := lane.RestoreCheckpoint(ck); err == nil {
					fmt.Printf("stayawayd: %s: restored checkpoint (%d periods of learning)\n", spec.app, ck.Periods)
				}
			}
		}
		if hostSync != nil {
			spec.syncer = hostSync.Lane(spec.app)
		}
		lanes = append(lanes, spec)
		return spec, nil
	}
	changeLane := func(spec *laneSpec, d daemon.LaneDef) (bool, error) {
		group := d.SensitiveCgroup
		if group != spec.group {
			// The sensitive cgroup moved: register the new telemetry group
			// first so the replacement lane's first collection sees its
			// real source.
			if err := collector.AddGroup(cgroup.Group{Name: group, Path: group}); err != nil {
				return false, err
			}
		}
		qos := procenv.FileQoS{Path: d.QoSFile}
		sig, err := henv.Signals(group, qos)
		if err == nil {
			var lane *core.Lane
			var carried bool
			lane, carried, err = host.ReconfigureLane(laneConfig(group, d.Name()), sig)
			if err == nil {
				if group != spec.group {
					collector.RemoveGroup(spec.group)
				}
				spec.group, spec.qos, spec.sig, spec.lane, spec.def = group, qos, sig, lane, d
				// The replacement lane's event ring restarts at sequence 0.
				spec.seq, spec.hubSeq = 0, 0
				return carried, nil
			}
		}
		if group != spec.group {
			collector.RemoveGroup(group) // roll back; the old lane runs on
		}
		return false, err
	}
	removeLane := func(spec *laneSpec) error {
		lane, err := host.RemoveLane(spec.app)
		// The lane is out of the arbiter's merge even on error (removal is
		// fail-safe); what follows is best-effort bookkeeping.
		if lane != nil && lane.Space().Len() > 0 {
			if spec.ckPath != "" {
				if ckErr := resilience.SaveCheckpoint(spec.ckPath, lane.Checkpoint()); ckErr != nil {
					fmt.Fprintf(os.Stderr, "stayawayd: %s: departing checkpoint: %v\n", spec.app, ckErr)
				}
			}
			if spec.syncer != nil {
				// Share the freshest map before the lane disappears.
				if pushErr := spec.syncer.PushTemplate(lane.ExportTemplate(spec.app)); pushErr != nil {
					fmt.Fprintf(os.Stderr, "stayawayd: %s: departing push: %v\n", spec.app, pushErr)
				}
			}
		}
		collector.RemoveGroup(spec.group)
		for i, cur := range lanes {
			if cur == spec {
				lanes = append(lanes[:i], lanes[i+1:]...)
				break
			}
		}
		return err
	}

	// applyReload is phase two of a hot reload, run at a period boundary:
	// take the staged config, diff it against what is running, apply adds
	// before changes before removes — the shared pool is never left less
	// protected than both configs agree on — and commit the set that is
	// actually running afterwards, so a failed add surfaces as drift in
	// ReloadStatus instead of being papered over.
	applyReload := func() {
		if reloader == nil {
			return
		}
		desired, gen, ok := reloader.TakePending()
		if !ok {
			return
		}
		diff := reloader.Diff(desired)
		if diff.Empty() {
			reloader.Commit(gen, desired)
			return
		}
		fmt.Printf("stayawayd: reload gen %d: applying %s\n", gen, diff)
		byApp := make(map[string]*laneSpec, len(lanes))
		for _, spec := range lanes {
			byApp[spec.app] = spec
		}
		publishLane := func(c daemon.LaneChange) {
			if hub != nil {
				hub.Publish(daemon.LaneEvent(c))
			}
		}
		for _, d := range diff.Add {
			spec, err := addLane(d)
			if err != nil {
				fmt.Fprintf(os.Stderr, "stayawayd: reload: add %s: %v\n", d.Name(), err)
				publishLane(daemon.LaneChange{Op: "add", App: d.Name(), Error: err.Error()})
				continue
			}
			byApp[spec.app] = spec
			fmt.Printf("stayawayd: reload: added lane %s (cgroup %s)\n", spec.app, d.SensitiveCgroup)
			publishLane(daemon.LaneChange{Op: "add", App: spec.app})
		}
		for _, d := range diff.Change {
			spec := byApp[d.Name()]
			if spec == nil {
				continue
			}
			carried, err := changeLane(spec, d)
			if err != nil {
				fmt.Fprintf(os.Stderr, "stayawayd: reload: change %s rejected, lane keeps its old config: %v\n", d.Name(), err)
				publishLane(daemon.LaneChange{Op: "change", App: d.Name(), Error: err.Error()})
				continue
			}
			fmt.Printf("stayawayd: reload: reconfigured lane %s (state carried: %v)\n", spec.app, carried)
			publishLane(daemon.LaneChange{Op: "change", App: spec.app, Carried: carried})
		}
		for _, name := range diff.Remove {
			spec := byApp[name]
			if spec == nil {
				continue
			}
			errStr := ""
			if err := removeLane(spec); err != nil {
				fmt.Fprintf(os.Stderr, "stayawayd: reload: remove %s: %v\n", name, err)
				errStr = err.Error()
			} else {
				fmt.Printf("stayawayd: reload: removed lane %s\n", name)
			}
			delete(byApp, name)
			publishLane(daemon.LaneChange{Op: "remove", App: name, Error: errStr})
		}
		applied := make([]daemon.LaneDef, 0, len(lanes))
		for _, spec := range lanes {
			applied = append(applied, spec.def)
		}
		reloader.Commit(gen, applied)
		multi = len(lanes) > 1
		if adminMetrics != nil {
			adminMetrics.Counter(metricReloads, helpReloads, "result", "applied").Add(1)
		}
		if hub != nil {
			hub.Publish(daemon.ReloadEvent(daemon.ReloadOutcome{Generation: gen, Diff: diff.String()}))
		}
	}

	// The watchdog runs beside the loop: if periods stop completing (a
	// hung cgroupfs read blocks the collector, say), it thaws everything
	// from its own goroutine — the stalled loop cannot.
	var wd *resilience.Watchdog
	if *watchdogGrace > 0 {
		wd, err = resilience.NewWatchdog(resilience.WatchdogConfig{
			Period: *period,
			Grace:  *watchdogGrace,
			OnStall: func(since time.Duration) {
				fmt.Fprintf(os.Stderr, "stayawayd: watchdog: no completed period for %v, thawing everything\n", since)
				// Flip readiness from here: the stalled loop cannot
				// publish its own bad news.
				board.Update(func(s *daemon.Status) {
					s.WatchdogStalled = true
					s.WatchdogStalls++
				})
				if err := release(); err != nil {
					fmt.Fprintln(os.Stderr, "stayawayd: watchdog release:", err)
				}
			},
		})
		if err != nil {
			return err
		}
		wdCtx, wdCancel := context.WithCancel(context.Background())
		defer wdCancel()
		go wd.Run(wdCtx)
	}

	if *checkpointEvery <= 0 {
		*checkpointEvery = 30
	}
	checkpoint := func() {
		for _, spec := range lanes {
			if spec.ckPath == "" || spec.lane.Space().Len() == 0 {
				continue
			}
			if err := resilience.SaveCheckpoint(spec.ckPath, spec.lane.Checkpoint()); err != nil {
				fmt.Fprintf(os.Stderr, "stayawayd: %s: checkpoint: %v\n", spec.app, err)
			}
		}
	}

	// The report drain: each lane's events come out of its bounded ring
	// buffer via the since-sequence cursor, so a slow or bursty reporting
	// path can never make the daemon's memory grow with uptime.
	drain := func() {
		for _, spec := range lanes {
			var evs []core.Event
			evs, spec.seq = spec.lane.EventsSince(spec.seq)
			for _, ev := range evs {
				spec.periods++
				if ev.Violation {
					spec.viols++
				}
				if *verbose || ev.Violation || ev.Action != throttle.ActionNone {
					if multi {
						fmt.Printf("[%s] %s\n", spec.app, ev)
					} else {
						fmt.Println(ev)
					}
				}
			}
		}
	}

	fmt.Printf("stayawayd: monitoring %s every %v (%d lane(s))\n", watching, *period, len(lanes))
	// The loop body runs under a recover barrier so that even a panic in
	// the runtime falls through to the release below — a crashing daemon
	// must never strand batch workloads frozen. (SIGKILL still can; that
	// is what the ledger replay at next boot is for.)
	var periods int
	// publish pushes the period's outcome to the admin surface: the status
	// board for /readyz, the hub for /v1/events subscribers (via each
	// lane's independent hubSeq cursor, so the report drain above and the
	// SSE feed never fight over one cursor), and the admin metric set.
	publish := func() {
		if hub != nil {
			for _, spec := range lanes {
				var evs []core.Event
				evs, spec.hubSeq = spec.lane.EventsSince(spec.hubSeq)
				for _, ev := range evs {
					hub.Publish(daemon.PeriodEvent(ev))
				}
			}
		}
		health := host.Health()
		var wdStalled bool
		var wdStalls int
		if wd != nil {
			wdStalled, wdStalls, _, _ = wd.Status()
		}
		var rs daemon.ReloadStatus
		if reloader != nil {
			rs = reloader.Status()
		}
		board.Update(func(s *daemon.Status) {
			s.Ready = true
			s.Periods = periods
			s.Lanes = health
			s.WatchdogStalled = wdStalled
			s.WatchdogStalls = wdStalls
			s.Reload = rs
		})
		if adminMetrics != nil {
			adminMetrics.Counter(metricPeriods, helpPeriods).Add(1)
			adminMetrics.Gauge(metricLanes, helpLanes).Set(float64(len(lanes)))
			for _, lh := range health {
				adminMetrics.Gauge(metricLaneLevel, helpLaneLevel, "app", lh.App).Set(lh.Level)
			}
		}
	}
	loopErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("control loop panic: %v", r)
			}
		}()
	loop:
		for {
			select {
			case <-stop:
				break loop
			case <-hup:
				if reloader == nil {
					fmt.Fprintln(os.Stderr, "stayawayd: SIGHUP ignored: hot reload needs -lanes-file")
					continue
				}
				queueReload("SIGHUP")
			case <-ticker.C:
				if lanesWatch != nil && lanesWatch.Changed() {
					queueReload("watch")
				}
				applyReload()
				adopt()
				evs, err := host.Period()
				if err != nil {
					fmt.Fprintln(os.Stderr, "stayawayd: period:", err)
					continue
				}
				if wd != nil {
					wd.Beat()
				}
				periods++
				drain()
				publish()
				if periods%*syncEvery == 0 {
					for i, spec := range lanes {
						sync(spec, evs[i].Throttled)
					}
					writeMetrics()
				}
				if periods%*checkpointEvery == 0 {
					checkpoint()
				}
				anySensitive := false
				for _, spec := range lanes {
					if spec.sig.SensitiveRunning() {
						anySensitive = true
						break
					}
				}
				if !henv.BatchActive() && !anySensitive {
					fmt.Println("stayawayd: all monitored workloads exited")
					break loop
				}
			}
		}
		return nil
	}()

	// Graceful drain: take every lane out through the arbiter's merge —
	// the same fail-safe path a live removal uses — so each departing
	// batch restriction is released exactly once and the final release
	// below is a backstop, not the primary thaw. Skipped after a panic:
	// mid-period invariants cannot be trusted, the raw thaw handles it.
	if loopErr == nil {
		for _, spec := range lanes {
			if _, err := host.RemoveLane(spec.app); err != nil {
				fmt.Fprintf(os.Stderr, "stayawayd: drain %s: %v\n", spec.app, err)
			}
		}
	}
	// Never leave batch workloads throttled on exit — including after a
	// panic absorbed above.
	if err := release(); err != nil {
		fmt.Fprintln(os.Stderr, "stayawayd: final release:", err)
	}
	board.Update(func(s *daemon.Status) { s.Ready = false })
	if adminSrv != nil {
		// Closing the hub first unblocks SSE handlers so Shutdown can
		// finish within its grace window.
		hub.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if err := adminSrv.Shutdown(ctx); err != nil {
			adminSrv.Close()
		}
		cancel()
	}
	if streamCancel != nil {
		streamCancel()
		hostSync.Wait()
	}
	if loopErr != nil {
		// No final checkpoint after a panic: mid-period invariants cannot
		// be trusted, and a corrupt checkpoint is worse than a stale one.
		return loopErr
	}
	checkpoint()
	drain()
	for _, spec := range lanes {
		// Share the freshest map with the fleet before exiting.
		sync(spec, false)
		if multi {
			fmt.Printf("--- %s ---\n", spec.app)
		}
		fmt.Println(spec.lane.Report())
		if spec.stream != nil {
			st := spec.stream.Stats()
			fmt.Printf("fleet stream: %d merges (%d states adopted, %d upgraded, %d matched), "+
				"%d events, %d reconnects, %d fallback polls\n",
				spec.merges, spec.merged.Added, spec.merged.Upgraded, spec.merged.Matched,
				st.Events, st.Reconnects, st.Polls)
		}
	}
	writeMetrics()
	if hostSync != nil {
		for app, err := range hostSync.Degraded() {
			fmt.Fprintf(os.Stderr, "stayawayd: %s: exiting out of sync with the registry: %v\n", app, err)
		}
	}
	if *templateOut != "" {
		for _, spec := range lanes {
			path := templateOutPath(*templateOut, spec.app, multi)
			err := fsatomic.WriteFileFunc(path, 0o644, func(w io.Writer) error {
				_, err := spec.lane.ExportTemplate(spec.app).WriteTo(w)
				return err
			})
			if err != nil {
				return err
			}
			fmt.Printf("template written to %s\n", path)
		}
	}
	return nil
}
