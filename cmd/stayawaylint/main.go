// Command stayawaylint runs the repository's invariant analyzers (see
// internal/lint) over package patterns and exits non-zero on any finding.
//
// Standalone (the CI entry point):
//
//	go run ./cmd/stayawaylint ./...
//
// As a vet tool, using the go command's package loader instead of the
// built-in one:
//
//	go build -o /tmp/stayawaylint ./cmd/stayawaylint
//	go vet -vettool=/tmp/stayawaylint ./...
//
// Findings are suppressed in source with a mandatory-reason directive:
//
//	//lint:stayaway-ignore <analyzer> <reason>
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Exit codes, vet-style: 1 is an operational/usage failure, 2 means the
// analysis ran and found violations.
const (
	exitOK       = 0
	exitError    = 1
	exitFindings = 2
)

func run(args []string, stdout, stderr io.Writer) int {
	// go vet's tool handshake: `stayawaylint -V=full` must print
	// "<name> version devel buildID=<id>" (cmd/go parses this to key its
	// vet-result cache, so the ID is a content hash of this binary), and
	// `stayawaylint -flags` a JSON description of the tool's vet-settable
	// flags (none — selection flags are standalone only).
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Fprintf(stdout, "stayawaylint version devel buildID=%s\n", selfContentID())
		return exitOK
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return exitOK
	}

	fs := flag.NewFlagSet("stayawaylint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list the analyzers and exit")
		enable  = fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
		disable = fs.String("disable", "", "comma-separated analyzer names to skip")
		asJSON  = fs.Bool("json", false, "emit findings as JSON")
		audit   = fs.Bool("suppressions", false, "audit //lint:stayaway-ignore directives (file, line, analyzer, reason, liveness) instead of reporting findings")
		dir     = fs.String("C", ".", "directory to resolve package patterns in")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: stayawaylint [flags] [package patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintf(stderr, "stayawaylint: %v\n", err)
		return exitError
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, firstLine(a.Doc))
		}
		return exitOK
	}

	// Vet tool protocol: a single *.cfg argument describes one package.
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0], analyzers, stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "stayawaylint: %v\n", err)
		return exitError
	}
	if *audit {
		audits, err := lint.AuditSuppressions(pkgs, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "stayawaylint: %v\n", err)
			return exitError
		}
		return reportSuppressions(audits, *asJSON, stdout, stderr)
	}
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "stayawaylint: %v\n", err)
		return exitError
	}
	return report(findings, *asJSON, stdout, stderr)
}

// selectAnalyzers resolves -enable/-disable against the registry.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	if enable != "" && disable != "" {
		return nil, fmt.Errorf("-enable and -disable are mutually exclusive")
	}
	all := lint.Analyzers()
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	switch {
	case enable != "":
		var out []*analysis.Analyzer
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			out = append(out, a)
		}
		return out, nil
	case disable != "":
		skip := make(map[string]bool)
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			skip[name] = true
		}
		var out []*analysis.Analyzer
		for _, a := range all {
			if !skip[a.Name] {
				out = append(out, a)
			}
		}
		return out, nil
	default:
		return all, nil
	}
}

func report(findings []lint.Finding, asJSON bool, stdout, stderr io.Writer) int {
	if asJSON {
		type jsonEdit struct {
			Line      int    `json:"line"`
			Column    int    `json:"column"`
			EndLine   int    `json:"end_line"`
			EndColumn int    `json:"end_column"`
			NewText   string `json:"new_text"`
		}
		type jsonFix struct {
			Message string     `json:"message"`
			Edits   []jsonEdit `json:"edits"`
		}
		type jsonFinding struct {
			Analyzer string    `json:"analyzer"`
			File     string    `json:"file"`
			Line     int       `json:"line"`
			Column   int       `json:"column"`
			Message  string    `json:"message"`
			Fixes    []jsonFix `json:"fixes,omitempty"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			jf := jsonFinding{f.Analyzer, f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, nil}
			for _, fix := range f.Fixes {
				jfx := jsonFix{Message: fix.Message}
				for _, e := range fix.Edits {
					jfx.Edits = append(jfx.Edits, jsonEdit{e.Pos.Line, e.Pos.Column, e.End.Line, e.End.Column, e.NewText})
				}
				jf.Fixes = append(jf.Fixes, jfx)
			}
			out = append(out, jf)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "stayawaylint: %v\n", err)
			return exitError
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stderr, f)
		}
	}
	if len(findings) > 0 {
		return exitFindings
	}
	return exitOK
}

// reportSuppressions renders the -suppressions audit. Every directive is
// listed with its location, target analyzer, reason, and whether it still
// silences a diagnostic; dead directives are called out so they get
// deleted rather than lingering to swallow a future, different finding.
// The audit always exits 0 — it is an artifact, not a gate.
func reportSuppressions(audits []lint.SuppressionAudit, asJSON bool, stdout, stderr io.Writer) int {
	if asJSON {
		type jsonSuppression struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Reason   string `json:"reason"`
			Used     bool   `json:"used"`
		}
		out := make([]jsonSuppression, 0, len(audits))
		for _, a := range audits {
			out = append(out, jsonSuppression{a.File, a.Line, a.Analyzer, a.Reason, a.Used})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "stayawaylint: %v\n", err)
			return exitError
		}
		return exitOK
	}
	for _, a := range audits {
		status := ""
		if !a.Used {
			status = " [unused — delete this directive]"
		}
		fmt.Fprintf(stdout, "%s:%d: %s: %s%s\n", a.File, a.Line, a.Analyzer, a.Reason, status)
	}
	fmt.Fprintf(stdout, "%d suppression(s)\n", len(audits))
	return exitOK
}

// vetConfig is the JSON the go command hands a -vettool per package.
type vetConfig struct {
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes the single package a vet .cfg file describes.
func vetUnit(cfgPath string, analyzers []*analysis.Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "stayawaylint: %v\n", err)
		return exitError
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "stayawaylint: parsing %s: %v\n", cfgPath, err)
		return exitError
	}
	// The go command requires the facts file to exist afterwards; this
	// suite exchanges no facts, so an empty one satisfies the protocol.
	if cfg.VetxOutput != "" {
		//lint:stayaway-ignore atomicwrite vet facts file, empty and regenerated by the go command every run; not repository state
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "stayawaylint: %v\n", err)
			return exitError
		}
	}
	if cfg.VetxOnly {
		return exitOK
	}
	index := make(load.ExportIndex, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		index[path] = file
	}
	for from, to := range cfg.ImportMap {
		if e, ok := index[to]; ok && from != to {
			index[from] = e
		}
	}
	fset := token.NewFileSet()
	var files []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	pkg, err := load.Check(fset, index.Importer(fset), cfg.ImportPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return exitOK
		}
		fmt.Fprintf(stderr, "stayawaylint: %v\n", err)
		return exitError
	}
	findings, err := lint.Run([]*load.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "stayawaylint: %v\n", err)
		return exitError
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos.Offset < findings[j].Pos.Offset })
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return exitFindings
	}
	return exitOK
}

// selfContentID hashes this executable for the -V=full handshake, so the
// go command re-runs the analysis when the tool binary changes.
func selfContentID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
