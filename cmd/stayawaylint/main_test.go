package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

func TestSelectAnalyzersDefaultIsAll(t *testing.T) {
	got, err := selectAnalyzers("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lint.Analyzers()) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(lint.Analyzers()))
	}
}

func TestSelectAnalyzersEnable(t *testing.T) {
	got, err := selectAnalyzers("floatcmp, atomicwrite", "")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, a := range got {
		names = append(names, a.Name)
	}
	if strings.Join(names, ",") != "floatcmp,atomicwrite" {
		t.Errorf("enable order not preserved: %v", names)
	}
}

func TestSelectAnalyzersDisable(t *testing.T) {
	got, err := selectAnalyzers("", "failsafe")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lint.Analyzers())-1 {
		t.Fatalf("got %d analyzers, want %d", len(got), len(lint.Analyzers())-1)
	}
	for _, a := range got {
		if a.Name == "failsafe" {
			t.Errorf("disabled analyzer still selected")
		}
	}
}

func TestSelectAnalyzersErrors(t *testing.T) {
	if _, err := selectAnalyzers("floatcmp", "failsafe"); err == nil {
		t.Error("enable+disable together: want error")
	}
	if _, err := selectAnalyzers("nosuch", ""); err == nil {
		t.Error("unknown -enable name: want error")
	}
	if _, err := selectAnalyzers("", "nosuch"); err == nil {
		t.Error("unknown -disable name: want error")
	}
}

// TestVersionHandshake pins the exact shape cmd/go's toolID() parser
// expects from a vettool: "<name> version devel buildID=<id>".
func TestVersionHandshake(t *testing.T) {
	for _, arg := range []string{"-V=full", "-V"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{arg}, &stdout, &stderr); code != exitOK {
			t.Fatalf("run(%s) = %d, want %d (stderr: %s)", arg, code, exitOK, stderr.String())
		}
		line := strings.TrimSpace(stdout.String())
		if !regexp.MustCompile(`^stayawaylint version devel buildID=\S+$`).MatchString(line) {
			t.Errorf("run(%s) printed %q; want 'stayawaylint version devel buildID=<id>'", arg, line)
		}
	}
}

func TestFlagsHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != exitOK {
		t.Fatalf("run(-flags) = %d, want %d", code, exitOK)
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("run(-flags) printed %q, want []", got)
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != exitOK {
		t.Fatalf("run(-list) = %d, want %d", code, exitOK)
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, stdout.String())
		}
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != exitError {
		t.Fatalf("run(-nosuchflag) = %d, want %d", code, exitError)
	}
}

// TestRunFindingsExitCode builds a throwaway module with one atomicwrite
// violation and checks the full standalone path: exit 2 plus a
// file:line diagnostic naming the analyzer.
func TestRunFindingsExitCode(t *testing.T) {
	dir := t.TempDir()
	writeTestFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeTestFile(t, filepath.Join(dir, "a.go"), `package scratch

import "os"

func save(p string, b []byte) error {
	return os.WriteFile(p, b, 0o644)
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-enable=atomicwrite", "./..."}, &stdout, &stderr)
	if code != exitFindings {
		t.Fatalf("run over violating module = %d, want %d (stderr: %s)", code, exitFindings, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "a.go:6:") || !strings.Contains(out, "(atomicwrite)") {
		t.Errorf("diagnostic missing position or analyzer tag:\n%s", out)
	}

	// JSON mode reports the same finding on stdout.
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-C", dir, "-enable=atomicwrite", "-json", "./..."}, &stdout, &stderr)
	if code != exitFindings {
		t.Fatalf("json run = %d, want %d", code, exitFindings)
	}
	if !strings.Contains(stdout.String(), `"analyzer": "atomicwrite"`) {
		t.Errorf("json output missing analyzer field:\n%s", stdout.String())
	}
}

func TestRunCleanExitCode(t *testing.T) {
	dir := t.TempDir()
	writeTestFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeTestFile(t, filepath.Join(dir, "a.go"), `package scratch

func Nothing() {}
`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != exitOK {
		t.Fatalf("run over clean module = %d, want %d (stderr: %s)", code, exitOK, stderr.String())
	}
}

func writeTestFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
