// Command stayawayreg serves the fleet template registry: a small HTTP
// control plane through which Stay-Away hosts share learned state-space
// maps (§6 templates, fleet-wide). Daemons PUT their exported templates,
// the registry merges them into a per-application consensus map (Procrustes
// alignment + weighted state dedup), and freshly started hosts GET the
// consensus to skip the learning phase.
//
// Usage:
//
//	stayawayreg -addr :8723 [-data-dir /var/lib/stayaway] [-merge-eps 0.05]
//	            [-shards 4] [-fleet-key-file secret] [-v]
//
// With -data-dir the store persists across restarts (one JSON file per
// (application, schema) key, written atomically); without it the registry
// is in-memory. -shards splits the store by sensitive-app key (the count
// is pinned in the data dir on first start). Every accepted merge is
// published on the SSE stream at /v1/events so subscribed hosts learn
// about fleet violations within one control period; /metrics serves
// Prometheus text metrics. With a fleet key configured, all template and
// status routes require HMAC-signed requests. The server runs until
// SIGINT/SIGTERM and drains in-flight requests on shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/registry"
	"repro/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stayawayreg:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8723", "listen address")
	dataDir := flag.String("data-dir", "", "persist templates here (empty = in-memory)")
	mergeEps := flag.Float64("merge-eps", registry.DefaultMergeEpsilon, "state-dedup radius when merging host maps")
	shards := flag.Int("shards", 1, "split the store into N shards by sensitive-app key")
	fleetKey := flag.String("fleet-key", "", "shared fleet key; when set, requests must be HMAC-signed")
	fleetKeyFile := flag.String("fleet-key-file", "", "file holding the shared fleet key (preferred over -fleet-key: argv leaks via ps)")
	heartbeat := flag.Duration("stream-heartbeat", 15*time.Second, "idle event-stream heartbeat cadence")
	verbose := flag.Bool("v", false, "log every request outcome")
	flag.Parse()

	key, err := fleet.ResolveKey(*fleetKey, *fleetKeyFile)
	if err != nil {
		return err
	}

	// The hub epoch must differ across restarts so clients resuming with a
	// stale Last-Event-ID get a reset instead of a silent gap.
	hub := stream.NewHub(stream.HubConfig{Epoch: time.Now().UnixNano()})
	defer hub.Close()
	metrics := stream.NewMetricSet()

	reg, err := registry.OpenSharded(registry.Config{
		Dir:          *dataDir,
		MergeEpsilon: *mergeEps,
		OnPut:        fleet.PublishHook(hub),
	}, *shards)
	if err != nil {
		return err
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Printf("stayawayreg: "+format+"\n", args...)
		}
	}
	srv, err := fleet.NewServer(fleet.ServerConfig{
		Registry:        reg,
		Logf:            logf,
		Hub:             hub,
		Metrics:         metrics,
		Key:             key,
		StreamHeartbeat: *heartbeat,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	secured := "open"
	if len(key) > 0 {
		secured = "signed requests required"
	}
	fmt.Printf("stayawayreg: listening on %s (%d templates loaded, %d shards, %s)\n",
		*addr, reg.Len(), reg.Shards(), secured)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Printf("stayawayreg: %v, shutting down\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
