// Command stayawayreg serves the fleet template registry: a small HTTP
// control plane through which Stay-Away hosts share learned state-space
// maps (§6 templates, fleet-wide). Daemons PUT their exported templates,
// the registry merges them into a per-application consensus map (Procrustes
// alignment + weighted state dedup), and freshly started hosts GET the
// consensus to skip the learning phase.
//
// Usage:
//
//	stayawayreg -addr :8723 [-data-dir /var/lib/stayaway] [-merge-eps 0.05] [-v]
//
// With -data-dir the store persists across restarts (one JSON file per
// (application, schema) key, written atomically); without it the registry
// is in-memory. The server runs until SIGINT/SIGTERM and drains in-flight
// requests on shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/registry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stayawayreg:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8723", "listen address")
	dataDir := flag.String("data-dir", "", "persist templates here (empty = in-memory)")
	mergeEps := flag.Float64("merge-eps", registry.DefaultMergeEpsilon, "state-dedup radius when merging host maps")
	verbose := flag.Bool("v", false, "log every request outcome")
	flag.Parse()

	reg, err := registry.Open(registry.Config{Dir: *dataDir, MergeEpsilon: *mergeEps})
	if err != nil {
		return err
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Printf("stayawayreg: "+format+"\n", args...)
		}
	}
	srv, err := fleet.NewServer(fleet.ServerConfig{Registry: reg, Logf: logf})
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("stayawayreg: listening on %s (%d templates loaded)\n", *addr, reg.Len())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Printf("stayawayreg: %v, shutting down\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
