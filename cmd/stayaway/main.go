// Command stayaway runs the Stay-Away middleware against a simulated host:
// pick a latency-sensitive application and a set of batch co-runners, and
// watch the Mapping → Prediction → Action loop operate period by period.
//
// Usage:
//
//	stayaway [-sensitive APP] [-batch LIST] [-ticks N] [-seed N]
//	         [-observe] [-no-stayaway] [-template-in FILE]
//	         [-template-out FILE] [-registry URL] [-app NAME]
//	         [-fleet-key KEY | -fleet-key-file FILE] [-v]
//
//	-sensitive   vlc | web-cpu | web-mem | web-mix        (default vlc)
//	-batch       comma list of cpubomb, memorybomb, twitter, soplex,
//	             transcode                                 (default cpubomb)
//	-observe     map and predict but never throttle (observe-only)
//	-no-stayaway run the co-location completely unprotected
//	-template-in seed the runtime with a previously exported template
//	-template-out export the learned map on exit
//	-registry    fleet registry URL: pull the consensus template for
//	             -app before the run, push the learned map after it
//	-app         fleet-wide application name              (default: -sensitive)
//	-fleet-key   shared fleet key for a signed registry (-fleet-key-file
//	             reads it from a file and wins over the literal)
//	-v           print every period's event
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/fsatomic"
	"repro/internal/sim"
	"repro/internal/statespace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stayaway:", err)
		os.Exit(1)
	}
}

func sensitiveFactory(name string) (func(rng *rand.Rand) sim.QoSApp, error) {
	switch name {
	case "vlc":
		return func(rng *rand.Rand) sim.QoSApp {
			return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
		}, nil
	case "web-cpu", "web-mem", "web-mix":
		kind := map[string]apps.WorkloadKind{
			"web-cpu": apps.CPUIntensive,
			"web-mem": apps.MemoryIntensive,
			"web-mix": apps.Mixed,
		}[name]
		return func(rng *rand.Rand) sim.QoSApp {
			return apps.NewWebservice(apps.DefaultWebserviceConfig(kind), rng)
		}, nil
	case "webkv-cpu", "webkv-mem", "webkv-mix":
		// The request-driven Webservice: demands derive from executing
		// requests against a real Memcached layer instead of the analytic
		// model.
		kind := map[string]apps.WorkloadKind{
			"webkv-cpu": apps.CPUIntensive,
			"webkv-mem": apps.MemoryIntensive,
			"webkv-mix": apps.Mixed,
		}[name]
		return func(rng *rand.Rand) sim.QoSApp {
			w, err := apps.NewRequestWebservice(apps.DefaultRequestWebserviceConfig(kind), rng)
			if err != nil {
				panic(err) // defaults are always valid
			}
			return w
		}, nil
	default:
		return nil, fmt.Errorf("unknown sensitive app %q", name)
	}
}

func batchFactory(name string) (func(rng *rand.Rand) sim.App, error) {
	switch name {
	case "cpubomb":
		return func(*rand.Rand) sim.App { return apps.NewCPUBomb(apps.DefaultCPUBombConfig()) }, nil
	case "memorybomb":
		return func(rng *rand.Rand) sim.App { return apps.NewMemoryBomb(apps.DefaultMemoryBombConfig(), rng) }, nil
	case "twitter":
		return func(rng *rand.Rand) sim.App {
			cfg := apps.DefaultTwitterConfig()
			cfg.TotalWork = 0
			return apps.NewTwitterAnalysis(cfg, rng)
		}, nil
	case "soplex":
		return func(rng *rand.Rand) sim.App {
			cfg := apps.DefaultSoplexConfig()
			cfg.TotalWork = 0
			return apps.NewSoplex(cfg, rng)
		}, nil
	case "transcode":
		return func(rng *rand.Rand) sim.App {
			return apps.NewVLCTranscode(apps.DefaultVLCTranscodeConfig(), rng)
		}, nil
	default:
		return nil, fmt.Errorf("unknown batch app %q", name)
	}
}

func run() error {
	sensitiveName := flag.String("sensitive", "vlc", "sensitive application")
	batchList := flag.String("batch", "cpubomb", "comma-separated batch applications")
	ticks := flag.Int("ticks", 300, "simulation length in monitoring periods")
	seed := flag.Int64("seed", 1, "random seed")
	observe := flag.Bool("observe", false, "observe-only (no throttling)")
	noStayAway := flag.Bool("no-stayaway", false, "run unprotected (no runtime at all)")
	templateIn := flag.String("template-in", "", "template JSON to seed the runtime with")
	templateOut := flag.String("template-out", "", "write the learned template JSON here")
	csvOut := flag.String("csv", "", "write per-tick run records as CSV here")
	registryURL := flag.String("registry", "", "fleet registry base URL (empty = standalone)")
	appName := flag.String("app", "", "fleet-wide application name (default: -sensitive)")
	fleetKey := flag.String("fleet-key", "", "shared fleet key; when set, registry requests are HMAC-signed")
	fleetKeyFile := flag.String("fleet-key-file", "", "file holding the shared fleet key (preferred over -fleet-key: argv leaks via ps)")
	verbose := flag.Bool("v", false, "print every period event")
	flag.Parse()
	if *appName == "" {
		*appName = *sensitiveName
	}

	sensitive, err := sensitiveFactory(*sensitiveName)
	if err != nil {
		return err
	}
	var placements []experiments.Placement
	for i, name := range strings.Split(*batchList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		f, err := batchFactory(name)
		if err != nil {
			return err
		}
		placements = append(placements, experiments.Placement{
			ID:        fmt.Sprintf("%s-%d", name, i),
			StartTick: 20,
			App:       f,
		})
	}

	var tpl *statespace.Template
	if *templateIn != "" {
		f, err := os.Open(*templateIn)
		if err != nil {
			return err
		}
		tpl, err = statespace.ReadTemplate(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded template for %q: %d states\n", tpl.SensitiveApp, len(tpl.States))
	}

	// Fleet: pull the consensus template unless one was given explicitly;
	// a cold or unreachable registry falls back to learning from scratch.
	var syncer *fleet.Syncer
	if *registryURL != "" {
		key, err := fleet.ResolveKey(*fleetKey, *fleetKeyFile)
		if err != nil {
			return err
		}
		client, err := fleet.NewClient(fleet.ClientConfig{BaseURL: *registryURL, Key: key})
		if err != nil {
			return err
		}
		host, err := os.Hostname()
		if err != nil {
			host = "stayaway-cli"
		}
		syncer = fleet.NewSyncer(client, host, *appName)
		if tpl == nil {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			pulled, rev, err := syncer.Bootstrap(ctx)
			cancel()
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "stayaway: registry bootstrap failed, starting cold: %v\n", err)
			case pulled == nil:
				fmt.Printf("registry has no template for %q yet, learning from scratch\n", *appName)
			default:
				tpl = pulled
				fmt.Printf("pulled fleet template for %q: revision %d, %d states\n",
					*appName, rev, len(tpl.States))
			}
		}
	}

	res, err := experiments.Run(experiments.Scenario{
		Name:           "stayaway-cli",
		SensitiveID:    "sensitive",
		Sensitive:      sensitive,
		Batch:          placements,
		Ticks:          *ticks,
		Seed:           *seed,
		StayAway:       !*noStayAway,
		DisableActions: *observe,
		Template:       tpl,
	})
	if err != nil {
		return err
	}

	if *verbose {
		for _, ev := range res.Events {
			fmt.Println(ev)
		}
	}

	vs := experiments.Violations(res.Records)
	fmt.Printf("\n%s + [%s], %d periods (seed %d)\n", *sensitiveName, *batchList, *ticks, *seed)
	fmt.Printf("QoS violations: %d/%d (%.1f%%)\n", vs.Violations, vs.Ticks, 100*vs.Rate)
	fmt.Printf("mean gained utilization: %.1f%%\n", 100*experiments.Mean(experiments.GainSeries(res.Records)))
	fmt.Printf("mean machine utilization: %.1f%%\n", 100*res.AvgUtilization)
	if res.Runtime != nil {
		fmt.Println(res.Report)
		threshold := 1.0
		fmt.Println(experiments.RenderSeries(experiments.ChartOptions{
			Title: "normalized QoS (threshold at 1.0)",
			HLine: &threshold, YMin: 0, YMax: 1.3, Height: 10,
		}, experiments.QoSSeries(res.Records)))
	}

	if *csvOut != "" {
		err := fsatomic.WriteFileFunc(*csvOut, 0o644, func(w io.Writer) error {
			return experiments.WriteRunCSV(w, res.Records)
		})
		if err != nil {
			return err
		}
		fmt.Printf("run records written to %s\n", *csvOut)
	}

	if *templateOut != "" && res.Runtime != nil {
		err := fsatomic.WriteFileFunc(*templateOut, 0o644, func(w io.Writer) error {
			_, err := res.Runtime.ExportTemplate(*sensitiveName).WriteTo(w)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("template written to %s\n", *templateOut)
	}

	// Contribute what this run learned back to the fleet.
	if syncer != nil && res.Runtime != nil {
		if err := syncer.PushTemplate(res.Runtime.ExportTemplate(*appName)); err != nil {
			fmt.Fprintln(os.Stderr, "stayaway: registry push failed:", err)
		} else {
			fmt.Printf("pushed learned template to the registry (revision %d)\n", syncer.LastRevision())
		}
	}
	return nil
}
