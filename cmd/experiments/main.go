// Command experiments regenerates the tables and figures of the Stay-Away
// paper's evaluation (§7) against the simulated substrate.
//
// Usage:
//
//	experiments [-seed N] [-o DIR] [-fig LIST | -summary | -ablations | -chaos | -all]
//
//	-fig 1,8,9     regenerate specific figures (1,4,5,6,7,8,9,10,11,12,
//	               13,14,15,16,17,18)
//	-summary       run the headline utilization summary (10–70% claim)
//	-ablations     run the binary-vs-graded throttling ablation
//	-chaos         run the fault-injection suite (non-zero exit on failure)
//	-reload-chaos  run the reload-under-fault suite: lane adds/removes/
//	               reconfigurations interleaved with crashes and injected
//	               cgroupfs faults (non-zero exit on any ledger-invariant
//	               violation)
//	-multitenant   run the two-sensitive conflicting-lane scenario
//	-sched         run the cluster-placement-vs-baselines ablation
//	-fleet         run the streaming fleet-convergence simulation
//	-scenarios     run the open-loop scenario zoo and the open-vs-closed
//	               QoS ablation (non-zero exit when the ablation gap
//	               closes, protection regresses a class, or the suite is
//	               nondeterministic)
//	-all           regenerate everything including the summary, ablations,
//	               multi-tenant scenario, placement ablation, fleet
//	               convergence, scenario zoo and chaos suite
//	-o DIR         additionally write each figure to DIR/<id>.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fsatomic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 42, "random seed for all scenarios")
	figList := flag.String("fig", "", "comma-separated figure numbers to regenerate")
	summary := flag.Bool("summary", false, "run the headline utilization summary")
	ablations := flag.Bool("ablations", false, "run the binary-vs-graded throttling ablation")
	chaosSuite := flag.Bool("chaos", false, "run the fault-injection suite")
	reloadChaos := flag.Bool("reload-chaos", false, "run the reload-under-fault suite (lane lifecycle + crashes + injected faults)")
	multiTenant := flag.Bool("multitenant", false, "run the two-sensitive conflicting-lane scenario")
	schedAblation := flag.Bool("sched", false, "run the cluster-placement-vs-baselines ablation")
	fleetConv := flag.Bool("fleet", false, "run the streaming fleet-convergence simulation (non-zero exit when convergence misses the 99% floor)")
	scenarios := flag.Bool("scenarios", false, "run the open-loop scenario zoo (non-zero exit on a failed gate)")
	all := flag.Bool("all", false, "regenerate every figure and the summary")
	outDir := flag.String("o", "", "directory to write per-figure text files into")
	flag.Parse()

	gens := map[int]func(int64) (*experiments.Figure, error){
		1:  experiments.Fig01,
		4:  func(int64) (*experiments.Figure, error) { return experiments.Fig04() },
		5:  experiments.Fig05,
		6:  experiments.Fig06,
		7:  experiments.Fig07,
		8:  experiments.Fig08,
		9:  experiments.Fig09,
		10: experiments.Fig10,
		11: experiments.Fig11,
		12: experiments.Fig12,
		13: experiments.Fig13,
		14: experiments.Fig14,
		15: experiments.Fig15,
		16: experiments.Fig16,
		17: func(s int64) (*experiments.Figure, error) { f, _, err := experiments.Fig17(s); return f, err },
		18: experiments.Fig18,
	}
	order := []int{1, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18}

	var wanted []int
	switch {
	case *all:
		wanted = order
	case *figList != "":
		for _, part := range strings.Split(*figList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad figure number %q", part)
			}
			if _, ok := gens[n]; !ok {
				return fmt.Errorf("unknown figure %d", n)
			}
			wanted = append(wanted, n)
		}
	case *summary || *ablations || *chaosSuite || *reloadChaos || *multiTenant || *schedAblation || *fleetConv || *scenarios:
		// handled below
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -fig, -summary, -ablations, -chaos, -reload-chaos, -multitenant, -sched, -fleet, -scenarios or -all")
	}

	emit := func(f *experiments.Figure) error {
		fmt.Printf("======== %s — %s ========\n%s\n", f.ID, f.Title, f.Text)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*outDir, f.ID+".txt")
			if err := fsatomic.WriteFile(path, []byte(f.Title+"\n\n"+f.Text), 0o644); err != nil {
				return err
			}
		}
		return nil
	}

	for _, n := range wanted {
		f, err := gens[n](*seed)
		if err != nil {
			return fmt.Errorf("figure %d: %w", n, err)
		}
		if err := emit(f); err != nil {
			return err
		}
	}
	if *summary || *all {
		f, err := experiments.Summary(*seed)
		if err != nil {
			return fmt.Errorf("summary: %w", err)
		}
		if err := emit(f); err != nil {
			return err
		}
	}
	if *ablations || *all {
		f, err := experiments.AblationGraded(*seed)
		if err != nil {
			return fmt.Errorf("graded ablation: %w", err)
		}
		if err := emit(f); err != nil {
			return err
		}
	}
	if *multiTenant || *all {
		f, err := experiments.MultiTenant(*seed)
		if err != nil {
			return fmt.Errorf("multi-tenant scenario: %w", err)
		}
		if err := emit(f); err != nil {
			return err
		}
	}
	if *schedAblation || *all {
		f, err := experiments.SchedAblation(*seed)
		if err != nil {
			return fmt.Errorf("placement ablation: %w", err)
		}
		if err := emit(f); err != nil {
			return err
		}
	}
	if *fleetConv || *all {
		f, report, err := experiments.FleetConvergence(*seed)
		if err != nil {
			return fmt.Errorf("fleet convergence: %w", err)
		}
		if err := emit(f); err != nil {
			return err
		}
		// The CI gate: every simulated fleet size must reach the paper-
		// scale convergence floor, and delta sync must beat whole-template
		// polling on bytes.
		for _, r := range report.Rows {
			if r.WithinPeriodFrac < 0.99 {
				return fmt.Errorf("fleet convergence: %d hosts: only %.2f%% of streaming subscribers converged within one period (floor 99%%)",
					r.Hosts, 100*r.WithinPeriodFrac)
			}
			if r.DeltaBytes >= r.FullBytes {
				return fmt.Errorf("fleet convergence: %d hosts: delta sync shipped %d bytes, whole-template polling %d — delta must win",
					r.Hosts, r.DeltaBytes, r.FullBytes)
			}
		}
	}
	if *scenarios || *all {
		f, report, err := experiments.ScenarioZoo(*seed)
		if err != nil {
			return fmt.Errorf("scenario zoo: %w", err)
		}
		if err := emit(f); err != nil {
			return err
		}
		// Gate 1: the open-loop QoS must register violations under the
		// throttle schedule that the closed-loop grant-ratio QoS misses.
		if report.Ablation.ClosedViolations >= report.Ablation.OpenViolations {
			return fmt.Errorf("scenario zoo: open-vs-closed gap closed: open=%d closed=%d violations",
				report.Ablation.OpenViolations, report.Ablation.ClosedViolations)
		}
		// Gate 2: Stay-Away must not regress any class, and the protected
		// co-location must still get batch work done.
		for _, r := range report.Rows {
			if r.ProtectedRate > r.UnprotectedRate {
				return fmt.Errorf("scenario zoo: %s: protection regressed the violation rate (%.3f > %.3f)",
					r.Class, r.ProtectedRate, r.UnprotectedRate)
			}
			if r.BatchWork <= 0 {
				return fmt.Errorf("scenario zoo: %s: protected run performed no batch work", r.Class)
			}
		}
		// Gate 3: the suite must replay deterministically for CI.
		g, _, err := experiments.ScenarioZoo(*seed)
		if err != nil {
			return fmt.Errorf("scenario zoo replay: %w", err)
		}
		for k, v := range f.Summary {
			if g.Summary[k] != v {
				return fmt.Errorf("scenario zoo: nondeterministic replay: summary[%q] %v vs %v",
					k, v, g.Summary[k])
			}
		}
	}
	if *chaosSuite || *all {
		f, err := experiments.Chaos(*seed)
		if err != nil {
			return fmt.Errorf("chaos suite: %w", err)
		}
		if err := emit(f); err != nil {
			return err
		}
	}
	if *reloadChaos || *all {
		f, err := experiments.ReloadChaos(*seed)
		if err != nil {
			return fmt.Errorf("reload chaos suite: %w", err)
		}
		if err := emit(f); err != nil {
			return err
		}
	}
	return nil
}
