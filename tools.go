//go:build tools

// Package tools pins the versions of build-time tools that are not part
// of the module's import graph. The file is excluded from every normal
// build by the tools tag; CI extracts the version constants below with
// sed (see .github/workflows/ci.yml) so that bumping a tool version is a
// one-line, reviewable change here instead of an opaque edit buried in
// workflow YAML.
//
// staticcheck is deliberately not a blank import tracked in go.mod: it is
// installed by version string (`go install ...@<version>`), not built
// from this module's dependency graph, so a require directive would pin
// nothing extra while bloating go.sum.
package tools

// StaticcheckVersion is the single source of truth for the staticcheck
// release CI installs and developers should use locally:
//
//	go install honnef.co/go/tools/cmd/staticcheck@2024.1.1
const StaticcheckVersion = "2024.1.1"
