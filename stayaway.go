// Package stayaway is the public entry point of this reproduction of
// "Stay-Away, protecting sensitive applications from performance
// interference" (Rameshan, Navarro, Vlassov, Monte — ACM Middleware 2014).
//
// Stay-Away is a per-host middleware that lets best-effort batch
// applications run co-located with a latency-sensitive application
// without sacrificing its QoS. Every monitoring period it:
//
//  1. Maps the per-container resource-usage vector into a 2-D state space
//     with multidimensional scaling (SMACOF), labelling states observed
//     during application-reported QoS violations;
//  2. Predicts whether the trajectory is heading into the Rayleigh-
//     weighted violation-range around any learned violation-state, by
//     inverse-transform sampling candidate future states from per-
//     execution-mode step histograms;
//  3. Acts by pausing the batch containers (SIGSTOP/freeze) and resuming
//     them when the sensitive application changes phase (a learned
//     distance threshold β) or via a randomized anti-starvation resume.
//
// The package re-exports the runtime types; the implementation lives in
// internal/ packages:
//
//	internal/core        the Mapping→Prediction→Action runtime
//	internal/mds         SMACOF, Torgerson, Procrustes, reduction
//	internal/statespace  states, violation-ranges, templates (§6)
//	internal/trajectory  per-mode step models, walk classification
//	internal/predictor   candidate sampling + majority vote
//	internal/throttle    β-learning controller, SIGSTOP/sim actuators
//	internal/metrics     measurement vectors, normalization, aggregation
//	internal/sim         the simulated host/container substrate
//	internal/apps        the evaluation's workload models
//	internal/trace       diurnal (Wikipedia-like) workload traces
//	internal/baseline    no-prevention and static-profiling baselines
//	internal/experiments scenario runner and every figure of §7
//
// See examples/quickstart for end-to-end wiring against the simulator.
package stayaway

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/statespace"
	"repro/internal/throttle"
)

// Core runtime types, re-exported for downstream use.
type (
	// Config assembles a Runtime; see core.Config for field semantics.
	Config = core.Config
	// Runtime is the Stay-Away middleware instance for one protected
	// application (the single-tenant facade over one Lane).
	Runtime = core.Runtime
	// HostRuntime protects several sensitive applications sharing one
	// batch pool: one Lane each, actuation merged by the arbiter.
	HostRuntime = core.HostRuntime
	// Lane is one protected application's Mapping→Prediction→Action
	// pipeline with its own learned state.
	Lane = core.Lane
	// Environment is what the runtime observes each period.
	Environment = core.Environment
	// HostEnvironment is the shared, collect-once view of a multi-tenant
	// host.
	HostEnvironment = core.HostEnvironment
	// LaneSignals is one protected application's QoS and run-state
	// signals on a multi-tenant host.
	LaneSignals = core.LaneSignals
	// Event records one monitoring period's outcome.
	Event = core.Event
	// Report aggregates a run's counters.
	Report = core.Report
	// Actuator applies throttle decisions to batch applications.
	Actuator = throttle.Actuator
	// Template is a learned state-space map reusable across runs (§6).
	Template = statespace.Template
	// Metric names one monitored resource dimension.
	Metric = metrics.Metric
	// Range describes how one metric normalizes into [0,1].
	Range = metrics.Range
)

// New assembles a runtime against the given environment and actuator.
func New(cfg Config, env Environment, act Actuator) (*Runtime, error) {
	return core.New(cfg, env, act)
}

// NewHost assembles a multi-tenant host runtime over a shared
// environment; add one lane per protected application with AddLane
// before the first Period.
func NewHost(env HostEnvironment, act Actuator) (*HostRuntime, error) {
	return core.NewHost(env, act)
}

// DefaultConfig returns a runtime configuration for one sensitive
// container and a set of batch containers, with the given normalization
// ranges.
func DefaultConfig(sensitiveID string, batchIDs []string, ranges map[Metric]Range) Config {
	return core.DefaultConfig(sensitiveID, batchIDs, ranges)
}

// DefaultRanges returns normalization ranges for the default metric set on
// a host with the given capacities.
func DefaultRanges(cores int, memoryMB, diskMBps, netMbps float64) map[Metric]Range {
	return metrics.DefaultRanges(cores, memoryMB, diskMBps, netMbps)
}
