package stayaway_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per experiment; see DESIGN.md §4 for the
// index) and runs the ablations DESIGN.md §5 calls out. Figure benchmarks
// report their headline summary values as custom metrics so `go test
// -bench` output doubles as a results table; the shape assertions
// themselves live in internal/experiments tests.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/statespace"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

const benchSeed = 42

// benchFigure runs one figure generator per iteration and reports the
// chosen summary keys as custom metrics.
func benchFigure(b *testing.B, gen func(int64) (*experiments.Figure, error), keys ...string) {
	b.Helper()
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := gen(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	for _, k := range keys {
		if v, ok := last.Summary[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

func BenchmarkFig01WikipediaTrace(b *testing.B) {
	benchFigure(b, experiments.Fig01, "ratio")
}

func BenchmarkFig04ViolationRange(b *testing.B) {
	benchFigure(b, func(int64) (*experiments.Figure, error) { return experiments.Fig04() }, "peak_d", "peak_r")
}

func BenchmarkFig05ExecutionModes(b *testing.B) {
	benchFigure(b, experiments.Fig05, "modes_seen", "states")
}

func BenchmarkFig06Instantaneous(b *testing.B) {
	benchFigure(b, experiments.Fig06, "violation_states", "max_jump")
}

func BenchmarkFig07Gradual(b *testing.B) {
	benchFigure(b, experiments.Fig07, "throttled_ticks", "pauses")
}

func BenchmarkFig08VLCvsCPUBomb(b *testing.B) {
	benchFigure(b, experiments.Fig08, "violation_rate_noprev", "violation_rate_stayaway")
}

func BenchmarkFig09VLCvsTwitter(b *testing.B) {
	benchFigure(b, experiments.Fig09, "violation_rate_noprev", "violation_rate_stayaway")
}

func BenchmarkFig10UtilCPUBomb(b *testing.B) {
	benchFigure(b, experiments.Fig10, "gain_noprev", "gain_stayaway")
}

func BenchmarkFig11UtilTwitter(b *testing.B) {
	benchFigure(b, experiments.Fig11, "gain_noprev", "gain_stayaway")
}

func BenchmarkFig12WebserviceUtil(b *testing.B) {
	benchFigure(b, experiments.Fig12,
		"gain_Twitter_memory-intensive", "gain_CPUBomb_cpu-intensive")
}

func BenchmarkFig13Timeline(b *testing.B) {
	benchFigure(b, experiments.Fig13,
		"a_low_intensity_run", "a_high_intensity_run")
}

func BenchmarkFig14WebserviceMix(b *testing.B) {
	benchFigure(b, experiments.Fig14, "viol_Twitter", "viol_CPUBomb")
}

func BenchmarkFig15WebserviceCPU(b *testing.B) {
	benchFigure(b, experiments.Fig15, "viol_Twitter", "viol_CPUBomb")
}

func BenchmarkFig16WebserviceMemory(b *testing.B) {
	benchFigure(b, experiments.Fig16, "viol_Twitter", "viol_MemoryBomb")
}

func BenchmarkFig17Template(b *testing.B) {
	benchFigure(b, func(s int64) (*experiments.Figure, error) {
		f, _, err := experiments.Fig17(s)
		return f, err
	}, "states", "violation_states")
}

func BenchmarkFig18TemplateReuse(b *testing.B) {
	benchFigure(b, experiments.Fig18, "in_region_fraction", "violations")
}

func BenchmarkSummary10to70(b *testing.B) {
	benchFigure(b, experiments.Summary, "min_gain", "max_gain")
}

func BenchmarkMultiTenantConflict(b *testing.B) {
	benchFigure(b, experiments.MultiTenant,
		"batch_retained", "viol_ratio_vlc-transcode", "viol_ratio_webservice")
}

// --- Ablations (DESIGN.md §5) ---

// accuracyScenario runs VLC+Twitter observe-only and returns one-period-
// ahead prediction accuracy and recall under the given runtime tuning.
func accuracyScenario(b *testing.B, tune func(*core.Config)) (accuracy, recall float64) {
	b.Helper()
	res, err := experiments.Run(experiments.Scenario{
		Name:        "ablation-accuracy",
		SensitiveID: "vlc",
		Sensitive: func(rng *rand.Rand) sim.QoSApp {
			return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
		},
		Batch: []experiments.Placement{{ID: "twitter", StartTick: 20, App: func(rng *rand.Rand) sim.App {
			cfg := apps.DefaultTwitterConfig()
			cfg.TotalWork = 0
			return apps.NewTwitterAnalysis(cfg, rng)
		}}},
		Ticks:          400,
		Seed:           benchSeed,
		StayAway:       true,
		DisableActions: true, // observe-only: score predictions against truth
		Tune:           tune,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.Report.Accuracy, res.Report.Recall
}

// BenchmarkAblationSampleCount sweeps the predictor's candidate-sample
// count (the paper uses 5 and claims >90% accuracy).
func BenchmarkAblationSampleCount(b *testing.B) {
	for _, n := range []int{1, 3, 5, 9} {
		b.Run(map[int]string{1: "samples=1", 3: "samples=3", 5: "samples=5", 9: "samples=9"}[n],
			func(b *testing.B) {
				var acc, rec float64
				for i := 0; i < b.N; i++ {
					acc, rec = accuracyScenario(b, func(c *core.Config) {
						c.Predictor.Samples = n
					})
				}
				b.ReportMetric(acc, "accuracy")
				b.ReportMetric(rec, "recall")
			})
	}
}

// BenchmarkAblationPerMode compares per-execution-mode trajectory models
// against the single global model the paper reports as inaccurate.
func BenchmarkAblationPerMode(b *testing.B) {
	b.Run("per-mode", func(b *testing.B) {
		var acc, rec float64
		for i := 0; i < b.N; i++ {
			acc, rec = accuracyScenario(b, nil)
		}
		b.ReportMetric(acc, "accuracy")
		b.ReportMetric(rec, "recall")
	})
	b.Run("single-model", func(b *testing.B) {
		var acc, rec float64
		for i := 0; i < b.N; i++ {
			acc, rec = accuracyScenario(b, func(c *core.Config) { c.SingleModel = true })
		}
		b.ReportMetric(acc, "accuracy")
		b.ReportMetric(rec, "recall")
	})
}

// BenchmarkAblationDedup measures the §4 representative-sample reduction:
// embedding cost with and without ε-merging over a realistic sample
// stream.
func BenchmarkAblationDedup(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	// A stream with heavy revisiting: 600 samples around 12 true states.
	centers := make([][]float64, 12)
	for i := range centers {
		c := make([]float64, 8)
		for d := range c {
			c[d] = rng.Float64()
		}
		centers[i] = c
	}
	samples := make([][]float64, 600)
	for i := range samples {
		c := centers[rng.Intn(len(centers))]
		s := make([]float64, 8)
		for d := range s {
			s[d] = stats.Clamp(c[d]+rng.NormFloat64()*0.005, 0, 1)
		}
		samples[i] = s
	}
	embed := func(eps float64) int {
		red := mds.Reduce(samples, eps)
		delta, err := mds.DistanceMatrix(red.Representatives)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mds.SMACOF(delta, mds.DefaultOptions(rand.New(rand.NewSource(1)))); err != nil {
			b.Fatal(err)
		}
		return len(red.Representatives)
	}
	b.Run("dedup-on", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = embed(0.05)
		}
		b.ReportMetric(float64(n), "states")
	})
	b.Run("dedup-off", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = embed(0)
		}
		b.ReportMetric(float64(n), "states")
	})
}

// BenchmarkAblationIncremental compares incremental single-point placement
// against a full SMACOF re-run for each arriving state.
func BenchmarkAblationIncremental(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	vectors := make([][]float64, 60)
	for i := range vectors {
		v := make([]float64, 8)
		for d := range v {
			v[d] = rng.Float64()
		}
		vectors[i] = v
	}
	anchors := vectors[:59]
	delta, err := mds.DistanceMatrix(anchors)
	if err != nil {
		b.Fatal(err)
	}
	base, err := mds.SMACOF(delta, mds.DefaultOptions(rand.New(rand.NewSource(1))))
	if err != nil {
		b.Fatal(err)
	}
	newDelta := make([]float64, len(anchors))
	for i, v := range anchors {
		newDelta[i] = mds.Euclidean(vectors[59], v)
	}
	b.Run("incremental-place", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := mds.Place(base.Config, newDelta, mds.PlaceOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-smacof", func(b *testing.B) {
		full, err := mds.DistanceMatrix(vectors)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := mds.SMACOF(full, mds.DefaultOptions(rand.New(rand.NewSource(1)))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRange compares the Rayleigh violation-range against a
// fixed-radius policy, reporting suffered violations and batch gain.
func BenchmarkAblationRange(b *testing.B) {
	runWith := func(policy statespace.RangePolicy) (violRate, gain float64) {
		res, err := experiments.Run(experiments.Scenario{
			Name:        "ablation-range",
			SensitiveID: "vlc",
			Sensitive: func(rng *rand.Rand) sim.QoSApp {
				return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
			},
			Batch: []experiments.Placement{{ID: "twitter", StartTick: 20, App: func(rng *rand.Rand) sim.App {
				cfg := apps.DefaultTwitterConfig()
				cfg.TotalWork = 0
				return apps.NewTwitterAnalysis(cfg, rng)
			}}},
			Ticks:    300,
			Seed:     benchSeed,
			StayAway: true,
			Tune:     func(c *core.Config) { c.RangePolicy = policy },
		})
		if err != nil {
			b.Fatal(err)
		}
		return experiments.Violations(res.Records).Rate,
			experiments.Mean(experiments.GainSeries(res.Records))
	}
	cases := []struct {
		name   string
		policy statespace.RangePolicy
	}{
		{"rayleigh", nil},
		{"fixed-tiny", func(d, c float64) float64 { return 0.01 }},
		{"fixed-large", func(d, c float64) float64 { return 0.3 }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var v, g float64
			for i := 0; i < b.N; i++ {
				v, g = runWith(tc.policy)
			}
			b.ReportMetric(v, "violation_rate")
			b.ReportMetric(g, "gain")
		})
	}
}

// BenchmarkAblationAggregation compares §5's logical-VM batch aggregation
// against per-container schemas with two batch co-runners, reporting the
// final embedding stress.
func BenchmarkAblationAggregation(b *testing.B) {
	runWith := func(disable bool) float64 {
		res, err := experiments.Run(experiments.Scenario{
			Name:        "bench-aggregation",
			SensitiveID: "vlc",
			Sensitive: func(rng *rand.Rand) sim.QoSApp {
				return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
			},
			Batch: []experiments.Placement{
				{ID: "b1", StartTick: 20, App: func(rng *rand.Rand) sim.App {
					cfg := apps.DefaultTwitterConfig()
					cfg.TotalWork = 0
					return apps.NewTwitterAnalysis(cfg, rng)
				}},
				{ID: "b2", StartTick: 25, App: func(rng *rand.Rand) sim.App {
					cfg := apps.DefaultSoplexConfig()
					cfg.TotalWork = 0
					return apps.NewSoplex(cfg, rng)
				}},
			},
			Ticks:    250,
			Seed:     benchSeed,
			StayAway: true,
			Tune:     func(c *core.Config) { c.DisableBatchAggregation = disable },
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.Report.LastStress
	}
	b.Run("aggregated", func(b *testing.B) {
		var s float64
		for i := 0; i < b.N; i++ {
			s = runWith(false)
		}
		b.ReportMetric(s, "stress")
	})
	b.Run("per-container", func(b *testing.B) {
		var s float64
		for i := 0; i < b.N; i++ {
			s = runWith(true)
		}
		b.ReportMetric(s, "stress")
	})
}

// BenchmarkAblationGraded compares the paper's binary pause/resume policy
// against graded cpu.max-style quota stepping: equal-or-fewer violations
// while retaining more batch throughput (work_retention > 1).
func BenchmarkAblationGraded(b *testing.B) {
	benchFigure(b, experiments.AblationGraded,
		"violations_binary", "violations_graded", "work_retention")
}

// BenchmarkScenarioZoo runs the open-loop scenario-zoo suite (the
// -scenarios CI gate) and reports the open-vs-closed ablation gap.
func BenchmarkScenarioZoo(b *testing.B) {
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, _, err := experiments.ScenarioZoo(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		fig = f
	}
	for _, k := range []string{"ablation_open_violations", "ablation_closed_violations", "ablation_peak_backlog"} {
		if v, ok := fig.Summary[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// BenchmarkReplayMultiDay replays a 30-day diurnal trace through a full
// Stay-Away scenario — open-loop service under trace-replay arrivals, CPU
// bomb aggressor, runtime active every tick. The PR's throughput floor:
// the whole replay must finish in well under 10 seconds.
func BenchmarkReplayMultiDay(b *testing.B) {
	cfg := trace.Config{
		Days:           30,
		SamplesPerHour: 2,
		BaseRate:       2600,
		DailyAmplitude: 0.45,
		PeakHour:       14,
		Noise:          0.05,
	}
	pts, err := trace.Generate(cfg, rand.New(rand.NewSource(benchSeed)))
	if err != nil {
		b.Fatal(err)
	}
	replay, err := workload.NewTraceReplay(pts, 30.0/2600, 3)
	if err != nil {
		b.Fatal(err)
	}
	ticks := replay.Ticks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(experiments.Scenario{
			Name:        "bench-replay",
			SensitiveID: "web",
			Sensitive: func(rng *rand.Rand) sim.QoSApp {
				svc, err := apps.NewOpenLoopService(apps.DefaultOpenLoopConfig(apps.CPUIntensive, replay))
				if err != nil {
					b.Fatal(err)
				}
				return svc
			},
			Batch: []experiments.Placement{{ID: "cpubomb", StartTick: 30, App: func(rng *rand.Rand) sim.App {
				return apps.NewCPUBomb(apps.DefaultCPUBombConfig())
			}}},
			Ticks:    ticks,
			Seed:     benchSeed,
			StayAway: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) != ticks {
			b.Fatalf("replayed %d ticks, want %d", len(res.Records), ticks)
		}
	}
	b.ReportMetric(float64(cfg.Days), "trace_days")
	b.ReportMetric(float64(ticks), "ticks")
}

// BenchmarkPeriodScaling measures one runtime period (collect → map →
// predict → act) against a pre-learned state space of 10² to 10⁵ states —
// the regime template sharing and fleet merging produce. Merging is
// disabled so the synthetic states import verbatim, and refreshes use
// landmark MDS so no period pays the full O(N²) SMACOF.
func BenchmarkPeriodScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("states=%d", n), func(b *testing.B) {
			host := sim.DefaultHostConfig()
			simulator, err := sim.NewSimulator(host)
			if err != nil {
				b.Fatal(err)
			}
			vlc := apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rand.New(rand.NewSource(1)))
			if _, err := simulator.AddContainer("vlc", vlc); err != nil {
				b.Fatal(err)
			}
			twCfg := apps.DefaultTwitterConfig()
			twCfg.TotalWork = 0
			if _, err := simulator.AddContainer("tw", apps.NewTwitterAnalysis(twCfg, rand.New(rand.NewSource(2)))); err != nil {
				b.Fatal(err)
			}
			env := experiments.NewSimEnvironment(simulator, "vlc", []string{"tw"}, vlc)
			ranges := metrics.DefaultRanges(host.Cores, host.MemoryMB, host.DiskMBps, host.NetMbps)
			cfg := core.DefaultConfig("vlc", []string{"tw"}, ranges)
			cfg.DedupEpsilon = -1       // imported synthetic states must not collapse
			cfg.LandmarkThreshold = 256 // refreshes stay approximate at scale
			rt, err := core.New(cfg, env, experiments.NewSimActuator(simulator))
			if err != nil {
				b.Fatal(err)
			}
			if err := rt.ImportTemplate(syntheticTemplate(b, n, ranges)); err != nil {
				b.Fatal(err)
			}
			// Warm up past the first refreshes so the loop measures the
			// steady-state period cost.
			for i := 0; i < 12; i++ {
				simulator.Step()
				if _, err := rt.Period(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				simulator.Step()
				if _, err := rt.Period(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rt.Report().States), "states")
		})
	}
}

// syntheticTemplate fabricates a learned map with n states (one in ten a
// violation state) across the unit measurement cube.
func syntheticTemplate(b *testing.B, n int, ranges map[metrics.Metric]metrics.Range) *statespace.Template {
	b.Helper()
	rng := rand.New(rand.NewSource(benchSeed))
	t := &statespace.Template{
		Version:      1, // dim-only compatibility: schema fields omitted
		SensitiveApp: "vlc",
		Dim:          8,
		Ranges:       ranges,
	}
	for i := 0; i < n; i++ {
		vec := make([]float64, t.Dim)
		for d := range vec {
			vec[d] = rng.Float64()
		}
		label := statespace.Safe.String()
		if i%10 == 9 {
			label = statespace.Violation.String()
		}
		t.States = append(t.States, statespace.TemplateState{
			X:      rng.Float64(),
			Y:      rng.Float64(),
			Label:  label,
			Weight: 1,
			Vector: vec,
		})
	}
	return t
}

// BenchmarkOverheadControllerStep measures the cost of one full Stay-Away
// period (collect → map → predict → act) in a steady co-located state —
// the paper reports ≈2% CPU for a 1-second monitoring period, i.e. a
// budget of 20ms/period.
func BenchmarkOverheadControllerStep(b *testing.B) {
	host := sim.DefaultHostConfig()
	simulator, err := sim.NewSimulator(host)
	if err != nil {
		b.Fatal(err)
	}
	vlc := apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rand.New(rand.NewSource(1)))
	if _, err := simulator.AddContainer("vlc", vlc); err != nil {
		b.Fatal(err)
	}
	twCfg := apps.DefaultTwitterConfig()
	twCfg.TotalWork = 0
	if _, err := simulator.AddContainer("tw", apps.NewTwitterAnalysis(twCfg, rand.New(rand.NewSource(2)))); err != nil {
		b.Fatal(err)
	}
	env := experiments.NewSimEnvironment(simulator, "vlc", []string{"tw"}, vlc)
	cfg := core.DefaultConfig("vlc", []string{"tw"},
		metrics.DefaultRanges(host.Cores, host.MemoryMB, host.DiskMBps, host.NetMbps))
	rt, err := core.New(cfg, env, experiments.NewSimActuator(simulator))
	if err != nil {
		b.Fatal(err)
	}
	// Warm up: populate the state space.
	for i := 0; i < 100; i++ {
		simulator.Step()
		if _, err := rt.Period(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simulator.Step()
		if _, err := rt.Period(); err != nil {
			b.Fatal(err)
		}
	}
}
